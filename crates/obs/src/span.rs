//! Span tracing stamped with the simulation's virtual clock.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Mutex, PoisonError};

/// Maximum records a [`SpanLog`] retains; older spans are dropped.
pub const SPAN_LOG_CAPACITY: usize = 4096;

/// One completed span on the virtual timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Static span name, e.g. `engine.filter`.
    pub name: &'static str,
    /// Free-form detail, e.g. the operator or conjunct involved.
    pub detail: String,
    /// Virtual start time in seconds (from the `ids-simrt` clock).
    pub start_secs: f64,
    /// Virtual end time in seconds.
    pub end_secs: f64,
}

impl SpanRecord {
    /// Span duration in virtual seconds.
    pub fn duration_secs(&self) -> f64 {
        self.end_secs - self.start_secs
    }
}

impl fmt::Display for SpanRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {:.6}s..{:.6}s ({:.3e}s)",
            self.name,
            self.detail,
            self.start_secs,
            self.end_secs,
            self.duration_secs()
        )
    }
}

/// Bounded log of completed spans. Timestamps are supplied by the
/// caller from the virtual clock (`Cluster::elapsed` or a rank's
/// `now()`), never from host wall-clock.
#[derive(Debug, Default)]
pub struct SpanLog {
    records: Mutex<VecDeque<SpanRecord>>,
}

impl SpanLog {
    /// Fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a completed span.
    pub fn record(
        &self,
        name: &'static str,
        detail: impl Into<String>,
        start_secs: f64,
        end_secs: f64,
    ) {
        let mut records = self.records.lock().unwrap_or_else(PoisonError::into_inner);
        if records.len() == SPAN_LOG_CAPACITY {
            records.pop_front();
        }
        records.push_back(SpanRecord { name, detail: detail.into(), start_secs, end_secs });
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// True when nothing has been recorded (or everything aged out).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of all retained spans in insertion order.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.records.lock().unwrap_or_else(PoisonError::into_inner).iter().cloned().collect()
    }

    /// Copy of the most recent `n` spans.
    pub fn recent(&self, n: usize) -> Vec<SpanRecord> {
        let records = self.records.lock().unwrap_or_else(PoisonError::into_inner);
        records.iter().rev().take(n).rev().cloned().collect()
    }

    /// Drop all retained spans.
    pub fn clear(&self) {
        self.records.lock().unwrap_or_else(PoisonError::into_inner).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let log = SpanLog::new();
        assert!(log.is_empty());
        log.record("engine.scan", "pattern 0", 0.0, 0.25);
        log.record("engine.filter", "udf_sw", 0.25, 1.0);
        assert_eq!(log.len(), 2);
        let spans = log.snapshot();
        assert_eq!(spans[0].name, "engine.scan");
        assert!((spans[1].duration_secs() - 0.75).abs() < 1e-12);
        assert_eq!(log.recent(1)[0].name, "engine.filter");
    }

    #[test]
    fn capacity_is_bounded() {
        let log = SpanLog::new();
        for i in 0..(SPAN_LOG_CAPACITY + 10) {
            log.record("s", i.to_string(), i as f64, i as f64 + 1.0);
        }
        assert_eq!(log.len(), SPAN_LOG_CAPACITY);
        assert_eq!(log.snapshot()[0].detail, "10");
    }

    #[test]
    fn display_is_stable() {
        let s = SpanRecord { name: "q", detail: "d".into(), start_secs: 0.0, end_secs: 0.5 };
        assert!(s.to_string().contains("q [d]"));
    }
}
