//! # ids-obs — unified metrics & tracing
//!
//! A lightweight, lock-cheap observability layer shared by every IDS
//! subsystem:
//!
//! * [`MetricsRegistry`] — monotonic counters, gauges, and histograms
//!   keyed by a `&'static str` metric name plus an optional
//!   `key="value"` label. Handles ([`Counter`], [`Gauge`],
//!   [`Histogram`]) are cheap `Arc` clones over atomics: callers look a
//!   metric up once (one short registry lock) and then update it with
//!   plain atomic ops on the hot path.
//! * [`SpanLog`] — a bounded log of named spans stamped with the
//!   **virtual** simulation clock (`ids-simrt` rank time), so traces
//!   line up with the cost model rather than host wall-clock.
//! * [`MetricsSnapshot`] — a point-in-time copy supporting
//!   [`MetricsSnapshot::delta`] (what happened between two points) and
//!   [`MetricsSnapshot::merge`] (combine registries from multiple
//!   components), plus Prometheus text exposition and a compact
//!   human-readable rendering used by `EXPLAIN`.
//!
//! Registries are per-component instances, not process globals: tests
//! running in one process never share metric state unless they share a
//! registry on purpose.

mod registry;
mod snapshot;
mod span;

pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use snapshot::{HistogramSnapshot, MetricKey, MetricsSnapshot};
pub use span::{SpanLog, SpanRecord};

/// Histogram bucket upper bounds in virtual seconds: decades from 1ns
/// to 1000s. Observations above the last bound land in `+Inf`.
pub const HISTOGRAM_BOUNDS: [f64; 13] =
    [1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1e0, 1e1, 1e2, 1e3];
