//! Workload-side clients for the query service: a retrying submitter
//! that honors back-off hints, and the open-loop driver that feeds a
//! pre-generated traffic schedule through a service on the virtual clock.
//!
//! The retry helper is the well-behaved-client half of the service's
//! refusal contract: every retryable refusal (`Overloaded`, `Shed`,
//! `RecoveryExhausted`) carries a deterministic `retry_after` hint, and
//! [`submit_with_retry`] waits it out *on the virtual clock* — draining
//! scheduler rounds while the service has work (so the wait is productive)
//! and charging idle time otherwise — with exponential, capped back-off
//! across attempts. Because waiting is just clock advancement in the
//! deterministic simulation, a shed-then-retried query returns bytes
//! identical to an uncontended run.

use crate::traffic::Arrival;
use ids_serve::{Completed, QueryId, QueryService, ServeError, SessionId};

/// Back-off policy for [`submit_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Submission attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// Multiplier applied to the hint on each successive refusal.
    pub backoff_mult: f64,
    /// Cap on any single wait, virtual seconds.
    pub max_backoff_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 8, backoff_mult: 2.0, max_backoff_secs: 5.0 }
    }
}

/// What a successful retried submission cost.
#[derive(Debug)]
pub struct RetryOutcome {
    /// The admitted query.
    pub query: QueryId,
    /// Total submission attempts (1 = admitted first try).
    pub attempts: u32,
    /// Virtual seconds spent backing off across all refusals.
    pub waited_secs: f64,
    /// Queries that completed while this client was waiting (the wait
    /// drains scheduler rounds; their completions would otherwise be
    /// silently dropped).
    pub completed_while_waiting: Vec<Completed>,
}

/// Submit `iql`, honoring refusal back-off hints with capped exponential
/// back-off on the virtual clock. Non-retryable errors (and refusals
/// without a hint, like deadline aborts) return immediately; exhausting
/// `max_attempts` returns the last refusal.
pub fn submit_with_retry(
    svc: &mut QueryService,
    session: SessionId,
    iql: &str,
    policy: &RetryPolicy,
) -> Result<RetryOutcome, ServeError> {
    let mut waited_secs = 0.0;
    let mut drained = Vec::new();
    let attempts_cap = policy.max_attempts.max(1);
    for attempt in 1..=attempts_cap {
        match svc.submit(session, iql) {
            Ok(query) => {
                return Ok(RetryOutcome {
                    query,
                    attempts: attempt,
                    waited_secs,
                    completed_while_waiting: drained,
                });
            }
            Err(e) => {
                let Some(hint) = e.retry_after_secs() else { return Err(e) };
                if attempt == attempts_cap {
                    return Err(e);
                }
                let wait = (hint * policy.backoff_mult.max(1.0).powi(attempt as i32 - 1))
                    .min(policy.max_backoff_secs);
                waited_secs += wait;
                let target = svc.instance().cluster().elapsed() + wait;
                // Productive waiting: let the scheduler drain while the
                // clock runs toward the back-off target…
                while svc.queued() > 0 && svc.instance().cluster().elapsed() < target {
                    drained.extend(svc.run_round());
                }
                // …and burn any remainder as idle virtual time.
                let now = svc.instance().cluster().elapsed();
                if now < target {
                    svc.instance_mut().cluster_mut().charge_all(target - now);
                }
            }
        }
    }
    // max_attempts ≥ 1, so the loop always returns; reaching here means
    // the bound above was violated.
    Err(ServeError::Internal("retry loop exited without a verdict".into()))
}

/// One refusal observed by the open-loop driver.
#[derive(Debug)]
pub struct RefusalEvent {
    /// Virtual time of the refused submission.
    pub at_secs: f64,
    /// Index of the arrival in the schedule.
    pub arrival: usize,
    /// Tenant index that was refused.
    pub tenant: usize,
    /// The typed refusal.
    pub error: ServeError,
}

/// Everything an open-loop run produced.
#[derive(Debug)]
pub struct OpenLoopReport {
    /// Completions, in completion order.
    pub completed: Vec<Completed>,
    /// Refused submissions, in arrival order.
    pub refused: Vec<RefusalEvent>,
    /// Virtual time when the run went idle.
    pub finished_at_secs: f64,
}

/// Drive a pre-generated arrival schedule through the service, open
/// loop: arrivals are submitted when the virtual clock reaches them
/// whether or not the service is keeping up — refused submissions are
/// recorded, never re-queued. `sessions[t]` must be an open session for
/// tenant index `t`; each arrival's query text is
/// `pool[query_draw % pool.len()]`. Schedule times are relative to the
/// clock at entry, so a service that already did warm-up work can be
/// driven without rebasing the schedule.
pub fn drive_open_loop(
    svc: &mut QueryService,
    arrivals: &[Arrival],
    sessions: &[SessionId],
    pool: &[String],
) -> OpenLoopReport {
    let t0 = svc.instance().cluster().elapsed();
    let mut completed = Vec::new();
    let mut refused = Vec::new();
    let mut next = 0;
    while next < arrivals.len() || svc.queued() > 0 {
        let now = svc.instance().cluster().elapsed();
        // Admit everything due by now, in schedule order.
        while next < arrivals.len() && t0 + arrivals[next].at_secs <= now {
            let a = &arrivals[next];
            let text = &pool[(a.query_draw % pool.len() as u64) as usize];
            if let Err(error) = svc.submit(sessions[a.tenant], text) {
                refused.push(RefusalEvent { at_secs: now, arrival: next, tenant: a.tenant, error });
            }
            next += 1;
        }
        if svc.queued() > 0 {
            completed.extend(svc.run_round());
        } else if next < arrivals.len() {
            // Idle with future arrivals: jump the clock to the next one.
            let gap = t0 + arrivals[next].at_secs - svc.instance().cluster().elapsed();
            if gap > 0.0 {
                svc.instance_mut().cluster_mut().charge_all(gap);
            } else {
                // Float round-off left the arrival un-due; run one
                // (idle) round so controllers tick rather than spinning.
                completed.extend(svc.run_round());
            }
        }
    }
    let finished_at_secs = svc.instance().cluster().elapsed();
    OpenLoopReport { completed, refused, finished_at_secs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{generate, TrafficConfig};
    use ids_core::{IdsConfig, IdsInstance};
    use ids_graph::Term;
    use ids_serve::{ServeConfig, SloClass, TenantConfig};

    const Q_SCAN: &str = "SELECT ?p WHERE { ?p <rdf:type> <up:Protein> . }";
    const Q_JOIN: &str = "SELECT ?c ?p WHERE { ?c <inhibits> ?p . ?p <rdf:type> <up:Protein> . }";

    fn tiny_instance(seed: u64) -> IdsInstance {
        let inst = IdsInstance::launch(IdsConfig::laptop(2, seed));
        let ds = inst.datastore();
        for i in 0..8 {
            ds.add_fact(
                &Term::iri(format!("p:{i}")),
                &Term::iri("rdf:type"),
                &Term::iri("up:Protein"),
            );
            ds.add_fact(&Term::iri(format!("c:{i}")), &Term::iri("inhibits"), &Term::iri("p:0"));
        }
        ds.build_indexes();
        inst
    }

    fn raw_rows(c: &Completed) -> Vec<Vec<u64>> {
        let mut rows: Vec<Vec<u64>> = c
            .result
            .as_ref()
            .unwrap()
            .solutions
            .rows()
            .iter()
            .map(|r| r.iter().map(|t| t.raw()).collect())
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn shed_then_retried_query_matches_the_uncontended_run() {
        // Uncontended baseline: the scavenger runs alone.
        let mut solo = QueryService::new(tiny_instance(7), ServeConfig::default());
        solo.register_tenant(TenantConfig::new("scv").with_class(SloClass::BestEffort));
        let s = solo.open_session("scv").unwrap();
        solo.submit(s, Q_JOIN).unwrap();
        let baseline = raw_rows(&solo.run_until_idle()[0]);

        // Contended: a tiny global bound plus an Interactive backlog
        // pushes occupancy past the BestEffort high-water mark.
        let mut svc = QueryService::new(
            tiny_instance(7),
            ServeConfig { max_in_flight: 4, ..ServeConfig::default() },
        );
        svc.register_tenant(TenantConfig::new("human").with_max_queued(16));
        svc.register_tenant(TenantConfig::new("scv").with_class(SloClass::BestEffort));
        let h = svc.open_session("human").unwrap();
        let s = svc.open_session("scv").unwrap();
        svc.submit(h, Q_SCAN).unwrap();
        svc.submit(h, Q_SCAN).unwrap();
        // Direct submission is shed…
        let direct = svc.submit(s, Q_JOIN).unwrap_err();
        assert!(matches!(direct, ServeError::Shed { .. }), "{direct}");
        // …but the retrying client backs off on the virtual clock, the
        // backlog drains, and the retry is admitted.
        let outcome = submit_with_retry(&mut svc, s, Q_JOIN, &RetryPolicy::default())
            .unwrap_or_else(|e| panic!("retry must eventually admit: {e}"));
        assert!(outcome.attempts > 1, "first attempt was refused");
        assert!(outcome.waited_secs > 0.0);
        let mut done = svc.run_until_idle();
        done.extend(outcome.completed_while_waiting);
        let scv = done.iter().find(|c| c.tenant == "scv").expect("the retried query completes");
        assert_eq!(raw_rows(scv), baseline, "shed-then-retried bytes match uncontended run");
    }

    #[test]
    fn non_retryable_errors_return_immediately() {
        let mut svc = QueryService::new(tiny_instance(7), ServeConfig::default());
        svc.register_tenant(TenantConfig::new("a"));
        let s = svc.open_session("a").unwrap();
        let err = submit_with_retry(&mut svc, s, "SELECT", &RetryPolicy::default()).unwrap_err();
        assert!(matches!(err, ServeError::Rejected(_)), "{err}");
    }

    #[test]
    fn retry_attempts_are_bounded() {
        // One-slot service with a permanently full queue and a policy of
        // 3 attempts: the helper gives up with the final refusal.
        let mut svc = QueryService::new(
            tiny_instance(7),
            ServeConfig { max_in_flight: 1, ..ServeConfig::default() },
        );
        svc.register_tenant(TenantConfig::new("a").with_max_queued(1));
        svc.register_tenant(TenantConfig::new("b").with_class(SloClass::BestEffort));
        let a = svc.open_session("a").unwrap();
        let b = svc.open_session("b").unwrap();
        svc.submit(a, Q_SCAN).unwrap();
        // b's submissions are refused while a's query is queued — but the
        // wait itself drains the queue, so use a policy with zero room.
        let policy = RetryPolicy { max_attempts: 1, ..RetryPolicy::default() };
        let err = submit_with_retry(&mut svc, b, Q_SCAN, &policy).unwrap_err();
        assert!(err.is_retryable(), "{err}");
    }

    #[test]
    fn open_loop_driver_submits_the_whole_schedule() {
        let cfg = TrafficConfig {
            tenants: 8,
            arrivals: 40,
            mean_interarrival_secs: 1.0e-4,
            ..TrafficConfig::default()
        };
        let arrivals = generate(&cfg);
        let mut svc = QueryService::new(
            tiny_instance(7),
            ServeConfig { quantum_secs: 1.0e-5, max_in_flight: 64, ..ServeConfig::default() },
        );
        let mut sessions = Vec::new();
        for t in 0..cfg.tenants {
            let name = format!("t{t:03}");
            svc.register_tenant(
                TenantConfig::new(&name)
                    .with_class(crate::traffic::class_of(&cfg, t))
                    .with_max_queued(32),
            );
            sessions.push(svc.open_session(&name).unwrap());
        }
        let pool = vec![Q_SCAN.to_string(), Q_JOIN.to_string()];
        let report = drive_open_loop(&mut svc, &arrivals, &sessions, &pool);
        assert_eq!(
            report.completed.len() + report.refused.len(),
            cfg.arrivals,
            "every arrival is accounted for exactly once"
        );
        assert!(report.completed.iter().all(|c| c.result.is_ok()));
        assert!(
            report.finished_at_secs >= arrivals.last().unwrap().at_secs,
            "the run covers the whole schedule"
        );
        assert_eq!(svc.queued(), 0);
    }
}
