//! Table 1 source generators.
//!
//! Each generator emits triples with the source's characteristic schema
//! into a [`Datastore`], scaled by a factor relative to the paper's
//! published sizes. The per-triple raw-size estimate for each source is
//! derived from Table 1 itself (raw bytes ÷ triples), so the regenerated
//! table reproduces the paper's size ratios at any scale.

use ids_core::Datastore;
use ids_graph::Term;
use ids_simrt::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// The seven Table 1 sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceKind {
    UniProt,
    ChemblRdf,
    Bio2Rdf,
    OrthoDb,
    Biomodels,
    Biosamples,
    Reactome,
}

impl SourceKind {
    /// All sources in Table 1 order.
    pub const ALL: [SourceKind; 7] = [
        SourceKind::UniProt,
        SourceKind::ChemblRdf,
        SourceKind::Bio2Rdf,
        SourceKind::OrthoDb,
        SourceKind::Biomodels,
        SourceKind::Biosamples,
        SourceKind::Reactome,
    ];

    /// Display name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::UniProt => "UniProt",
            SourceKind::ChemblRdf => "ChEMBL-RDF",
            SourceKind::Bio2Rdf => "Bio2RDF",
            SourceKind::OrthoDb => "OrthoDB",
            SourceKind::Biomodels => "Biomodels",
            SourceKind::Biosamples => "Biosamples",
            SourceKind::Reactome => "Reactome",
        }
    }

    /// Paper-published triple count (Table 1).
    pub fn paper_triples(self) -> u64 {
        match self {
            SourceKind::UniProt => 87_600_000_000,
            SourceKind::ChemblRdf => 539_000_000,
            SourceKind::Bio2Rdf => 11_500_000_000,
            SourceKind::OrthoDb => 2_200_000_000,
            SourceKind::Biomodels => 28_000_000,
            SourceKind::Biosamples => 1_100_000_000,
            SourceKind::Reactome => 19_000_000,
        }
    }

    /// Paper-published raw on-disk size in bytes (Table 1).
    pub fn paper_raw_bytes(self) -> u64 {
        const TB: u64 = 1_000_000_000_000;
        const GB: u64 = 1_000_000_000;
        match self {
            SourceKind::UniProt => (12.7 * TB as f64) as u64,
            SourceKind::ChemblRdf => 81 * GB,
            SourceKind::Bio2Rdf => (2.4 * TB as f64) as u64,
            SourceKind::OrthoDb => 275 * GB,
            SourceKind::Biomodels => (5.2 * GB as f64) as u64,
            SourceKind::Biosamples => (112.8 * GB as f64) as u64,
            SourceKind::Reactome => (3.2 * GB as f64) as u64,
        }
    }

    /// Bytes-per-triple implied by Table 1 (raw size ÷ triples).
    pub fn bytes_per_triple(self) -> f64 {
        self.paper_raw_bytes() as f64 / self.paper_triples() as f64
    }

    /// Predicate namespace prefix for this source's triples.
    fn ns(self) -> &'static str {
        match self {
            SourceKind::UniProt => "up",
            SourceKind::ChemblRdf => "chembl",
            SourceKind::Bio2Rdf => "b2r",
            SourceKind::OrthoDb => "odb",
            SourceKind::Biomodels => "biomodel",
            SourceKind::Biosamples => "biosample",
            SourceKind::Reactome => "reactome",
        }
    }

    /// Triples emitted per entity by this source's schema.
    fn triples_per_entity(self) -> u64 {
        match self {
            SourceKind::UniProt => 5,   // type, accession, reviewed, sequence, organism
            SourceKind::ChemblRdf => 4, // type, smiles, assay, inhibits
            SourceKind::Bio2Rdf => 2,   // xref pairs
            SourceKind::OrthoDb => 3,   // group, member, species
            SourceKind::Biomodels => 3, // model, describes, species
            SourceKind::Biosamples => 3, // sample, of-organism, attribute
            SourceKind::Reactome => 3,  // pathway, has-participant, next
        }
    }
}

/// Stats returned by a generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceStats {
    pub kind: SourceKind,
    /// Triples actually generated.
    pub triples: u64,
    /// Estimated raw size of the generated slice (bytes), using the
    /// source's Table 1 bytes-per-triple.
    pub est_raw_bytes: u64,
    /// Entities generated.
    pub entities: u64,
}

/// Generate one source at `scale` (fraction of the paper's triple count)
/// into `ds`. Deterministic per (kind, seed).
pub fn generate_source(ds: &Datastore, kind: SourceKind, scale: f64, seed: u64) -> SourceStats {
    assert!(scale > 0.0, "scale must be positive");
    let target_triples = ((kind.paper_triples() as f64 * scale).round() as u64).max(1);
    let per_entity = kind.triples_per_entity();
    let entities = (target_triples / per_entity).max(1);
    let mut rng = SplitMix64::new(seed, kind as u64 + 0x50c0);
    let ns = kind.ns();

    let mut triples = 0u64;
    for e in 0..entities {
        let subject = Term::iri(format!("{ns}:{e}"));
        match kind {
            SourceKind::UniProt => {
                ds.add_fact(&subject, &Term::iri("rdf:type"), &Term::iri("up:Protein"));
                ds.add_fact(&subject, &Term::iri("up:accession"), &Term::str(format!("U{e:08}")));
                ds.add_fact(
                    &subject,
                    &Term::iri("up:reviewed"),
                    &Term::Int((rng.next_below(10) == 0) as i64),
                );
                let seq_len = 80 + rng.next_below(200);
                ds.add_fact(&subject, &Term::iri("up:seqLength"), &Term::Int(seq_len as i64));
                ds.add_fact(
                    &subject,
                    &Term::iri("up:organism"),
                    &Term::iri(format!("taxon:{}", rng.next_below(500))),
                );
            }
            SourceKind::ChemblRdf => {
                ds.add_fact(&subject, &Term::iri("rdf:type"), &Term::iri("chembl:Compound"));
                ds.add_fact(
                    &subject,
                    &Term::iri("chembl:mw"),
                    &Term::float(150.0 + rng.next_f64() * 400.0),
                );
                ds.add_fact(
                    &subject,
                    &Term::iri("chembl:assayCount"),
                    &Term::Int(rng.next_below(50) as i64),
                );
                ds.add_fact(
                    &subject,
                    &Term::iri("chembl:inhibits"),
                    &Term::iri(format!("up:{}", rng.next_below(entities))),
                );
            }
            SourceKind::Bio2Rdf => {
                ds.add_fact(
                    &subject,
                    &Term::iri("b2r:xref"),
                    &Term::iri(format!("up:{}", rng.next_below(entities))),
                );
                ds.add_fact(
                    &subject,
                    &Term::iri("b2r:source"),
                    &Term::iri(format!("db:{}", rng.next_below(30))),
                );
            }
            SourceKind::OrthoDb => {
                ds.add_fact(&subject, &Term::iri("rdf:type"), &Term::iri("odb:OrthologGroup"));
                ds.add_fact(
                    &subject,
                    &Term::iri("odb:member"),
                    &Term::iri(format!("up:{}", rng.next_below(entities))),
                );
                ds.add_fact(
                    &subject,
                    &Term::iri("odb:species"),
                    &Term::iri(format!("taxon:{}", rng.next_below(500))),
                );
            }
            SourceKind::Biomodels => {
                ds.add_fact(&subject, &Term::iri("rdf:type"), &Term::iri("biomodel:Model"));
                ds.add_fact(
                    &subject,
                    &Term::iri("biomodel:describes"),
                    &Term::iri(format!("up:{}", rng.next_below(entities))),
                );
                ds.add_fact(
                    &subject,
                    &Term::iri("biomodel:curated"),
                    &Term::Int((rng.next_below(2) == 0) as i64),
                );
            }
            SourceKind::Biosamples => {
                ds.add_fact(&subject, &Term::iri("rdf:type"), &Term::iri("biosample:Sample"));
                ds.add_fact(
                    &subject,
                    &Term::iri("biosample:organism"),
                    &Term::iri(format!("taxon:{}", rng.next_below(500))),
                );
                ds.add_fact(
                    &subject,
                    &Term::iri("biosample:attribute"),
                    &Term::str(format!("attr{}", rng.next_below(100))),
                );
            }
            SourceKind::Reactome => {
                ds.add_fact(&subject, &Term::iri("rdf:type"), &Term::iri("reactome:Pathway"));
                ds.add_fact(
                    &subject,
                    &Term::iri("reactome:participant"),
                    &Term::iri(format!("up:{}", rng.next_below(entities))),
                );
                ds.add_fact(
                    &subject,
                    &Term::iri("reactome:next"),
                    &Term::iri(format!("{ns}:{}", (e + 1) % entities)),
                );
            }
        }
        triples += per_entity;
    }

    SourceStats {
        kind,
        triples,
        est_raw_bytes: (triples as f64 * kind.bytes_per_triple()) as u64,
        entities,
    }
}

/// Generate all seven sources at `scale`; returns per-source stats in
/// Table 1 order. Remember to call [`Datastore::build_indexes`] afterwards.
pub fn generate_all(ds: &Datastore, scale: f64, seed: u64) -> Vec<SourceStats> {
    SourceKind::ALL.iter().map(|&k| generate_source(ds, k, scale, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_totals_match_table1() {
        let total: u64 = SourceKind::ALL.iter().map(|k| k.paper_triples()).sum();
        // Table 1 sums to ≈ 103 B facts ("knowledge graph containing
        // >100 billion facts").
        assert!(total > 100_000_000_000, "total {total}");
        assert!(total < 110_000_000_000, "total {total}");
    }

    #[test]
    fn scaled_generation_preserves_ratios() {
        let ds = Datastore::new(4);
        let stats = generate_all(&ds, 2.0e-7, 1);
        ds.build_indexes();
        // UniProt dominates, as in the paper (87.6B of ~103B ≈ 85%).
        let total: u64 = stats.iter().map(|s| s.triples).sum();
        let uniprot = stats.iter().find(|s| s.kind == SourceKind::UniProt).unwrap();
        let frac = uniprot.triples as f64 / total as f64;
        assert!((0.8..0.9).contains(&frac), "uniprot fraction {frac}");
        assert_eq!(ds.triple_count() as u64, total);
    }

    #[test]
    fn raw_size_estimates_use_table1_density() {
        // UniProt: 12.7 TB / 87.6 B triples ≈ 145 bytes/triple.
        let bpt = SourceKind::UniProt.bytes_per_triple();
        assert!((140.0..150.0).contains(&bpt), "bytes/triple {bpt}");
        // ChEMBL: 81 GB / 539 M ≈ 150 bytes/triple.
        let bpt = SourceKind::ChemblRdf.bytes_per_triple();
        assert!((140.0..160.0).contains(&bpt), "bytes/triple {bpt}");
    }

    #[test]
    fn generation_is_deterministic() {
        let ds1 = Datastore::new(2);
        let ds2 = Datastore::new(2);
        let a = generate_source(&ds1, SourceKind::Reactome, 1.0e-6, 7);
        let b = generate_source(&ds2, SourceKind::Reactome, 1.0e-6, 7);
        assert_eq!(a, b);
        assert_eq!(ds1.triple_count(), ds2.triple_count());
    }

    #[test]
    fn tiny_scale_still_produces_something() {
        let ds = Datastore::new(2);
        let s = generate_source(&ds, SourceKind::Biomodels, 1.0e-12, 3);
        assert!(s.triples >= 1);
        assert!(s.entities >= 1);
    }
}
