//! The NCNPR experiment graph.
//!
//! Builds the slice of the knowledge graph the §5 experiments actually
//! touch: a target protein (the P29274 stand-in), *similarity bands* of
//! related reviewed proteins at controlled sequence divergence, inhibitor
//! compounds with valid SMILES and assay edges, and background unreviewed
//! proteins.
//!
//! The banded construction is what lets Table 2's shape reproduce: a tight
//! band of near-identical proteins supplies the ~56 compounds that survive
//! every threshold from 0.99 down to 0.5; a mid band (similarity ≈ 0.4)
//! adds the jump to ~121; and a broad low band (similarity ≈ 0.2–0.35)
//! supplies the blow-up to ~1129 compounds.

use ids_chem::sequence::ProteinSequence;
use ids_core::workflow::Target;
use ids_core::Datastore;
use ids_graph::Term;
use ids_models::molgen::MoleculeGenerator;
use ids_models::CostModel;
use ids_simrt::rng::SplitMix64;

/// One similarity band of related proteins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Per-residue mutation rate applied to the target sequence
    /// (0.0 = identical; similarity falls roughly as 1 − 1.2·rate).
    pub mutation_rate: f64,
    /// When set, band members are rejection-sampled until their actual
    /// Smith-Waterman similarity to the target falls inside this closed
    /// range — pinning the band between two sweep thresholds regardless of
    /// mutation variance (what makes Table 2's plateau exact).
    pub similarity_range: Option<(f64, f64)>,
    /// Number of proteins in the band.
    pub proteins: usize,
    /// Compounds attached to each band protein.
    pub compounds_per_protein: usize,
}

/// Dataset configuration.
#[derive(Debug, Clone)]
pub struct NcnprConfig {
    pub seed: u64,
    /// Target sequence length (P29274 has 412 residues).
    pub sequence_len: usize,
    /// Similarity bands (defaults approximate Table 2's candidate counts).
    pub bands: Vec<Band>,
    /// Unrelated, mostly unreviewed background proteins.
    pub background_proteins: usize,
}

impl Default for NcnprConfig {
    fn default() -> Self {
        Self {
            seed: 0x29274,
            sequence_len: 412,
            bands: vec![
                // Near-identical: survives every threshold ≥ 0.9 → 56
                // compounds (Table 2 rows 0.99–0.90).
                Band {
                    mutation_rate: 0.0,
                    similarity_range: None,
                    proteins: 8,
                    compounds_per_protein: 7,
                },
                // One protein at similarity ≈ 0.85: Table 2's +1 compound
                // between thresholds 0.90 and 0.80 (rows 0.80–0.50 = 57).
                Band {
                    mutation_rate: 0.12,
                    similarity_range: Some((0.81, 0.89)),
                    proteins: 1,
                    compounds_per_protein: 1,
                },
                // Mid band: enters at threshold 0.4 → 57 + 64 = 121.
                Band {
                    mutation_rate: 0.46,
                    similarity_range: Some((0.41, 0.49)),
                    proteins: 16,
                    compounds_per_protein: 4,
                },
                // Low band: enters at 0.2 → 121 + 1008 = 1129.
                Band {
                    mutation_rate: 0.62,
                    similarity_range: Some((0.21, 0.39)),
                    proteins: 144,
                    compounds_per_protein: 7,
                },
            ],
            background_proteins: 200,
        }
    }
}

/// What the builder produced.
#[derive(Debug, Clone)]
pub struct NcnprDataset {
    /// The workflow target (sequence + predicted receptor).
    pub target: Target,
    /// Total proteins written (bands + background + target).
    pub proteins: usize,
    /// Total compounds written.
    pub compounds: usize,
    /// Total triples written.
    pub triples: usize,
}

/// Build the NCNPR graph into `ds` (indexes are built before returning).
pub fn build(ds: &Datastore, cfg: &NcnprConfig) -> NcnprDataset {
    let mut rng = SplitMix64::new(cfg.seed, 0x0c2);
    let target_seq = ProteinSequence::random(cfg.sequence_len, &mut rng);
    let target = Target::from_sequence("P29274", target_seq.clone());

    let molgen = MoleculeGenerator::new(CostModel::free(), cfg.seed ^ 0x3014);
    let mut proteins = 0usize;
    let mut compounds = 0usize;
    let mut triples = 0usize;
    let mut compound_index = 0u64;

    let add_protein = |ds: &Datastore,
                       name: &str,
                       seq: &ProteinSequence,
                       reviewed: bool,
                       n_compounds: usize,
                       compound_index: &mut u64,
                       triples: &mut usize,
                       compounds: &mut usize| {
        let subject = Term::iri(format!("up:{name}"));
        ds.add_fact(&subject, &Term::iri("rdf:type"), &Term::iri("up:Protein"));
        ds.add_fact(&subject, &Term::iri("up:reviewed"), &Term::Int(reviewed as i64));
        ds.add_fact(&subject, &Term::iri("up:sequence"), &Term::str(seq.to_string_code()));
        ds.add_fact(&subject, &Term::iri("up:accession"), &Term::str(name.to_string()));
        *triples += 4;
        for _ in 0..n_compounds {
            let c = molgen.generate(*compound_index);
            *compound_index += 1;
            let cid = Term::iri(format!("chembl:C{}", *compound_index));
            ds.add_fact(&cid, &Term::iri("rdf:type"), &Term::iri("chembl:Compound"));
            ds.add_fact(&cid, &Term::iri("chembl:smiles"), &Term::str(c.smiles.clone()));
            ds.add_fact(&cid, &Term::iri("chembl:inhibits"), &subject);
            *triples += 3;
            *compounds += 1;
        }
    };

    // The target itself (reviewed, no attached compounds — candidates come
    // from *related* proteins, per the workflow).
    add_protein(
        ds,
        "P29274",
        &target_seq,
        true,
        0,
        &mut compound_index,
        &mut triples,
        &mut compounds,
    );
    proteins += 1;

    // Similarity bands.
    let sw = ids_models::SmithWaterman::new(Default::default(), CostModel::free());
    for (bi, band) in cfg.bands.iter().enumerate() {
        for p in 0..band.proteins {
            let seq = sample_band_member(&sw, &target_seq, band, &mut rng);
            add_protein(
                ds,
                &format!("B{bi}_{p}"),
                &seq,
                true,
                band.compounds_per_protein,
                &mut compound_index,
                &mut triples,
                &mut compounds,
            );
            proteins += 1;
        }
    }

    // Background: unrelated, unreviewed proteins with no candidates.
    for p in 0..cfg.background_proteins {
        let seq = ProteinSequence::random(cfg.sequence_len, &mut rng);
        add_protein(
            ds,
            &format!("BG{p}"),
            &seq,
            false,
            0,
            &mut compound_index,
            &mut triples,
            &mut compounds,
        );
        proteins += 1;
    }

    ds.build_indexes();
    NcnprDataset { target, proteins, compounds, triples }
}

/// Draw one band member. With a `similarity_range`, rejection-sample
/// (adapting the mutation rate toward the range) until the actual
/// Smith-Waterman similarity lands inside; panics only if 200 attempts
/// fail, which indicates an unsatisfiable range.
fn sample_band_member(
    sw: &ids_models::SmithWaterman,
    target: &ProteinSequence,
    band: &Band,
    rng: &mut SplitMix64,
) -> ProteinSequence {
    match band.similarity_range {
        None => target.mutate(band.mutation_rate, rng),
        Some((lo, hi)) => {
            assert!(lo < hi, "empty similarity range");
            let mut rate = band.mutation_rate;
            for _ in 0..200 {
                let cand = target.mutate(rate, rng);
                let sim = sw.align(target, &cand).similarity;
                if sim >= lo && sim <= hi {
                    return cand;
                }
                // Nudge the rate toward the band: too similar -> mutate
                // more, too divergent -> mutate less.
                if sim > hi {
                    rate = (rate * 1.1 + 0.01).min(0.95);
                } else {
                    rate = (rate * 0.9).max(0.005);
                }
            }
            panic!("could not hit similarity range [{lo}, {hi}] from rate {}", band.mutation_rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_models::SmithWaterman;

    #[test]
    fn default_config_matches_table2_bands() {
        let cfg = NcnprConfig::default();
        let counts: Vec<usize> =
            cfg.bands.iter().map(|b| b.proteins * b.compounds_per_protein).collect();
        let cum: Vec<usize> = counts
            .iter()
            .scan(0, |acc, &c| {
                *acc += c;
                Some(*acc)
            })
            .collect();
        assert_eq!(cum[0], 56, "Table 2 rows 0.99–0.90");
        assert_eq!(cum[1], 57, "Table 2 rows 0.80–0.50");
        assert_eq!(cum[2], 121, "Table 2 row 0.40");
        assert_eq!(cum[3], 1129, "Table 2 row 0.20");
    }

    #[test]
    fn build_writes_expected_counts() {
        let cfg = NcnprConfig {
            bands: vec![Band {
                mutation_rate: 0.0,
                similarity_range: None,
                proteins: 2,
                compounds_per_protein: 3,
            }],
            background_proteins: 5,
            ..NcnprConfig::default()
        };
        let ds = Datastore::new(4);
        let out = build(&ds, &cfg);
        assert_eq!(out.proteins, 1 + 2 + 5);
        assert_eq!(out.compounds, 6);
        assert_eq!(ds.triple_count(), out.triples);
        // reviewed: target + band proteins.
        let reviewed = ds
            .dictionary()
            .lookup(&Term::iri("up:reviewed"))
            .map(|p| {
                let one = ds.dictionary().lookup(&Term::Int(1)).unwrap();
                ds.count_all(&ids_graph::TriplePattern::new(None, Some(p), Some(one)))
            })
            .unwrap();
        assert_eq!(reviewed, 3);
    }

    #[test]
    fn bands_land_in_distinct_similarity_ranges() {
        // Sample each default band directly and verify the rejection
        // sampler pins similarities inside the configured ranges.
        let cfg = NcnprConfig::default();
        let sw = SmithWaterman::default_model();
        let mut rng = SplitMix64::new(99, 42);
        let target = ProteinSequence::random(cfg.sequence_len, &mut rng);
        for band in &cfg.bands {
            // Sample a handful per band (the low band has 144; 5 suffices).
            for _ in 0..5.min(band.proteins) {
                let member = super::sample_band_member(&sw, &target, band, &mut rng);
                let sim = sw.align(&target, &member).similarity;
                match band.similarity_range {
                    Some((lo, hi)) => {
                        assert!((lo..=hi).contains(&sim), "sim {sim} outside [{lo}, {hi}]")
                    }
                    None => assert!(sim > 0.95, "tight band sim {sim}"),
                }
            }
        }
    }

    #[test]
    fn table2_threshold_sweep_counts_are_exact() {
        // The actual Table 2 guarantee: counting compounds whose protein's
        // similarity clears each threshold reproduces 56/57/121/1129.
        let cfg = NcnprConfig::default();
        let ds = Datastore::new(4);
        let out = build(&ds, &cfg);
        let sw = SmithWaterman::default_model();
        // Walk the graph: compound --inhibits--> protein --sequence--> seq.
        let dict = ds.dictionary();
        let inhibits = dict.lookup(&Term::iri("chembl:inhibits")).unwrap();
        let sequence = dict.lookup(&Term::iri("up:sequence")).unwrap();
        let edges = ds.dictionary().lookup(&Term::iri("rdf:type")).map(|_| ()).map(|_| ());
        let _ = edges;
        let mut counts = std::collections::HashMap::new();
        let all_inhibits: Vec<_> = (0..ds.num_shards())
            .flat_map(|s| {
                ds.scan_shard(s, &ids_graph::TriplePattern::new(None, Some(inhibits), None))
            })
            .collect();
        for tr in &all_inhibits {
            let seq_triples: Vec<_> = (0..ds.num_shards())
                .flat_map(|s| {
                    ds.scan_shard(
                        s,
                        &ids_graph::TriplePattern::new(Some(tr.o), Some(sequence), None),
                    )
                })
                .collect();
            let seq_term = dict.decode(seq_triples[0].o).unwrap();
            let seq = ProteinSequence::parse(seq_term.as_str().unwrap()).unwrap();
            let sim = sw.align(&out.target.sequence, &seq).similarity;
            for &t in &[0.99, 0.90, 0.80, 0.50, 0.40, 0.20] {
                if sim >= t {
                    *counts.entry((t * 100.0) as u32).or_insert(0usize) += 1;
                }
            }
        }
        assert_eq!(counts.get(&99).copied().unwrap_or(0), 56);
        assert_eq!(counts.get(&90).copied().unwrap_or(0), 56);
        assert_eq!(counts.get(&80).copied().unwrap_or(0), 57);
        assert_eq!(counts.get(&50).copied().unwrap_or(0), 57);
        assert_eq!(counts.get(&40).copied().unwrap_or(0), 121);
        assert_eq!(counts.get(&20).copied().unwrap_or(0), 1129);
    }

    #[test]
    fn build_is_deterministic() {
        let ds1 = Datastore::new(2);
        let ds2 = Datastore::new(2);
        let a = build(&ds1, &NcnprConfig::default());
        let b = build(&ds2, &NcnprConfig::default());
        assert_eq!(a.triples, b.triples);
        assert_eq!(a.target.sequence, b.target.sequence);
        assert_eq!(ds1.triple_count(), ds2.triple_count());
    }
}
