//! # ids-workloads — synthetic datasets and workload builders
//!
//! The paper's knowledge graph integrates seven public life-science
//! sources (Table 1, >100 B facts, ≈ 30 TB). Those exact datasets are
//! neither redistributable nor host-sized; this crate generates synthetic
//! datasets with the same **schema, shape, and relative proportions** at a
//! configurable scale factor:
//!
//! * [`sources`] — one generator per Table 1 source (UniProt, ChEMBL-RDF,
//!   Bio2RDF, OrthoDB, Biomodels, Biosamples, Reactome), each reporting
//!   the triple counts and estimated raw sizes that regenerate the table.
//! * [`ncnpr`] — the NCNPR experiment graph: a target protein (P29274
//!   stand-in), controlled-divergence protein families (so Smith–Waterman
//!   selectivity thresholds cut predictable candidate bands, reproducing
//!   Table 2's compound-count blow-up), inhibitor compounds with valid
//!   SMILES, and assay edges.
//! * [`traffic`] — deterministic open-loop production traffic: Poisson
//!   arrivals × Zipf tenant popularity with SLO-class striping, for the
//!   overload ablation and chaos suites.
//! * [`client`] — service clients: a retrying submitter that honors
//!   `retry_after` hints with capped back-off on the virtual clock, and
//!   the open-loop driver that replays a [`traffic`] schedule.

pub mod client;
pub mod ncnpr;
pub mod sources;
pub mod traffic;

pub use client::{
    drive_open_loop, submit_with_retry, OpenLoopReport, RefusalEvent, RetryOutcome, RetryPolicy,
};
pub use ncnpr::{NcnprConfig, NcnprDataset};
pub use sources::{SourceKind, SourceStats};
pub use traffic::{class_of, generate, Arrival, TrafficConfig};
