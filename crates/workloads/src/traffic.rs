//! Open-loop production-traffic generator: Poisson arrivals × Zipf
//! tenant popularity on the virtual clock.
//!
//! Closed-loop drivers (submit, wait, submit again) self-throttle under
//! overload and therefore cannot expose it: the arrival rate silently
//! drops to the service rate. An honest overload story needs **open-loop**
//! traffic — arrivals keep coming at the offered rate whether or not the
//! service keeps up, exactly like production front-ends fanning in
//! thousands of independent users. This module pre-computes such a
//! schedule deterministically from a seed:
//!
//! * **arrival times** — a Poisson process (i.i.d. exponential
//!   inter-arrival gaps with the configured mean);
//! * **tenant mix** — Zipf-distributed popularity over `tenants`
//!   simulated tenants, reproducing the heavy-tailed "a few hot
//!   investigative sessions, a long tail of occasional users" shape that
//!   exploratory science traffic exhibits;
//! * **SLO classes** — assigned per tenant by striping the configured
//!   class fractions across the tenant index, so the Zipf head is spread
//!   over all three classes instead of concentrating in one.
//!
//! Everything derives from `SplitMix64` streams keyed off one seed, so a
//! (config, seed) pair always generates the identical schedule — the
//! foundation for the deterministic-shedding chaos contract.

use ids_serve::SloClass;
use ids_simrt::rng::SplitMix64;

/// Shape of one open-loop traffic schedule.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Simulated tenant population (1k–10k in the overload ablation).
    pub tenants: usize,
    /// Zipf skew exponent for tenant popularity (≈1.1 is typical for
    /// user-session popularity; 0 = uniform).
    pub zipf_s: f64,
    /// Mean inter-arrival gap, virtual seconds. The offered load is
    /// `1 / mean_interarrival_secs` queries per virtual second.
    pub mean_interarrival_secs: f64,
    /// Total arrivals to generate.
    pub arrivals: usize,
    /// Root seed for the arrival/tenant/query draws.
    pub seed: u64,
    /// Fraction of tenants in the `Interactive` class.
    pub interactive_frac: f64,
    /// Fraction of tenants in the `Batch` class (the remainder is
    /// `BestEffort`).
    pub batch_frac: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            tenants: 1000,
            zipf_s: 1.1,
            mean_interarrival_secs: 1.0e-3,
            arrivals: 1000,
            seed: 7,
            interactive_frac: 0.2,
            batch_frac: 0.3,
        }
    }
}

/// One generated arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival time, virtual seconds from the schedule's origin.
    pub at_secs: f64,
    /// Tenant index in `0..tenants` (Zipf-popular head at low indices).
    pub tenant: usize,
    /// Raw query draw; callers map it onto their pool with
    /// `query_draw % pool.len()`.
    pub query_draw: u64,
}

/// Granularity of the class striping: tenant `i`'s class is decided by
/// the position of `i % STRIPE` within the configured fractions, which
/// spreads every class across the Zipf popularity head.
const STRIPE: usize = 20;

/// The SLO class assigned to tenant index `i` under `cfg`'s fractions.
/// Deterministic and schedule-independent, so services and drivers can
/// recompute it without carrying a side table.
pub fn class_of(cfg: &TrafficConfig, tenant: usize) -> SloClass {
    let pos = ((tenant % STRIPE) as f64 + 0.5) / STRIPE as f64;
    if pos < cfg.interactive_frac {
        SloClass::Interactive
    } else if pos < cfg.interactive_frac + cfg.batch_frac {
        SloClass::Batch
    } else {
        SloClass::BestEffort
    }
}

/// Generate the full arrival schedule, sorted by time.
pub fn generate(cfg: &TrafficConfig) -> Vec<Arrival> {
    let tenants = cfg.tenants.max(1);
    // Zipf CDF over tenant ranks: weight(r) = 1 / (r+1)^s.
    let mut cdf = Vec::with_capacity(tenants);
    let mut acc = 0.0;
    for r in 0..tenants {
        acc += 1.0 / ((r + 1) as f64).powf(cfg.zipf_s);
        cdf.push(acc);
    }
    let norm = acc;
    let mut gaps = SplitMix64::new(cfg.seed, 0xA121);
    let mut picks = SplitMix64::new(cfg.seed, 0xB212);
    let mut queries = SplitMix64::new(cfg.seed, 0xC303);
    let mut out = Vec::with_capacity(cfg.arrivals);
    let mut t = 0.0;
    for _ in 0..cfg.arrivals {
        // Exponential inter-arrival gap: -ln(1 - u) has mean 1 for
        // u ~ U[0, 1), and 1 - u is in (0, 1] so the log is finite.
        t += -(1.0 - gaps.next_f64()).ln() * cfg.mean_interarrival_secs.max(0.0);
        let u = picks.next_f64() * norm;
        let tenant = cdf.partition_point(|&c| c < u).min(tenants - 1);
        out.push(Arrival { at_secs: t, tenant, query_draw: queries.next_u64() });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_replay_deterministically() {
        let cfg = TrafficConfig { arrivals: 500, ..TrafficConfig::default() };
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = generate(&TrafficConfig { seed: 8, ..cfg });
        assert_ne!(generate(&cfg), other, "different seed ⇒ different schedule");
    }

    #[test]
    fn interarrival_mean_matches_the_config() {
        let cfg = TrafficConfig {
            arrivals: 20_000,
            mean_interarrival_secs: 2.0e-3,
            ..TrafficConfig::default()
        };
        let arr = generate(&cfg);
        let span = arr.last().unwrap().at_secs;
        let mean = span / arr.len() as f64;
        assert!(
            (mean - cfg.mean_interarrival_secs).abs() < 0.1 * cfg.mean_interarrival_secs,
            "empirical mean {mean} vs configured {}",
            cfg.mean_interarrival_secs
        );
        // Times are sorted and strictly increasing (gaps are positive).
        assert!(arr.windows(2).all(|w| w[0].at_secs < w[1].at_secs));
    }

    #[test]
    fn tenant_mix_is_zipf_skewed() {
        let cfg = TrafficConfig { tenants: 1000, arrivals: 20_000, ..TrafficConfig::default() };
        let arr = generate(&cfg);
        let mut counts = vec![0usize; cfg.tenants];
        for a in &arr {
            assert!(a.tenant < cfg.tenants);
            counts[a.tenant] += 1;
        }
        let head: usize = counts[..10].iter().sum();
        // Uniform traffic would put 1% on the first ten tenants; Zipf
        // s=1.1 concentrates far more.
        assert!(
            head as f64 > 0.15 * arr.len() as f64,
            "top-10 tenants carry only {head}/{} arrivals",
            arr.len()
        );
        // …but the tail is not starved of traffic entirely.
        let active = counts.iter().filter(|&&c| c > 0).count();
        assert!(active > cfg.tenants / 4, "only {active} tenants ever arrived");
    }

    #[test]
    fn class_stripes_match_the_fractions_across_the_head() {
        let cfg = TrafficConfig::default(); // 20% / 30% / 50%
        let n = 1000;
        let mut by_class = [0usize; 3];
        for i in 0..n {
            match class_of(&cfg, i) {
                SloClass::Interactive => by_class[0] += 1,
                SloClass::Batch => by_class[1] += 1,
                SloClass::BestEffort => by_class[2] += 1,
            }
        }
        assert_eq!(by_class, [200, 300, 500]);
        // Striping spreads classes across the Zipf head: the first 20
        // (hottest) tenants already contain all three classes.
        let head: Vec<SloClass> = (0..20).map(|i| class_of(&cfg, i)).collect();
        assert!(head.contains(&SloClass::Interactive));
        assert!(head.contains(&SloClass::Batch));
        assert!(head.contains(&SloClass::BestEffort));
    }
}
