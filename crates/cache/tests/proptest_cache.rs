//! Model-based property tests for the cache: random operation sequences
//! (put / get / invalidate / fail-node) checked against a reference
//! HashMap model. The invariant under test is the paper's §3.2 durability
//! contract: the cache may lose *cached copies* at any time, but a `get`
//! after a `put` always returns the last value put (served from some tier
//! or re-populated from the backing store).

use bytes::Bytes;
use ids_cache::{BackingStore, CacheConfig, CacheManager};
use ids_simrt::{NetworkModel, NodeId, RankId, Topology};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Put { key: u8, len: u16, tag: u8, rank: u8 },
    Get { key: u8, rank: u8 },
    Invalidate { key: u8 },
    FailNode { node: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12, 1u16..2048, any::<u8>(), 0u8..16).prop_map(|(key, len, tag, rank)| Op::Put {
            key,
            len,
            tag,
            rank
        }),
        (0u8..12, 0u8..16).prop_map(|(key, rank)| Op::Get { key, rank }),
        (0u8..12).prop_map(|key| Op::Invalidate { key }),
        (0u8..2).prop_map(|node| Op::FailNode { node }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_linearizes_against_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let topo = Topology::new(4, 4);
        // Small tiers force constant eviction/spill traffic.
        let cache = CacheManager::new(
            topo,
            NetworkModel::slingshot(),
            CacheConfig::new(2, 4096, 8192),
            BackingStore::default_store(),
        );
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Put { key, len, tag, rank } => {
                    let data = vec![tag; len as usize];
                    cache.put(RankId(rank as u32), &format!("k{key}"), Bytes::from(data.clone()));
                    model.insert(key, data);
                }
                Op::Get { key, rank } => {
                    let got = cache.get(RankId(rank as u32), &format!("k{key}")).unwrap();
                    match model.get(&key) {
                        Some(expect) => {
                            let (bytes, outcome) = got.expect("model says present");
                            prop_assert_eq!(&bytes[..], &expect[..], "value mismatch at {:?}", op);
                            prop_assert!(outcome.virtual_secs >= 0.0);
                        }
                        None => prop_assert!(got.is_none(), "phantom object at {:?}", op),
                    }
                }
                Op::Invalidate { key } => {
                    // Drops cached copies only; the backing store keeps the
                    // object, so the model is unchanged.
                    cache.invalidate(&format!("k{key}"));
                }
                Op::FailNode { node } => {
                    cache.fail_node(NodeId(node as u32));
                }
            }
        }

        // Post-run: every object in the model is still retrievable.
        for (key, expect) in &model {
            let (bytes, _) = cache.get(RankId(3), &format!("k{key}")).unwrap().expect("durable");
            prop_assert_eq!(&bytes[..], &expect[..]);
        }
    }

    /// Locality reports are sound: any reported holder actually serves the
    /// object, and meta sizes match.
    #[test]
    fn locality_reports_are_sound(keys in proptest::collection::vec((0u8..6, 16u16..512), 1..30)) {
        let topo = Topology::new(4, 4);
        let cache = CacheManager::new(
            topo,
            NetworkModel::slingshot(),
            CacheConfig::new(2, 2048, 1 << 20),
            BackingStore::default_store(),
        );
        let mut sizes: HashMap<u8, usize> = HashMap::new();
        for (key, len) in &keys {
            cache.put(RankId(0), &format!("k{key}"), Bytes::from(vec![1u8; *len as usize]));
            sizes.insert(*key, *len as usize);
        }
        for (key, len) in &sizes {
            let name = format!("k{key}");
            if let Some(meta) = cache.meta(&name) {
                prop_assert_eq!(meta.size as usize, *len);
                prop_assert!(!cache.locality(&name).is_empty());
            }
            // Whether cached or evicted, the object itself must be readable.
            let (bytes, _) = cache.get(RankId(5), &name).unwrap().expect("durable");
            prop_assert_eq!(bytes.len(), *len);
        }
    }
}
