//! Model-based property tests for the tiered store (PR 9): occupancy
//! accounting, spill/promote byte fidelity, and quarantine safety, each
//! checked for **all three eviction policies** under random operation
//! sequences.
//!
//! Invariants under test:
//!
//! 1. No tier store ever holds more bytes than its capacity, and its
//!    `used` counter always equals the sum of resident entry sizes.
//! 2. Data that moves between tiers (DRAM→NVMe spill, NVMe→DRAM
//!    promote-on-reuse) keeps its bytes and checksum — a `get` always
//!    returns exactly the last value `put`, whatever tier served it.
//! 3. Quarantined (bit-rotted) copies are never served and never
//!    promoted: reads under an injected-rot fault plane still return
//!    the authoritative bytes.
//! 4. LRU victim order through the ordered recency index agrees with a
//!    naive `min_by_key((last_access, name))` scan of the entries.

use bytes::Bytes;
use ids_cache::{
    crc32, BackingStore, CacheConfig, CacheManager, EvictionKind, TierEngine, TierKind, TierStore,
};
use ids_simrt::faults::{FaultConfig, FaultPlane};
use ids_simrt::{NetworkModel, NodeId, RankId, Topology};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn eviction_kinds() -> impl Strategy<Value = EvictionKind> {
    prop_oneof![Just(EvictionKind::Lru), Just(EvictionKind::S3Fifo), Just(EvictionKind::TinyLfu),]
}

#[derive(Debug, Clone)]
enum StoreOp {
    Insert { key: u8, len: u16, tag: u8 },
    Remove { key: u8 },
    Touch { key: u8 },
    PopVictim,
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (0u8..16, 1u16..400, any::<u8>()).prop_map(|(key, len, tag)| StoreOp::Insert {
            key,
            len,
            tag
        }),
        (0u8..16).prop_map(|key| StoreOp::Remove { key }),
        (0u8..16).prop_map(|key| StoreOp::Touch { key }),
        Just(StoreOp::PopVictim),
    ]
}

#[derive(Debug, Clone)]
enum CacheOp {
    Put { key: u8, len: u16, tag: u8, rank: u8 },
    Get { key: u8, rank: u8 },
    FailNode { node: u8 },
    RecoverNode { node: u8 },
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    // Two crash-shaped arms against eight traffic-shaped arms keeps the
    // sequences dominated by puts/gets with occasional membership churn.
    prop_oneof![
        (0u8..10, 64u16..2048, any::<u8>(), 0u8..16)
            .prop_map(|(key, len, tag, rank)| CacheOp::Put { key, len, tag, rank }),
        (0u8..10, 64u16..2048, any::<u8>(), 0u8..16)
            .prop_map(|(key, len, tag, rank)| CacheOp::Put { key, len, tag, rank }),
        (0u8..10, 0u8..16).prop_map(|(key, rank)| CacheOp::Get { key, rank }),
        (0u8..10, 0u8..16).prop_map(|(key, rank)| CacheOp::Get { key, rank }),
        (0u8..2).prop_map(|node| CacheOp::FailNode { node }),
        (0u8..2).prop_map(|node| CacheOp::RecoverNode { node }),
    ]
}

fn tiered_cache(eviction: EvictionKind) -> CacheManager {
    // Small tiers force constant spill/promote/eviction traffic.
    CacheManager::new(
        Topology::new(4, 4),
        NetworkModel::slingshot(),
        CacheConfig::new(2, 4096, 8192).with_eviction(eviction),
        BackingStore::default_store(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Invariants 1 + 2 at the store level, for every policy: occupancy
    /// never exceeds capacity, `used` tracks the entry map exactly, and
    /// entries come back out (remove or eviction) byte- and
    /// CRC-identical to what went in.
    #[test]
    fn store_accounting_holds_for_every_policy(
        eviction in eviction_kinds(),
        ops in proptest::collection::vec(store_op(), 1..150),
    ) {
        let mut t = TierStore::new(TierKind::Dram, 1024, eviction);
        let mut model: HashMap<String, (Vec<u8>, u32)> = HashMap::new();
        let mut clock = 0u64;

        for op in &ops {
            clock += 1;
            match *op {
                StoreOp::Insert { key, len, tag } => {
                    let name = format!("k{key}");
                    let data = vec![tag; len as usize];
                    let crc = crc32(&data);
                    // Mimic the manager: evict until the entry fits
                    // (replacement frees the old copy first).
                    let old = model.get(&name).map_or(0, |(d, _)| d.len() as u64);
                    while t.used() - old.min(t.used()) + len as u64 > t.capacity() {
                        let Some((victim, e)) = t.pop_victim() else { break };
                        let (vd, vcrc) = model.remove(&victim).expect("victim was modeled");
                        prop_assert_eq!(&e.data[..], &vd[..], "evicted bytes changed");
                        prop_assert_eq!(e.crc, vcrc, "evicted crc changed");
                    }
                    // A replacement drops the old copy even when the new
                    // one is refused, so the model forgets it first.
                    model.remove(&name);
                    if t.insert(&name, Bytes::from(data.clone()), crc, clock) {
                        model.insert(name, (data, crc));
                    }
                }
                StoreOp::Remove { key } => {
                    let name = format!("k{key}");
                    let got = t.remove(&name);
                    match model.remove(&name) {
                        Some((d, crc)) => {
                            let e = got.expect("model says resident");
                            prop_assert_eq!(&e.data[..], &d[..]);
                            prop_assert_eq!(e.crc, crc);
                        }
                        None => prop_assert!(got.is_none(), "phantom entry {name}"),
                    }
                }
                StoreOp::Touch { key } => t.touch(&format!("k{key}"), clock),
                StoreOp::PopVictim => {
                    if let Some((victim, e)) = t.pop_victim() {
                        let (d, crc) = model.remove(&victim).expect("victim was modeled");
                        prop_assert_eq!(&e.data[..], &d[..]);
                        prop_assert_eq!(e.crc, crc);
                    } else {
                        prop_assert!(model.is_empty(), "refused to evict a resident entry");
                    }
                }
            }
            // Invariant 1, after every single operation.
            prop_assert!(t.used() <= t.capacity(), "occupancy {} > cap {}", t.used(), t.capacity());
            let sum: u64 = model.values().map(|(d, _)| d.len() as u64).sum();
            prop_assert_eq!(t.used(), sum, "used drifted from entry sizes");
            prop_assert_eq!(t.len(), model.len());
            t.check_accounting();
        }
    }

    /// Invariant 4: draining the LRU store yields victims in exactly the
    /// order a naive full-map `min_by_key((last_access, name))` scan
    /// would pick them (the ordered index replaced that O(n) scan).
    #[test]
    fn lru_victim_order_matches_naive_scan(
        ops in proptest::collection::vec((0u8..12, any::<bool>()), 1..80),
    ) {
        let mut t = TierStore::new(TierKind::Dram, u64::MAX, EvictionKind::Lru);
        let mut naive: HashMap<String, u64> = HashMap::new();
        let mut clock = 0u64;
        for (key, touch) in &ops {
            clock += 1;
            let name = format!("k{key}");
            if *touch && naive.contains_key(&name) {
                t.touch(&name, clock);
                naive.insert(name, clock);
            } else {
                t.insert(&name, Bytes::from(vec![1u8; 8]), 0, clock);
                naive.insert(name, clock);
            }
        }
        while !naive.is_empty() {
            let expect = naive
                .iter()
                .min_by_key(|(n, stamp)| (**stamp, (*n).clone()))
                .map(|(n, _)| n.clone())
                .expect("non-empty");
            let (victim, _) = t.pop_victim().expect("store and model agree on len");
            prop_assert_eq!(&victim, &expect, "ordered index disagrees with naive scan");
            naive.remove(&victim);
        }
        prop_assert!(t.pop_victim().is_none());
    }

    /// Invariant 2 end-to-end, for every policy: random put/get traffic
    /// with crash/recover events over tiny tiers (constant spill and
    /// promote churn) always serves the last value put, and no tier row
    /// of the inspector ever reports occupancy above capacity.
    #[test]
    fn all_policies_preserve_bytes_across_spill_and_promote(
        eviction in eviction_kinds(),
        ops in proptest::collection::vec(cache_op(), 1..100),
    ) {
        let cache = tiered_cache(eviction);
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();

        for op in &ops {
            match *op {
                CacheOp::Put { key, len, tag, rank } => {
                    let data = vec![tag; len as usize];
                    cache.put(RankId(rank as u32), &format!("k{key}"), Bytes::from(data.clone()));
                    model.insert(key, data);
                }
                CacheOp::Get { key, rank } => {
                    let got = cache.get(RankId(rank as u32), &format!("k{key}")).unwrap();
                    match model.get(&key) {
                        Some(expect) => {
                            let (bytes, _) = got.expect("model says present");
                            prop_assert_eq!(&bytes[..], &expect[..], "bytes changed in transit");
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
                CacheOp::FailNode { node } => cache.fail_node(NodeId(node as u32)),
                CacheOp::RecoverNode { node } => cache.recover_node(NodeId(node as u32)),
            }
            let inspection = cache.inspect();
            for tier in &inspection.tiers {
                prop_assert!(
                    tier.occupied_bytes <= tier.capacity_bytes,
                    "node {} {} over capacity: {}/{}",
                    tier.node, tier.tier, tier.occupied_bytes, tier.capacity_bytes
                );
            }
        }

        // Post-run: everything still durable, byte-identical.
        for (key, expect) in &model {
            let (bytes, _) = cache.get(RankId(3), &format!("k{key}")).unwrap().expect("durable");
            prop_assert_eq!(&bytes[..], &expect[..]);
        }
    }

    /// Invariant 3, for every policy: with injected bit rot on cached
    /// copies, a read never serves (and the reuse path never promotes)
    /// rotted bytes — quarantine-and-repair always falls back to a
    /// healthy replica or the backing store.
    #[test]
    fn rotted_copies_are_quarantined_never_served(
        eviction in eviction_kinds(),
        seed in 0u64..256,
        keys in proptest::collection::vec((0u8..6, 64u16..1500, any::<u8>()), 1..24),
    ) {
        let cache = tiered_cache(eviction);
        // Heavy bit rot on cached copies only; backing stays authoritative.
        cache.attach_faults(Arc::new(FaultPlane::new(
            seed,
            FaultConfig::storage_only(0.4, 0.0),
            4,
            16,
            1e6,
        )));
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
        for (key, len, tag) in &keys {
            let data = vec![*tag; *len as usize];
            cache.put(RankId((*key % 16) as u32), &format!("k{key}"), Bytes::from(data.clone()));
            model.insert(*key, data);
        }
        // Two read rounds: the first may quarantine rotted copies and
        // repopulate, the second reuses (and possibly promotes) what the
        // first round left resident.
        for round in 0..2u32 {
            for (key, expect) in &model {
                let (bytes, _) = cache
                    .get(RankId(((*key as u32) + round) % 16), &format!("k{key}"))
                    .unwrap()
                    .expect("backing is authoritative");
                prop_assert_eq!(&bytes[..], &expect[..], "served rotted bytes for k{}", key);
            }
        }
    }
}
