//! Placement policies: which node's tier should cache a new object.
//!
//! "The cache manager dynamically relocates data within the caching layer
//! to optimize proximity to computation, leveraging user-defined hints or
//! operator-defined policies" (§3.2). Three policies are provided; the
//! ablation bench compares them.
//!
//! Every policy is **liveness-aware**: placement only ever picks nodes
//! whose `live` flag is set, so an object is never placed onto a node
//! inside a crash window (its copy would be fenced immediately and lost
//! on recovery). All tie-breaks are deterministic — see each arm — so a
//! seeded chaos run reproduces placements exactly.

use ids_simrt::topology::NodeId;
use serde::{Deserialize, Serialize};

/// Placement policy for newly cached objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Cache on the node that produced/requested the object — maximizes
    /// the chance the next access is local (the paper's default:
    /// "data is cached locally to the nodes where there is a higher
    /// probability of it being accessed").
    ///
    /// When the requester is not a live cache node (compute-only nodes,
    /// or the requester's cache is inside a crash window), falls back to
    /// [`PlacementPolicy::CapacityWeighted`] — deterministically the
    /// live node with the most free bytes, ties broken to the lowest
    /// node index.
    LocalFirst,
    /// Rotate placements across *live* cache nodes — spreads capacity
    /// use. The rotation index counts placements, so the cycle is
    /// deterministic for a given call sequence even as nodes fail and
    /// recover (the counter keeps advancing; the modulus shrinks to the
    /// live set).
    RoundRobin,
    /// Weight placements by remaining capacity — avoids hot-node
    /// evictions. Ties break to the lowest node index.
    CapacityWeighted,
}

impl PlacementPolicy {
    /// Choose a node for a new object, or `None` when no cache node is
    /// live.
    ///
    /// * `requester` — node asking to cache the object.
    /// * `free_bytes[i]` — remaining DRAM capacity of cache node `i`.
    /// * `live[i]` — whether cache node `i` is currently up; down nodes
    ///   are never chosen.
    /// * `counter` — monotonically increasing placement counter (for
    ///   round-robin).
    pub fn place(
        self,
        requester: NodeId,
        free_bytes: &[u64],
        live: &[bool],
        counter: u64,
    ) -> Option<NodeId> {
        assert!(!free_bytes.is_empty(), "no cache nodes configured");
        assert_eq!(free_bytes.len(), live.len(), "free/live slices must align");
        let live_nodes: Vec<usize> = (0..live.len()).filter(|&i| live[i]).collect();
        if live_nodes.is_empty() {
            return None;
        }
        match self {
            PlacementPolicy::LocalFirst => {
                if requester.index() < live.len() && live[requester.index()] {
                    Some(requester)
                } else {
                    // Requester is not a live cache node (compute-only,
                    // or fenced): fall back to the emptiest live node.
                    PlacementPolicy::CapacityWeighted.place(requester, free_bytes, live, counter)
                }
            }
            PlacementPolicy::RoundRobin => {
                Some(NodeId(live_nodes[(counter % live_nodes.len() as u64) as usize] as u32))
            }
            PlacementPolicy::CapacityWeighted => {
                // Deterministic tie-break: most free bytes, then lowest
                // node index (Reverse(i) inside max_by_key).
                live_nodes
                    .into_iter()
                    .max_by_key(|&i| (free_bytes[i], std::cmp::Reverse(i)))
                    .map(|best| NodeId(best as u32))
            }
        }
    }

    /// Choose a replica set of up to `replication` *distinct live* nodes
    /// for a new object. The primary comes from [`PlacementPolicy::place`];
    /// the remaining slots are filled capacity-weighted over the other
    /// live nodes (most free bytes first, ties to the lowest index), so
    /// replicas spread deterministically.
    ///
    /// Returns fewer than `replication` nodes when fewer live nodes
    /// exist — the caller decides whether an under-replicated write is
    /// acceptable (and should log/meter it).
    pub fn place_replicas(
        self,
        requester: NodeId,
        free_bytes: &[u64],
        live: &[bool],
        counter: u64,
        replication: usize,
    ) -> Vec<NodeId> {
        let Some(primary) = self.place(requester, free_bytes, live, counter) else {
            return Vec::new();
        };
        let mut replicas = vec![primary];
        if replication > 1 {
            let mut rest: Vec<usize> =
                (0..live.len()).filter(|&i| live[i] && i != primary.index()).collect();
            rest.sort_by_key(|&i| (std::cmp::Reverse(free_bytes[i]), i));
            replicas.extend(rest.into_iter().take(replication - 1).map(|i| NodeId(i as u32)));
        }
        replicas.truncate(replication.max(1));
        replicas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UP: [bool; 4] = [true; 4];

    #[test]
    fn local_first_prefers_requester() {
        let p = PlacementPolicy::LocalFirst;
        assert_eq!(p.place(NodeId(2), &[100, 100, 100, 100], &UP, 0), Some(NodeId(2)));
    }

    #[test]
    fn local_first_falls_back_for_non_cache_nodes() {
        let p = PlacementPolicy::LocalFirst;
        // Requester node 9 doesn't host a cache tier (index >= len):
        // choose the emptiest live node instead.
        assert_eq!(p.place(NodeId(9), &[10, 500, 100], &[true; 3], 0), Some(NodeId(1)));
    }

    #[test]
    fn local_first_compute_only_fallback_tie_breaks_to_lowest_index() {
        let p = PlacementPolicy::LocalFirst;
        // Documented tie-break: equal free bytes resolve to the lowest
        // node index, deterministically, call after call.
        for counter in 0..5 {
            assert_eq!(p.place(NodeId(7), &[250, 250, 250], &[true; 3], counter), Some(NodeId(0)));
        }
        // A partial tie among the top contenders resolves the same way.
        assert_eq!(p.place(NodeId(7), &[100, 400, 400], &[true; 3], 0), Some(NodeId(1)));
    }

    #[test]
    fn local_first_skips_fenced_requester() {
        let p = PlacementPolicy::LocalFirst;
        // Requester hosts a cache tier but is inside a crash window:
        // placement must not target it.
        let live = [true, false, true];
        assert_eq!(p.place(NodeId(1), &[10, 900, 100], &live, 0), Some(NodeId(2)));
    }

    #[test]
    fn round_robin_cycles() {
        let p = PlacementPolicy::RoundRobin;
        let picks: Vec<u32> =
            (0..6).map(|c| p.place(NodeId(0), &[1, 1, 1], &[true; 3], c).unwrap().0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_down_nodes() {
        let p = PlacementPolicy::RoundRobin;
        let live = [true, false, true];
        let picks: Vec<u32> =
            (0..4).map(|c| p.place(NodeId(0), &[1, 1, 1], &live, c).unwrap().0).collect();
        assert_eq!(picks, vec![0, 2, 0, 2], "rotation covers live nodes only");
    }

    #[test]
    fn capacity_weighted_picks_emptiest_deterministically() {
        let p = PlacementPolicy::CapacityWeighted;
        assert_eq!(
            p.place(NodeId(0), &[5, 50, 50], &[true; 3], 0),
            Some(NodeId(1)),
            "ties break to lower index"
        );
        assert_eq!(p.place(NodeId(0), &[100, 50, 50], &[true; 3], 0), Some(NodeId(0)));
    }

    #[test]
    fn capacity_weighted_never_picks_a_down_node() {
        let p = PlacementPolicy::CapacityWeighted;
        // Node 1 has the most free bytes but is down.
        assert_eq!(p.place(NodeId(0), &[5, 900, 50], &[true, false, true], 0), Some(NodeId(2)));
    }

    #[test]
    fn all_nodes_down_places_nowhere() {
        for p in [
            PlacementPolicy::LocalFirst,
            PlacementPolicy::RoundRobin,
            PlacementPolicy::CapacityWeighted,
        ] {
            assert_eq!(p.place(NodeId(0), &[100, 100], &[false, false], 0), None);
            assert!(p.place_replicas(NodeId(0), &[100, 100], &[false, false], 0, 2).is_empty());
        }
    }

    #[test]
    fn replica_sets_are_distinct_live_and_deterministic() {
        let p = PlacementPolicy::LocalFirst;
        let free = [100, 300, 200, 400];
        let set = p.place_replicas(NodeId(0), &free, &UP, 0, 3);
        // Primary = requester; remainder capacity-ordered (3 then 2).
        assert_eq!(set, vec![NodeId(0), NodeId(3), NodeId(1)]);
        let again = p.place_replicas(NodeId(0), &free, &UP, 0, 3);
        assert_eq!(set, again, "replica choice is a pure function of its inputs");
        // Distinctness holds even when k exceeds the node count.
        let all = p.place_replicas(NodeId(0), &free, &UP, 0, 9);
        assert_eq!(all.len(), 4);
        let mut sorted: Vec<u32> = all.iter().map(|n| n.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "no node appears twice");
    }

    #[test]
    fn replica_sets_shrink_to_the_live_population() {
        let p = PlacementPolicy::CapacityWeighted;
        let live = [true, false, false, true];
        let set = p.place_replicas(NodeId(0), &[100, 900, 900, 50], &live, 0, 3);
        assert_eq!(set, vec![NodeId(0), NodeId(3)], "down nodes never join a replica set");
    }

    #[test]
    fn replica_tie_break_order_is_documented_and_stable() {
        // Secondary replicas with equal free bytes fill lowest-index
        // first — the documented deterministic order.
        let p = PlacementPolicy::CapacityWeighted;
        let set = p.place_replicas(NodeId(9), &[100, 300, 300, 300], &UP, 0, 4);
        assert_eq!(set, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(0)]);
    }
}
