//! Placement policies: which node's tier should cache a new object.
//!
//! "The cache manager dynamically relocates data within the caching layer
//! to optimize proximity to computation, leveraging user-defined hints or
//! operator-defined policies" (§3.2). Three policies are provided; the
//! ablation bench compares them.

use ids_simrt::topology::NodeId;
use serde::{Deserialize, Serialize};

/// Placement policy for newly cached objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Cache on the node that produced/requested the object — maximizes
    /// the chance the next access is local (the paper's default:
    /// "data is cached locally to the nodes where there is a higher
    /// probability of it being accessed").
    LocalFirst,
    /// Rotate placements across cache nodes — spreads capacity use.
    RoundRobin,
    /// Weight placements by remaining capacity — avoids hot-node evictions.
    CapacityWeighted,
}

impl PlacementPolicy {
    /// Choose a node for a new object.
    ///
    /// * `requester` — node asking to cache the object.
    /// * `free_bytes[i]` — remaining DRAM capacity of cache node `i`.
    /// * `counter` — monotonically increasing placement counter (for
    ///   round-robin).
    pub fn place(self, requester: NodeId, free_bytes: &[u64], counter: u64) -> NodeId {
        assert!(!free_bytes.is_empty(), "no cache nodes configured");
        match self {
            PlacementPolicy::LocalFirst => {
                if requester.index() < free_bytes.len() {
                    requester
                } else {
                    // Requester is not a cache node (e.g. compute-only):
                    // fall back to the emptiest cache node.
                    PlacementPolicy::CapacityWeighted.place(requester, free_bytes, counter)
                }
            }
            PlacementPolicy::RoundRobin => NodeId((counter % free_bytes.len() as u64) as u32),
            PlacementPolicy::CapacityWeighted => {
                let best = free_bytes
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &b)| (b, std::cmp::Reverse(i)))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                NodeId(best as u32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_first_prefers_requester() {
        let p = PlacementPolicy::LocalFirst;
        assert_eq!(p.place(NodeId(2), &[100, 100, 100, 100], 0), NodeId(2));
    }

    #[test]
    fn local_first_falls_back_for_non_cache_nodes() {
        let p = PlacementPolicy::LocalFirst;
        // Requester node 9 doesn't host a cache tier; choose emptiest.
        assert_eq!(p.place(NodeId(9), &[10, 500, 100], 0), NodeId(1));
    }

    #[test]
    fn round_robin_cycles() {
        let p = PlacementPolicy::RoundRobin;
        let picks: Vec<u32> = (0..6).map(|c| p.place(NodeId(0), &[1, 1, 1], c).0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn capacity_weighted_picks_emptiest_deterministically() {
        let p = PlacementPolicy::CapacityWeighted;
        assert_eq!(p.place(NodeId(0), &[5, 50, 50], 0), NodeId(1), "ties break to lower index");
        assert_eq!(p.place(NodeId(0), &[100, 50, 50], 0), NodeId(0));
    }
}
