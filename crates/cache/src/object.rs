//! Named cache objects.
//!
//! "Each cached object is addressed by its object name/path and a computed
//! object hash (object ID)" (§3.2). The id is a stable content-independent
//! hash of the *name*; the value bytes live in the tiers and the backing
//! store.

use ids_simrt::rng::fnv1a;
use ids_simrt::topology::NodeId;
use serde::{Deserialize, Serialize};

/// Compute the object ID for a name/path (the TR-Cache hash helper).
pub fn object_id(name: &str) -> u64 {
    fnv1a(name.as_bytes())
}

/// Metadata the Cache Manager tracks per cached object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// Object name/path, e.g. `"vina/P29274/CHEMBL112"`.
    pub name: String,
    /// Object ID (name hash).
    pub id: u64,
    /// Payload size in bytes.
    pub size: u64,
    /// Node whose tier currently holds the cached copy.
    pub node: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_distinct() {
        assert_eq!(object_id("vina/P29274/c1"), object_id("vina/P29274/c1"));
        assert_ne!(object_id("vina/P29274/c1"), object_id("vina/P29274/c2"));
    }
}
