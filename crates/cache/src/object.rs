//! Named cache objects.
//!
//! "Each cached object is addressed by its object name/path and a computed
//! object hash (object ID)" (§3.2). The id is a stable content-independent
//! hash of the *name*; the value bytes live in the tiers and the backing
//! store. Every stored copy additionally carries a CRC32 of its *content*,
//! so bit rot and torn writes are detectable wherever the copy lives.

use ids_simrt::rng::fnv1a;
use ids_simrt::topology::NodeId;
use serde::{Deserialize, Serialize};

/// Compute the object ID for a name/path (the TR-Cache hash helper).
pub fn object_id(name: &str) -> u64 {
    fnv1a(name.as_bytes())
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 checksum of a payload (IEEE 802.3 — the same polynomial used
/// by Ethernet, gzip, and DAOS object integrity). Used to detect bit
/// rot in cached copies and torn writes in the backing store.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Metadata the Cache Manager tracks per cached object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// Object name/path, e.g. `"vina/P29274/CHEMBL112"`.
    pub name: String,
    /// Object ID (name hash).
    pub id: u64,
    /// Payload size in bytes.
    pub size: u64,
    /// Node whose tier currently holds the cached copy.
    pub node: NodeId,
    /// CRC32 of the payload, recorded at insert time.
    pub checksum: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_distinct() {
        assert_eq!(object_id("vina/P29274/c1"), object_id("vina/P29274/c1"));
        assert_ne!(object_id("vina/P29274/c1"), object_id("vina/P29274/c2"));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = vec![0xA5u8; 4096];
        let clean = crc32(&data);
        for byte in [0usize, 1, 2048, 4095] {
            let mut rotted = data.clone();
            rotted[byte] ^= 0x01;
            assert_ne!(crc32(&rotted), clean, "flip at byte {byte} must change the CRC");
        }
    }
}
