//! Frequency-sketch admission control (the TinyLFU gate).
//!
//! A count-min sketch with 4 rows of saturating 8-bit counters estimates
//! how often each object name has been touched recently. The cache
//! manager records every lookup and store into one global sketch and
//! uses it two ways:
//!
//! * **NVMe admission** — a DRAM victim whose estimated frequency is
//!   below [`FrequencySketch::ADMIT_THRESHOLD`] is a one-hit wonder;
//!   when the NVMe tier is under pressure the spill is skipped and the
//!   victim dropped (the backing store stays authoritative), keeping
//!   scan traffic from churning the disk tier.
//! * **TinyLFU eviction** — a DRAM insert under pressure only displaces
//!   the LRU victim when the candidate's estimate is strictly higher
//!   than the victim's.
//!
//! Counters age by periodic halving: after `16 × width` recorded events
//! every counter is divided by two, so the sketch tracks *recent*
//! popularity rather than all-time counts. Hashing is deterministic
//! (FNV-1a seeded per row through a SplitMix64 finalizer), so identical
//! op sequences produce identical admission decisions — a requirement
//! for the chaos-parity tests.

/// Count-min frequency sketch with aging.
#[derive(Debug, Clone)]
pub struct FrequencySketch {
    rows: [Vec<u8>; 4],
    mask: u64,
    events: u64,
    sample_period: u64,
}

impl Default for FrequencySketch {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl FrequencySketch {
    /// Estimates at or above this are "reused"; below is a one-hit wonder.
    pub const ADMIT_THRESHOLD: u8 = 2;

    /// Build a sketch with `width` counters per row (rounded up to a
    /// power of two, minimum 16).
    pub fn new(width: usize) -> Self {
        let width = width.max(16).next_power_of_two();
        Self {
            rows: std::array::from_fn(|_| vec![0u8; width]),
            mask: (width - 1) as u64,
            events: 0,
            sample_period: 16 * width as u64,
        }
    }

    fn index(&self, name: &str, row: usize) -> usize {
        // FNV-1a over the bytes, then a SplitMix64 finalizer salted per
        // row so the four rows hash independently.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut z = h.wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(row as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        (z & self.mask) as usize
    }

    /// Record one access of `name`, aging the sketch when the sample
    /// period elapses.
    pub fn record(&mut self, name: &str) {
        for row in 0..self.rows.len() {
            let i = self.index(name, row);
            let c = &mut self.rows[row][i];
            *c = c.saturating_add(1);
        }
        self.events += 1;
        if self.events >= self.sample_period {
            self.age();
        }
    }

    /// Estimated recent access count of `name` (count-min: the minimum
    /// across rows bounds the true count from above).
    pub fn estimate(&self, name: &str) -> u8 {
        (0..self.rows.len()).map(|row| self.rows[row][self.index(name, row)]).min().unwrap_or(0)
    }

    /// Is `name` warm enough to be worth NVMe space under pressure?
    pub fn admit(&self, name: &str) -> bool {
        self.estimate(name) >= Self::ADMIT_THRESHOLD
    }

    /// Halve every counter (the aging step).
    fn age(&mut self) {
        for row in &mut self.rows {
            for c in row.iter_mut() {
                *c >>= 1;
            }
        }
        self.events = 0;
    }

    /// Forget everything (node-recovery cold start in tests).
    pub fn reset(&mut self) {
        for row in &mut self.rows {
            row.iter_mut().for_each(|c| *c = 0);
        }
        self.events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_recorded_frequency() {
        let mut s = FrequencySketch::new(256);
        for _ in 0..5 {
            s.record("hot");
        }
        s.record("cold");
        assert!(s.estimate("hot") >= 5, "count-min never undercounts");
        assert!(s.estimate("hot") > s.estimate("cold"));
        assert!(s.admit("hot"));
        assert!(!s.admit("never-seen"));
    }

    #[test]
    fn one_hit_wonders_are_rejected() {
        let mut s = FrequencySketch::default();
        s.record("once");
        assert!(!s.admit("once"), "a single touch is below the threshold");
        s.record("once");
        assert!(s.admit("once"));
    }

    #[test]
    fn aging_halves_counters() {
        let mut s = FrequencySketch::new(16);
        for _ in 0..200 {
            s.record("a");
        }
        let before = s.estimate("a");
        // Drive the sample period over with other traffic to force aging.
        for i in 0..(16 * 16) {
            s.record(&format!("filler{i}"));
        }
        assert!(s.estimate("a") < before, "aging decays stale popularity");
    }

    #[test]
    fn determinism_identical_sequences_identical_estimates() {
        let run = || {
            let mut s = FrequencySketch::new(64);
            for i in 0..300u32 {
                s.record(&format!("k{}", i % 7));
            }
            (0..7).map(|i| s.estimate(&format!("k{i}"))).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_clears_all_state() {
        let mut s = FrequencySketch::default();
        for _ in 0..10 {
            s.record("x");
        }
        s.reset();
        assert_eq!(s.estimate("x"), 0);
    }
}
