//! The tier store: the single place where per-tier capacity and
//! occupancy accounting lives.
//!
//! Every DRAM and NVMe tier in the cache manager is a [`TierStore`]
//! behind the [`TierEngine`] trait. All byte accounting (`used`,
//! `capacity`) is mutated *only* inside this module — a CI grep gate
//! rejects occupancy arithmetic anywhere else in `crates/cache` — so
//! the invariant `used == Σ entry sizes ≤ capacity` is enforceable in
//! one place ([`TierStore::check_accounting`]) and the eviction policies
//! (`evict.rs`) stay pure victim-choosers.
//!
//! Entries carry the CRC recorded at write time plus a `verified` flag
//! used by warm restart: a node recovery wipes DRAM (volatile) but
//! *retains* NVMe entries, marking them unverified until their first
//! clean read or the next anti-entropy scrub re-checks the checksum.

use crate::evict::{EvictionKind, PolicyState};
use bytes::Bytes;

/// Which hardware tier a store models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TierKind {
    /// Volatile node DRAM: lost on crash.
    Dram,
    /// Locally attached NVMe: survives a node restart.
    Nvme,
}

impl TierKind {
    /// Stable lowercase label for metrics and dumps.
    pub fn label(self) -> &'static str {
        match self {
            TierKind::Dram => "dram",
            TierKind::Nvme => "nvme",
        }
    }
}

/// One resident cache entry.
#[derive(Debug, Clone)]
pub struct StoredEntry {
    /// The object bytes.
    pub data: Bytes,
    /// CRC32 recorded at write time; serving requires a match.
    pub crc: u32,
    /// False for entries that survived a node restart on a persistent
    /// tier and have not yet been re-verified against their checksum.
    pub verified: bool,
    /// Logical clock of the last access (recency metadata).
    pub last_access: u64,
}

/// The storage-tier interface: capacity-accounted object residency with
/// policy-driven victim selection. The cache manager drives spill and
/// promote *between* engines; an engine only answers for one tier on
/// one node.
pub trait TierEngine {
    /// Which hardware tier this engine models.
    fn kind(&self) -> TierKind;
    /// Configured capacity in bytes.
    fn capacity(&self) -> u64;
    /// Bytes currently resident.
    fn used(&self) -> u64;
    /// Number of resident entries.
    fn len(&self) -> usize;
    /// True when nothing is resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Would an entry of `size` bytes fit without eviction?
    fn fits(&self, size: u64) -> bool;
    /// Is `name` resident?
    fn contains(&self, name: &str) -> bool;
    /// Insert an entry, replacing any previous copy of `name`. The entry
    /// must fit ([`TierEngine::fits`] after removing the old copy); the
    /// caller makes room first via [`TierEngine::pop_victim`]. Returns
    /// false (and stores nothing) when it cannot fit even alone.
    fn insert(&mut self, name: &str, data: Bytes, crc: u32, now: u64) -> bool;
    /// Remove and return `name`'s entry.
    fn remove(&mut self, name: &str) -> Option<StoredEntry>;
    /// Evict the policy's chosen victim and return it.
    fn pop_victim(&mut self) -> Option<(String, StoredEntry)>;
    /// Record an access (policy recency/frequency + entry stamp).
    fn touch(&mut self, name: &str, now: u64);
    /// Drop every entry (crash wipe).
    fn clear(&mut self);
}

/// The concrete tier store used for every DRAM/NVMe tier.
#[derive(Debug)]
pub struct TierStore {
    kind: TierKind,
    capacity: u64,
    used: u64,
    entries: std::collections::HashMap<String, StoredEntry>,
    policy: PolicyState,
    /// Victims popped over this store's lifetime (satellite metering for
    /// the ordered-index eviction path).
    victim_pops: u64,
}

impl TierStore {
    /// An empty store of `capacity` bytes running `eviction`.
    pub fn new(kind: TierKind, capacity: u64, eviction: EvictionKind) -> Self {
        Self {
            kind,
            capacity,
            used: 0,
            entries: std::collections::HashMap::new(),
            policy: PolicyState::new(eviction),
            victim_pops: 0,
        }
    }

    /// Immutable view of `name`'s entry.
    pub fn get(&self, name: &str) -> Option<&StoredEntry> {
        self.entries.get(name)
    }

    /// Size in bytes of `name`'s entry, if resident.
    pub fn size_of(&self, name: &str) -> Option<u64> {
        self.entries.get(name).map(|e| e.data.len() as u64)
    }

    /// Resident names in sorted order (deterministic iteration for
    /// anti-entropy and inspection).
    pub fn names_sorted(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.keys().cloned().collect();
        names.sort();
        names
    }

    /// Mark `name` as checksum-verified (clean read or scrub).
    /// Returns true when the entry existed and was previously unverified.
    pub fn mark_verified(&mut self, name: &str) -> bool {
        match self.entries.get_mut(name) {
            Some(e) if !e.verified => {
                e.verified = true;
                true
            }
            _ => false,
        }
    }

    /// Warm restart: keep every entry but drop its verified status, so
    /// the integrity plane re-checks each one lazily before trusting it.
    pub fn mark_all_unverified(&mut self) -> u64 {
        let mut n = 0;
        for e in self.entries.values_mut() {
            if e.verified {
                e.verified = false;
                n += 1;
            }
        }
        n
    }

    /// Entries awaiting re-verification.
    pub fn unverified(&self) -> u64 {
        self.entries.values().filter(|e| !e.verified).count() as u64
    }

    /// Victims popped over this store's lifetime.
    pub fn victim_pops(&self) -> u64 {
        self.victim_pops
    }

    /// The name the policy would evict next, without evicting it (the
    /// TinyLFU admission duel compares candidate vs victim frequency
    /// before deciding whether to displace anything).
    pub fn peek_victim(&self) -> Option<String> {
        self.policy.peek_victim().map(|n| n.to_string())
    }

    /// Sum of entry sizes — `used` recomputed from first principles.
    fn recompute_used(&self) -> u64 {
        self.entries.values().map(|e| e.data.len() as u64).sum()
    }

    /// Accounting invariant: `used` equals the sum of entry sizes and
    /// never exceeds capacity. Debug builds assert after every mutation
    /// batch; release builds self-heal drift instead of panicking.
    pub fn check_accounting(&mut self) {
        let sum = self.recompute_used();
        debug_assert_eq!(
            self.used,
            sum,
            "{} tier: used={} but entries sum to {sum}",
            self.kind.label(),
            self.used
        );
        debug_assert!(
            self.used <= self.capacity,
            "{} tier: used {} exceeds capacity {}",
            self.kind.label(),
            self.used,
            self.capacity
        );
        if self.used != sum {
            self.used = sum;
        }
    }
}

impl TierEngine for TierStore {
    fn kind(&self) -> TierKind {
        self.kind
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn fits(&self, size: u64) -> bool {
        self.used + size <= self.capacity
    }

    fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    fn insert(&mut self, name: &str, data: Bytes, crc: u32, now: u64) -> bool {
        let size = data.len() as u64;
        if size > self.capacity {
            return false;
        }
        if let Some(old) = self.entries.remove(name) {
            self.used = self.used.saturating_sub(old.data.len() as u64);
            self.policy.on_remove(name);
        }
        if !self.fits(size) {
            // The caller failed to make room; refuse rather than bust the
            // cap. (The manager's eviction loop prevents this.)
            return false;
        }
        self.used += size;
        self.entries
            .insert(name.to_string(), StoredEntry { data, crc, verified: true, last_access: now });
        self.policy.on_insert(name, now);
        true
    }

    fn remove(&mut self, name: &str) -> Option<StoredEntry> {
        let e = self.entries.remove(name)?;
        self.used = self.used.saturating_sub(e.data.len() as u64);
        self.policy.on_remove(name);
        Some(e)
    }

    fn pop_victim(&mut self) -> Option<(String, StoredEntry)> {
        loop {
            let name = self.policy.pop_victim()?;
            // Policy state may lag the entry map (lazy removal); skip
            // names no longer resident.
            let Some(e) = self.entries.remove(&name) else { continue };
            self.used = self.used.saturating_sub(e.data.len() as u64);
            self.victim_pops += 1;
            return Some((name, e));
        }
    }

    fn touch(&mut self, name: &str, now: u64) {
        if let Some(e) = self.entries.get_mut(name) {
            e.last_access = now;
            self.policy.on_access(name, now);
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
        self.policy.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize, tag: u8) -> Bytes {
        Bytes::from(vec![tag; n])
    }

    #[test]
    fn insert_remove_keeps_exact_accounting() {
        let mut t = TierStore::new(TierKind::Dram, 1000, EvictionKind::Lru);
        assert!(t.insert("a", payload(400, 1), 7, 1));
        assert!(t.insert("b", payload(400, 2), 8, 2));
        assert_eq!(t.used(), 800);
        assert!(!t.fits(400));
        // Overwrite replaces, not adds.
        assert!(t.insert("a", payload(100, 3), 9, 3));
        assert_eq!(t.used(), 500);
        assert_eq!(t.remove("b").map(|e| e.data.len()), Some(400));
        assert_eq!(t.used(), 100);
        t.check_accounting();
    }

    #[test]
    fn insert_refuses_rather_than_busting_the_cap() {
        let mut t = TierStore::new(TierKind::Nvme, 100, EvictionKind::Lru);
        assert!(!t.insert("big", payload(200, 1), 0, 1), "oversized alone");
        assert!(t.insert("a", payload(80, 1), 0, 1));
        assert!(!t.insert("b", payload(50, 2), 0, 2), "no room and no eviction ran");
        assert_eq!(t.used(), 80);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lru_victims_come_out_in_recency_order() {
        let mut t = TierStore::new(TierKind::Dram, 10_000, EvictionKind::Lru);
        t.insert("a", payload(10, 1), 0, 1);
        t.insert("b", payload(10, 2), 0, 2);
        t.insert("c", payload(10, 3), 0, 3);
        t.touch("a", 4); // refresh a → b is now the LRU
        let (v1, _) = t.pop_victim().unwrap();
        assert_eq!(v1, "b");
        let (v2, _) = t.pop_victim().unwrap();
        assert_eq!(v2, "c");
        assert_eq!(t.victim_pops(), 2);
    }

    #[test]
    fn warm_restart_marks_unverified_then_reverifies() {
        let mut t = TierStore::new(TierKind::Nvme, 1000, EvictionKind::Lru);
        t.insert("x", payload(10, 1), 0, 1);
        t.insert("y", payload(10, 2), 0, 2);
        assert_eq!(t.unverified(), 0);
        assert_eq!(t.mark_all_unverified(), 2);
        assert_eq!(t.unverified(), 2);
        assert!(t.mark_verified("x"));
        assert!(!t.mark_verified("x"), "already verified");
        assert_eq!(t.unverified(), 1);
    }
}
