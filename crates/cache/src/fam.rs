//! OpenFAM-style remote-memory access layer.
//!
//! "The global cache leverages ... OpenFAM, which provides a programming
//! interface for building applications that leverage large-scale
//! disaggregated memory ... memory management and lightweight data
//! operations, modelled after OpenSHMEM" (§3.3). This module reproduces
//! that API shape over simulated fabric-attached memory:
//!
//! * regions are allocated on a (memory-server) node with a fixed size;
//! * `put`/`get` move bytes between a client rank and a region, charging
//!   the RDMA cost model (one-sided: latency + bytes/bandwidth, cheaper
//!   intra-node);
//! * 64-bit atomics (`compare_and_swap`, `fetch_add`) operate on region
//!   words, as OpenFAM's atomics do.
//!
//! Data actually lives in host memory (`bytes::Bytes` buffers), so
//! correctness is real; only the *timing* is modelled.

use bytes::{Bytes, BytesMut};
use ids_obs::{Counter, MetricsRegistry};
use ids_simrt::faults::{FaultPlane, RetryPolicy};
use ids_simrt::net::NetworkModel;
use ids_simrt::topology::{NodeId, RankId, Topology};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of an allocated FAM region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FamRegionId(pub u64);

struct Region {
    node: NodeId,
    data: BytesMut,
}

/// A FAM access: the value read (for gets) and the virtual cost charged.
#[derive(Debug, Clone, PartialEq)]
pub struct FamAccess<T> {
    pub value: T,
    pub virtual_secs: f64,
}

/// Errors from FAM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FamError {
    UnknownRegion(FamRegionId),
    OutOfBounds {
        region: FamRegionId,
        offset: u64,
        len: u64,
        size: u64,
    },
    /// A fault-plane-injected transient failure: the op may succeed if
    /// retried (with backoff charged to the virtual clock).
    Transient {
        op: &'static str,
    },
    /// The node hosting the region is inside a crash window; retrying
    /// within the same BSP phase cannot succeed.
    NodeUnavailable(NodeId),
}

impl FamError {
    /// True for failures worth retrying in-phase (transients only).
    pub fn is_transient(&self) -> bool {
        matches!(self, FamError::Transient { .. })
    }
}

impl std::fmt::Display for FamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FamError::UnknownRegion(r) => write!(f, "unknown FAM region {r:?}"),
            FamError::OutOfBounds { region, offset, len, size } => {
                write!(
                    f,
                    "access [{offset}, {}) out of bounds for region {region:?} of size {size}",
                    offset + len
                )
            }
            FamError::Transient { op } => write!(f, "transient FAM failure during {op}"),
            FamError::NodeUnavailable(n) => write!(f, "FAM node {} is unavailable", n.0),
        }
    }
}

impl std::error::Error for FamError {}

/// Pre-resolved transfer counters (read/write directions).
struct FamMetrics {
    registry: MetricsRegistry,
    read_bytes: Counter,
    write_bytes: Counter,
    reads: Counter,
    writes: Counter,
    atomics: Counter,
    transients: Counter,
    retries: Counter,
}

impl FamMetrics {
    fn new(registry: MetricsRegistry) -> Self {
        Self {
            read_bytes: registry.counter_with("ids_fam_transfer_bytes_total", "dir", "read"),
            write_bytes: registry.counter_with("ids_fam_transfer_bytes_total", "dir", "write"),
            reads: registry.counter_with("ids_fam_ops_total", "op", "get"),
            writes: registry.counter_with("ids_fam_ops_total", "op", "put"),
            atomics: registry.counter_with("ids_fam_ops_total", "op", "atomic"),
            transients: registry.counter("ids_fam_transient_failures_total"),
            retries: registry.counter("ids_fam_retries_total"),
            registry,
        }
    }
}

/// The FAM layer: allocated regions plus the fabric cost model.
pub struct FamLayer {
    topo: Topology,
    net: NetworkModel,
    /// NVMe-class penalty multiplier applied by callers for spilled tiers
    /// (exposed so the cache manager shares one cost source).
    regions: Mutex<HashMap<FamRegionId, Region>>,
    next_id: Mutex<u64>,
    metrics: FamMetrics,
    faults: Mutex<Option<Arc<FaultPlane>>>,
}

impl FamLayer {
    /// Create a FAM layer over a topology and network model.
    pub fn new(topo: Topology, net: NetworkModel) -> Self {
        Self {
            topo,
            net,
            regions: Mutex::new(HashMap::new()),
            next_id: Mutex::new(0),
            metrics: FamMetrics::new(MetricsRegistry::new()),
            faults: Mutex::new(None),
        }
    }

    /// Attach a fault plane: ops can now fail transiently (per the
    /// plane's seeded schedule) or with `NodeUnavailable` during the
    /// hosting node's crash windows.
    pub fn attach_faults(&self, plane: Arc<FaultPlane>) {
        *self.faults.lock() = Some(plane);
    }

    /// The layer's `ids-obs` registry (transfer byte and op counters).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics.registry
    }

    /// Roll injected faults for one op attempt against `node` by `from`.
    fn inject(&self, from: RankId, node: NodeId, op: &'static str) -> Result<(), FamError> {
        let guard = self.faults.lock();
        let Some(plane) = guard.as_ref() else { return Ok(()) };
        if plane.node_down(node) {
            return Err(FamError::NodeUnavailable(node));
        }
        if plane.fam_transient(from) {
            self.metrics.transients.inc();
            return Err(FamError::Transient { op });
        }
        Ok(())
    }

    /// Link-degradation multiplier for transfer costs right now.
    fn link_mult(&self) -> f64 {
        self.faults.lock().as_ref().map_or(1.0, |p| p.link_factors().cost_mult())
    }

    /// Allocate a zeroed region of `size` bytes on `node`.
    pub fn allocate(&self, node: NodeId, size: u64) -> FamRegionId {
        let mut next = self.next_id.lock();
        let id = FamRegionId(*next);
        *next += 1;
        let mut data = BytesMut::with_capacity(size as usize);
        data.resize(size as usize, 0);
        self.regions.lock().insert(id, Region { node, data });
        id
    }

    /// Deallocate a region.
    pub fn deallocate(&self, id: FamRegionId) -> Result<(), FamError> {
        self.regions.lock().remove(&id).map(|_| ()).ok_or(FamError::UnknownRegion(id))
    }

    /// The node hosting a region.
    pub fn node_of(&self, id: FamRegionId) -> Result<NodeId, FamError> {
        self.regions.lock().get(&id).map(|r| r.node).ok_or(FamError::UnknownRegion(id))
    }

    fn transfer_cost(&self, from: RankId, region_node: NodeId, bytes: u64) -> f64 {
        // Cost of a one-sided RDMA between the client rank's node and the
        // region's node; same-node access goes through shared memory.
        let client_node = self.topo.node_of(from);
        if client_node == region_node {
            self.net.intra_latency + bytes as f64 / self.net.intra_bandwidth
        } else {
            self.net.inter_latency + bytes as f64 / self.net.inter_bandwidth
        }
    }

    fn check_bounds(
        region: &Region,
        id: FamRegionId,
        offset: u64,
        len: u64,
    ) -> Result<(), FamError> {
        let size = region.data.len() as u64;
        if offset + len > size {
            return Err(FamError::OutOfBounds { region: id, offset, len, size });
        }
        Ok(())
    }

    /// Write `data` into a region at `offset` from rank `from`.
    pub fn put(
        &self,
        from: RankId,
        id: FamRegionId,
        offset: u64,
        data: &[u8],
    ) -> Result<FamAccess<()>, FamError> {
        let mut regions = self.regions.lock();
        let region = regions.get_mut(&id).ok_or(FamError::UnknownRegion(id))?;
        Self::check_bounds(region, id, offset, data.len() as u64)?;
        self.inject(from, region.node, "put")?;
        region.data[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        let cost = self.transfer_cost(from, region.node, data.len() as u64) * self.link_mult();
        self.metrics.writes.inc();
        self.metrics.write_bytes.add(data.len() as u64);
        Ok(FamAccess { value: (), virtual_secs: cost })
    }

    /// Read `len` bytes from a region at `offset` into rank `from`.
    pub fn get(
        &self,
        from: RankId,
        id: FamRegionId,
        offset: u64,
        len: u64,
    ) -> Result<FamAccess<Bytes>, FamError> {
        let regions = self.regions.lock();
        let region = regions.get(&id).ok_or(FamError::UnknownRegion(id))?;
        Self::check_bounds(region, id, offset, len)?;
        self.inject(from, region.node, "get")?;
        let bytes = Bytes::copy_from_slice(&region.data[offset as usize..(offset + len) as usize]);
        let cost = self.transfer_cost(from, region.node, len) * self.link_mult();
        self.metrics.reads.inc();
        self.metrics.read_bytes.add(len);
        Ok(FamAccess { value: bytes, virtual_secs: cost })
    }

    /// Atomic compare-and-swap on an aligned u64 word (little-endian).
    /// Returns the previous value; the swap happened iff it equals
    /// `expected`.
    pub fn compare_and_swap(
        &self,
        from: RankId,
        id: FamRegionId,
        offset: u64,
        expected: u64,
        desired: u64,
    ) -> Result<FamAccess<u64>, FamError> {
        let mut regions = self.regions.lock();
        let region = regions.get_mut(&id).ok_or(FamError::UnknownRegion(id))?;
        Self::check_bounds(region, id, offset, 8)?;
        self.inject(from, region.node, "compare_and_swap")?;
        let slot = &mut region.data[offset as usize..offset as usize + 8];
        // `check_bounds` guarantees 8 bytes; refuse as out-of-bounds rather
        // than panic if that invariant ever breaks.
        let word: [u8; 8] = slot[..].try_into().map_err(|_| FamError::OutOfBounds {
            region: id,
            offset,
            len: 8,
            size: 8,
        })?;
        let current = u64::from_le_bytes(word);
        if current == expected {
            slot.copy_from_slice(&desired.to_le_bytes());
        }
        // Atomics are latency-bound (8 bytes is below any bandwidth term).
        let cost = self.transfer_cost(from, region.node, 8) * self.link_mult();
        self.metrics.atomics.inc();
        Ok(FamAccess { value: current, virtual_secs: cost })
    }

    /// Atomic fetch-add on an aligned u64 word. Returns the previous value.
    pub fn fetch_add(
        &self,
        from: RankId,
        id: FamRegionId,
        offset: u64,
        delta: u64,
    ) -> Result<FamAccess<u64>, FamError> {
        let mut regions = self.regions.lock();
        let region = regions.get_mut(&id).ok_or(FamError::UnknownRegion(id))?;
        Self::check_bounds(region, id, offset, 8)?;
        self.inject(from, region.node, "fetch_add")?;
        let slot = &mut region.data[offset as usize..offset as usize + 8];
        // Same bounds-invariant defence as `compare_and_swap`.
        let word: [u8; 8] = slot[..].try_into().map_err(|_| FamError::OutOfBounds {
            region: id,
            offset,
            len: 8,
            size: 8,
        })?;
        let current = u64::from_le_bytes(word);
        slot.copy_from_slice(&current.wrapping_add(delta).to_le_bytes());
        let cost = self.transfer_cost(from, region.node, 8) * self.link_mult();
        self.metrics.atomics.inc();
        Ok(FamAccess { value: current, virtual_secs: cost })
    }

    /// Jitter draw for backoff: deterministic from the attached plane,
    /// or a fixed midpoint when no plane is attached (no jitter needed
    /// because nothing can fail transiently without one).
    fn jitter(&self, from: RankId) -> f64 {
        self.faults.lock().as_ref().map_or(0.5, |p| p.jitter01(from))
    }

    /// [`Self::get`] with bounded retry: transient failures back off
    /// exponentially (waits accumulate into the returned `virtual_secs`,
    /// charging the virtual clock rather than sleeping). Non-transient
    /// errors and exhausted retries propagate.
    pub fn get_with_retry(
        &self,
        from: RankId,
        id: FamRegionId,
        offset: u64,
        len: u64,
        policy: &RetryPolicy,
    ) -> Result<FamAccess<Bytes>, FamError> {
        let mut waited = 0.0;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.get(from, id, offset, len) {
                Ok(mut access) => {
                    access.virtual_secs += waited;
                    return Ok(access);
                }
                Err(e) if e.is_transient() && attempt < policy.max_attempts => {
                    self.metrics.retries.inc();
                    waited += policy.backoff_secs(attempt, self.jitter(from));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// [`Self::put`] with bounded retry; see [`Self::get_with_retry`].
    pub fn put_with_retry(
        &self,
        from: RankId,
        id: FamRegionId,
        offset: u64,
        data: &[u8],
        policy: &RetryPolicy,
    ) -> Result<FamAccess<()>, FamError> {
        let mut waited = 0.0;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.put(from, id, offset, data) {
                Ok(mut access) => {
                    access.virtual_secs += waited;
                    return Ok(access);
                }
                Err(e) if e.is_transient() && attempt < policy.max_attempts => {
                    self.metrics.retries.inc();
                    waited += policy.backoff_secs(attempt, self.jitter(from));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> FamLayer {
        FamLayer::new(Topology::new(4, 2), NetworkModel::slingshot())
    }

    #[test]
    fn put_get_round_trip() {
        let fam = layer();
        let region = fam.allocate(NodeId(1), 1024);
        fam.put(RankId(0), region, 100, b"docking-result").unwrap();
        let got = fam.get(RankId(5), region, 100, 14).unwrap();
        assert_eq!(&got.value[..], b"docking-result");
    }

    #[test]
    fn local_access_is_cheaper_than_remote() {
        let fam = layer();
        let region = fam.allocate(NodeId(1), 1 << 20);
        // Ranks 2,3 live on node 1; rank 0 on node 0.
        let local = fam.get(RankId(2), region, 0, 1 << 20).unwrap().virtual_secs;
        let remote = fam.get(RankId(0), region, 0, 1 << 20).unwrap().virtual_secs;
        assert!(local < remote, "local {local} vs remote {remote}");
    }

    #[test]
    fn out_of_bounds_rejected() {
        let fam = layer();
        let region = fam.allocate(NodeId(0), 16);
        assert!(matches!(
            fam.put(RankId(0), region, 10, b"0123456789"),
            Err(FamError::OutOfBounds { .. })
        ));
        assert!(fam.get(RankId(0), region, 16, 1).is_err());
    }

    #[test]
    fn unknown_and_deallocated_regions_error() {
        let fam = layer();
        assert!(fam.get(RankId(0), FamRegionId(99), 0, 1).is_err());
        let region = fam.allocate(NodeId(0), 8);
        fam.deallocate(region).unwrap();
        assert!(fam.get(RankId(0), region, 0, 1).is_err());
        assert!(fam.deallocate(region).is_err());
    }

    #[test]
    fn cas_swaps_only_on_match() {
        let fam = layer();
        let region = fam.allocate(NodeId(0), 8);
        // Initial word is zero.
        let prev = fam.compare_and_swap(RankId(0), region, 0, 0, 42).unwrap();
        assert_eq!(prev.value, 0, "swap succeeded");
        let prev = fam.compare_and_swap(RankId(0), region, 0, 0, 99).unwrap();
        assert_eq!(prev.value, 42, "swap failed, word unchanged");
        let now = fam.get(RankId(0), region, 0, 8).unwrap().value;
        assert_eq!(u64::from_le_bytes(now[..].try_into().unwrap()), 42);
    }

    #[test]
    fn fetch_add_accumulates() {
        let fam = layer();
        let region = fam.allocate(NodeId(0), 8);
        assert_eq!(fam.fetch_add(RankId(0), region, 0, 5).unwrap().value, 0);
        assert_eq!(fam.fetch_add(RankId(1), region, 0, 7).unwrap().value, 5);
        let now = fam.get(RankId(0), region, 0, 8).unwrap().value;
        assert_eq!(u64::from_le_bytes(now[..].try_into().unwrap()), 12);
    }

    #[test]
    fn transfer_metrics_count_bytes_and_ops() {
        let fam = layer();
        let region = fam.allocate(NodeId(1), 1024);
        fam.put(RankId(0), region, 0, &[7u8; 100]).unwrap();
        fam.get(RankId(0), region, 0, 40).unwrap();
        fam.get(RankId(0), region, 40, 60).unwrap();
        fam.fetch_add(RankId(0), region, 512, 1).unwrap();
        let snap = fam.metrics().snapshot();
        assert_eq!(snap.counter("ids_fam_transfer_bytes_total", "write"), 100);
        assert_eq!(snap.counter("ids_fam_transfer_bytes_total", "read"), 100);
        assert_eq!(snap.counter("ids_fam_ops_total", "put"), 1);
        assert_eq!(snap.counter("ids_fam_ops_total", "get"), 2);
        assert_eq!(snap.counter("ids_fam_ops_total", "atomic"), 1);
    }

    #[test]
    fn transient_faults_fail_ops_and_retry_recovers() {
        use ids_simrt::faults::{FaultConfig, FaultPlane};
        let fam = layer();
        let region = fam.allocate(NodeId(1), 1024);
        fam.put(RankId(0), region, 0, b"payload").unwrap();
        fam.attach_faults(Arc::new(FaultPlane::new(
            11,
            FaultConfig::transient_only(0.5),
            4,
            8,
            100.0,
        )));
        // With p=0.5 per attempt, 200 bare gets must see failures...
        let failures = (0..200)
            .filter(|_| matches!(fam.get(RankId(0), region, 0, 7), Err(FamError::Transient { .. })))
            .count();
        assert!(failures > 50, "transient failures observed: {failures}");
        // ...while the retrying variant (4 attempts) almost always lands,
        // and charges backoff waits into the virtual cost.
        let mut succeeded = 0;
        let mut max_cost: f64 = 0.0;
        for _ in 0..200 {
            if let Ok(a) = fam.get_with_retry(RankId(0), region, 0, 7, &RetryPolicy::default()) {
                succeeded += 1;
                max_cost = max_cost.max(a.virtual_secs);
            }
        }
        assert!(succeeded > 180, "retry succeeded {succeeded}/200");
        let base = fam.get(RankId(2), region, 0, 7).map(|a| a.virtual_secs).unwrap_or(1e-6);
        assert!(max_cost > base, "some retried get charged backoff ({max_cost} vs {base})");
        let snap = fam.metrics().snapshot();
        assert!(snap.counter("ids_fam_transient_failures_total", "") > 0);
        assert!(snap.counter("ids_fam_retries_total", "") > 0);
    }

    #[test]
    fn down_node_regions_are_unavailable_until_recovery() {
        use ids_simrt::faults::{FaultConfig, FaultPlane};
        let fam = layer();
        let region = fam.allocate(NodeId(0), 64);
        fam.put(RankId(0), region, 0, b"x").unwrap();
        let plane = Arc::new(FaultPlane::new(7, FaultConfig::crashes_only(1.0, 0.5), 4, 8, 60.0));
        let (start, end) = plane.crash_windows(NodeId(0))[0];
        fam.attach_faults(plane.clone());
        assert!(fam.get(RankId(0), region, 0, 1).is_ok(), "up before the window");
        plane.advance_to((start + end) / 2.0);
        assert_eq!(fam.get(RankId(0), region, 0, 1), Err(FamError::NodeUnavailable(NodeId(0))));
        // NodeUnavailable is not transient: retry fails fast.
        assert!(fam.get_with_retry(RankId(0), region, 0, 1, &RetryPolicy::default()).is_err());
        plane.advance_to(end + 1e-9);
        assert!(fam.get(RankId(0), region, 0, 1).is_ok(), "recovered after the window");
    }

    #[test]
    fn regions_are_zero_initialized() {
        let fam = layer();
        let region = fam.allocate(NodeId(2), 64);
        let got = fam.get(RankId(0), region, 0, 64).unwrap();
        assert!(got.value.iter().all(|&b| b == 0));
    }
}
