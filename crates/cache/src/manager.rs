//! The Cache Manager (§3.2): tiered placement, eviction, locality, and
//! failure handling for the globally shared client-side cache.
//!
//! Tier order on access, cheapest first: local DRAM → remote DRAM (via
//! FAM/RDMA) → local NVMe → remote NVMe → backing store. When DRAM
//! capacity is exceeded the LRU entry *spills* to the same node's NVMe
//! ("when DRAM capacity is exceeded, the cache seamlessly spills data to
//! locally connected SSDs"); NVMe evictions drop the cached copy entirely —
//! safe because authoritative copies live in the backing store. A fetched
//! backing-store object is re-cached near the requester (re-population).
//!
//! ## Replication, failover, and integrity
//!
//! With [`CacheConfig::replication`] > 1 every put lands on a set of
//! distinct live nodes (see [`PlacementPolicy::place_replicas`]); each
//! replica write is charged its honest fabric cost. Reads need any **one**
//! healthy replica (read-quorum-of-1 is sound here because puts overwrite
//! every copy and the backing store stays authoritative — replicas are
//! never stale): `get` fails over across replicas before touching the
//! backing store, so a node crash no longer forces a re-population. Every
//! cached copy carries the CRC32 recorded at write time; a copy whose
//! bytes no longer match (injected bit rot) is *quarantined* — dropped,
//! metered, and repaired from a healthy replica — never served. A
//! background anti-entropy pass ([`CacheManager::maybe_anti_entropy`],
//! driven from engine stage boundaries on the virtual clock) scrubs live
//! copies, re-establishes the replication factor after a crash wiped a
//! node, and rewrites torn backing-store objects from healthy replicas.

use crate::admit::FrequencySketch;
use crate::backing::BackingStore;
use crate::error::CacheError;
use crate::evict::EvictionKind;
use crate::inspect::{CacheInspection, TierInspection};
use crate::object::{crc32, object_id, ObjectMeta};
use crate::policy::PlacementPolicy;
use crate::tier::{StoredEntry, TierEngine, TierKind, TierStore};
use bytes::Bytes;
use ids_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use ids_simrt::faults::{Deadline, FaultPlane, LinkFactors, RetryPolicy};
use ids_simrt::net::{DeviceModel, NetworkModel};
use ids_simrt::topology::{NodeId, RankId, Topology};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

/// Which tier served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    LocalDram,
    RemoteDram,
    LocalNvme,
    RemoteNvme,
    Backing,
}

/// Result of a cache read: where it was served from and what it cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheOutcome {
    pub tier: Tier,
    pub virtual_secs: f64,
}

/// Aggregate hit/miss statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    pub local_dram_hits: u64,
    pub remote_dram_hits: u64,
    pub local_nvme_hits: u64,
    pub remote_nvme_hits: u64,
    pub backing_fetches: u64,
    pub total_misses: u64,
    pub evictions_to_nvme: u64,
    pub evictions_dropped: u64,
    /// Backing fetches of objects that had been cached before (lost to
    /// eviction or node failure) — re-population, not cold traffic.
    pub repopulations: u64,
    /// Transient-failure retries performed inside `get`.
    pub retries: u64,
    /// Cache-tier serves where a preferred copy was fenced, failed its
    /// retries, or was quarantined — and a surviving replica answered.
    pub failover_reads: u64,
    /// Puts that could not reach the configured replication factor
    /// because too few cache nodes were live.
    pub under_replicated_writes: u64,
    /// Checksum mismatches detected (cached copies and backing objects).
    pub corruptions_detected: u64,
    /// Copies restored from a healthy source: quarantined replicas
    /// re-written, replication factor re-established, torn backing
    /// objects rewritten.
    pub repairs: u64,
    /// NVMe→DRAM promotions on reuse.
    #[serde(default)]
    pub promotes: u64,
    /// Spills or inserts skipped by the frequency-sketch admission
    /// filter (one-hit wonders under tier pressure).
    #[serde(default)]
    pub admission_rejects: u64,
    /// NVMe entries retained across node recoveries (warm restart).
    #[serde(default)]
    pub warm_restart_retained: u64,
}

impl CacheStats {
    /// All cache-tier hits (everything short of the backing store).
    pub fn cache_hits(&self) -> u64 {
        self.local_dram_hits + self.remote_dram_hits + self.local_nvme_hits + self.remote_nvme_hits
    }

    /// Hit rate over all accesses that found the object somewhere.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits() + self.backing_fetches;
        if total == 0 {
            0.0
        } else {
            self.cache_hits() as f64 / total as f64
        }
    }
}

/// What one anti-entropy pass did (see [`CacheManager::anti_entropy`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AntiEntropyReport {
    /// Live cached copies whose checksum was verified.
    pub scrubbed: u64,
    /// Copies/backing objects found corrupt during the pass.
    pub corruptions: u64,
    /// Replica copies created to restore the replication factor.
    pub re_replicated: u64,
    /// Torn/rotted backing-store objects rewritten from a healthy replica.
    pub backing_repairs: u64,
}

impl AntiEntropyReport {
    /// Did the pass change or flag anything?
    pub fn is_noop(&self) -> bool {
        self.corruptions == 0 && self.re_replicated == 0 && self.backing_repairs == 0
    }
}

/// Cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of nodes contributing DRAM/NVMe to the cache (the first
    /// `cache_nodes` node ids of the topology).
    pub cache_nodes: usize,
    /// DRAM bytes contributed per node.
    pub dram_capacity: u64,
    /// NVMe bytes contributed per node.
    pub nvme_capacity: u64,
    /// Placement policy for new objects.
    pub policy: PlacementPolicy,
    /// Per-tier device cost model: DRAM vs NVMe latency/bandwidth,
    /// charged on every hit, spill, and promote.
    #[serde(default)]
    pub devices: DeviceModel,
    /// Eviction policy run by every tier store.
    #[serde(default)]
    pub eviction: EvictionKind,
    /// Retain NVMe contents across a node recovery (persistent media),
    /// distrusted until lazily re-verified against their checksums.
    /// When false both tiers are wiped, the historical behaviour.
    #[serde(default = "default_true")]
    pub warm_restart: bool,
    /// Gate DRAM→NVMe spills behind the frequency-sketch admission
    /// filter when the NVMe tier is under pressure, keeping one-hit
    /// wonders from churning the disk tier.
    #[serde(default = "default_true")]
    pub nvme_admission: bool,
    /// Copies kept per object across distinct live nodes (k-way
    /// replication). 1 = the pre-replication behaviour.
    #[serde(default = "default_replication")]
    pub replication: usize,
    /// Virtual seconds between background anti-entropy passes (scrub +
    /// re-replication), checked at engine stage boundaries.
    #[serde(default = "default_anti_entropy_interval")]
    pub anti_entropy_interval_secs: f64,
}

fn default_replication() -> usize {
    1
}

fn default_true() -> bool {
    true
}

fn default_anti_entropy_interval() -> f64 {
    1.0
}

impl CacheConfig {
    /// Testbed-like defaults: local-first placement, LRU eviction,
    /// testbed device costs (NVMe at 100 µs / 3 GB/s), warm restart and
    /// NVMe admission on, no replication.
    pub fn new(cache_nodes: usize, dram_capacity: u64, nvme_capacity: u64) -> Self {
        Self {
            cache_nodes,
            dram_capacity,
            nvme_capacity,
            policy: PlacementPolicy::LocalFirst,
            devices: DeviceModel::testbed(),
            eviction: EvictionKind::default(),
            warm_restart: default_true(),
            nvme_admission: default_true(),
            replication: default_replication(),
            anti_entropy_interval_secs: default_anti_entropy_interval(),
        }
    }

    /// Set the replication factor (clamped to at least 1).
    pub fn with_replication(mut self, k: usize) -> Self {
        self.replication = k.max(1);
        self
    }

    /// Select the eviction policy for every tier store.
    pub fn with_eviction(mut self, kind: EvictionKind) -> Self {
        self.eviction = kind;
        self
    }

    /// Override the per-tier device cost model.
    pub fn with_devices(mut self, devices: DeviceModel) -> Self {
        self.devices = devices;
        self
    }

    /// Enable or disable warm restart of the NVMe tier.
    pub fn with_warm_restart(mut self, on: bool) -> Self {
        self.warm_restart = on;
        self
    }

    /// Enable or disable the NVMe admission filter.
    pub fn with_nvme_admission(mut self, on: bool) -> Self {
        self.nvme_admission = on;
        self
    }
}

/// How the cache behaves under injected faults: retry budget, per-get
/// deadline, and whether a fenced (down-node) copy silently degrades to
/// a backing-store fetch or surfaces an error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultTolerance {
    /// Backoff schedule for transient remote failures.
    pub retry: RetryPolicy,
    /// Virtual-time budget per `get` (`f64::INFINITY` = none).
    pub get_deadline_secs: f64,
    /// When the serving copy is unreachable, fall through to the backing
    /// store (`true`, the §3.2 behaviour) or error with
    /// [`CacheError::NodeDown`] / [`CacheError::RetriesExhausted`].
    pub degrade_to_backing: bool,
}

impl Default for FaultTolerance {
    fn default() -> Self {
        Self {
            retry: RetryPolicy::default(),
            get_deadline_secs: f64::INFINITY,
            degrade_to_backing: true,
        }
    }
}

struct State {
    dram: Vec<TierStore>,
    nvme: Vec<TierStore>,
    /// Global frequency sketch feeding the admission filter and the
    /// TinyLFU eviction duel; every lookup and store records into it.
    sketch: FrequencySketch,
    clock: u64,
    placement_counter: u64,
    /// Nodes taken down explicitly via `fail_node`.
    manual_down: Vec<bool>,
    /// Last availability observed from the attached fault plane.
    plane_down: Vec<bool>,
    /// Nodes declared permanently dead via `fail_node_permanently`: their
    /// contents are purged (not just fenced) and `recover_node` refuses
    /// to bring them back.
    permanent_down: Vec<bool>,
    /// Virtual time at which each node last went down.
    down_since: Vec<f64>,
    /// Names that were cached at least once — a later backing fetch for
    /// one of these is a *re-population*, not cold traffic.
    ever_cached: HashSet<String>,
    /// Names written via [`CacheManager::put_ephemeral`]: replicated in
    /// the cache tiers only, never written through to the backing store.
    /// A get that misses every tier returns `None` immediately instead
    /// of paying the backing-store RPC — the caller recomputes.
    ephemeral: HashSet<String>,
    /// Virtual time of the last anti-entropy pass.
    last_anti_entropy: f64,
    /// A node recovered since the last pass: run anti-entropy at the next
    /// opportunity regardless of the interval.
    recovery_pending: bool,
}

impl State {
    /// A node is unavailable if the manual switch, the fault plane, or a
    /// permanent-death declaration says so.
    fn is_down(&self, ni: usize) -> bool {
        self.manual_down[ni] || self.plane_down[ni] || self.permanent_down[ni]
    }
}

/// Pre-resolved `ids-obs` handles for the cache's fixed label set, so
/// the hot path bumps atomics without touching the registry maps.
struct CacheMetrics {
    registry: MetricsRegistry,
    hits: [Counter; 4], // indexed by tier_slot(): local/remote DRAM, local/remote NVMe
    backing_fetches: Counter,
    misses: Counter,
    inserts_dram: Counter,
    inserts_nvme: Counter,
    spills: Counter,
    evictions_dram: Counter,
    evictions_nvme: Counter,
    evicted_bytes_dram: Counter,
    evicted_bytes_nvme: Counter,
    size_dram: Gauge,
    size_nvme: Gauge,
    node_failures: Counter,
    node_recoveries: Counter,
    retries: Counter,
    deadline_timeouts: Counter,
    repopulations: Counter,
    retry_wait: Histogram,
    recovery_time: Histogram,
    failover_reads: Counter,
    under_replicated_writes: Counter,
    corruptions_cache: Counter,
    corruptions_backing: Counter,
    quarantines: Counter,
    repairs_replicate: Counter,
    repairs_backing: Counter,
    anti_entropy_runs: Counter,
    scrubbed_objects: Counter,
    victim_pops: Counter,
    promotes: Counter,
    promoted_bytes: Counter,
    admission_rejects_dram: Counter,
    admission_rejects_nvme: Counter,
    warm_retained: Counter,
    warm_verified: Counter,
    spill_bytes: Histogram,
    promote_bytes: Histogram,
}

impl CacheMetrics {
    fn new(registry: MetricsRegistry) -> Self {
        let hit = |tier| registry.counter_with("ids_cache_lookup_hits_total", "tier", tier);
        Self {
            hits: [hit("local_dram"), hit("remote_dram"), hit("local_nvme"), hit("remote_nvme")],
            backing_fetches: hit("backing"),
            misses: registry.counter("ids_cache_lookup_misses_total"),
            inserts_dram: registry.counter_with("ids_cache_inserts_total", "tier", "dram"),
            inserts_nvme: registry.counter_with("ids_cache_inserts_total", "tier", "nvme"),
            spills: registry.counter("ids_cache_spills_total"),
            evictions_dram: registry.counter_with("ids_cache_evictions_total", "tier", "dram"),
            evictions_nvme: registry.counter_with("ids_cache_evictions_total", "tier", "nvme"),
            evicted_bytes_dram: registry.counter_with(
                "ids_cache_evicted_bytes_total",
                "tier",
                "dram",
            ),
            evicted_bytes_nvme: registry.counter_with(
                "ids_cache_evicted_bytes_total",
                "tier",
                "nvme",
            ),
            size_dram: registry.gauge_with("ids_cache_size_bytes", "tier", "dram"),
            size_nvme: registry.gauge_with("ids_cache_size_bytes", "tier", "nvme"),
            node_failures: registry.counter("ids_cache_node_failures_total"),
            node_recoveries: registry.counter("ids_cache_node_recoveries_total"),
            retries: registry.counter("ids_cache_retries_total"),
            deadline_timeouts: registry.counter("ids_cache_deadline_timeouts_total"),
            repopulations: registry.counter("ids_cache_repopulations_total"),
            retry_wait: registry.histogram("ids_cache_retry_wait_secs"),
            recovery_time: registry.histogram("ids_cache_node_recovery_secs"),
            failover_reads: registry.counter("ids_cache_failover_reads_total"),
            under_replicated_writes: registry.counter("ids_cache_under_replicated_writes_total"),
            corruptions_cache: registry.counter_with(
                "ids_cache_corruptions_detected_total",
                "source",
                "cache",
            ),
            corruptions_backing: registry.counter_with(
                "ids_cache_corruptions_detected_total",
                "source",
                "backing",
            ),
            quarantines: registry.counter("ids_cache_quarantines_total"),
            repairs_replicate: registry.counter_with(
                "ids_cache_repairs_total",
                "kind",
                "re_replicate",
            ),
            repairs_backing: registry.counter_with(
                "ids_cache_repairs_total",
                "kind",
                "backing_rewrite",
            ),
            anti_entropy_runs: registry.counter("ids_cache_anti_entropy_runs_total"),
            scrubbed_objects: registry.counter("ids_cache_scrubbed_objects_total"),
            victim_pops: registry.counter("ids_cache_victim_pops_total"),
            promotes: registry.counter("ids_cache_promotes_total"),
            promoted_bytes: registry.counter("ids_cache_promoted_bytes_total"),
            admission_rejects_dram: registry.counter_with(
                "ids_cache_admission_rejects_total",
                "tier",
                "dram",
            ),
            admission_rejects_nvme: registry.counter_with(
                "ids_cache_admission_rejects_total",
                "tier",
                "nvme",
            ),
            warm_retained: registry.counter("ids_cache_warm_restart_retained_total"),
            warm_verified: registry.counter("ids_cache_warm_restart_verified_total"),
            spill_bytes: registry.histogram("ids_cache_spill_bytes"),
            promote_bytes: registry.histogram("ids_cache_promote_bytes"),
            registry,
        }
    }

    fn tier_hit(&self, tier: Tier) {
        match tier {
            Tier::LocalDram => self.hits[0].inc(),
            Tier::RemoteDram => self.hits[1].inc(),
            Tier::LocalNvme => self.hits[2].inc(),
            Tier::RemoteNvme => self.hits[3].inc(),
            Tier::Backing => self.backing_fetches.inc(),
        }
    }

    fn update_sizes(&self, st: &State) {
        self.size_dram.set(st.dram.iter().map(|t| t.used()).sum::<u64>() as i64);
        self.size_nvme.set(st.nvme.iter().map(|t| t.used()).sum::<u64>() as i64);
    }
}

/// The distributed cache manager.
pub struct CacheManager {
    cfg: CacheConfig,
    topo: Topology,
    net: NetworkModel,
    backing: BackingStore,
    state: Mutex<State>,
    stats: Mutex<CacheStats>,
    metrics: CacheMetrics,
    faults: Mutex<Option<Arc<FaultPlane>>>,
    ft: Mutex<FaultTolerance>,
}

impl CacheManager {
    /// Build a cache over `topo` with the given config; the backing store
    /// starts empty.
    ///
    /// # Panics
    ///
    /// Panics when the config is unsatisfiable for `topo` (zero cache
    /// nodes, or more cache nodes than the cluster has). Use
    /// [`CacheManager::try_new`] to get the rejection as a typed
    /// [`CacheError::InvalidConfig`] instead.
    pub fn new(topo: Topology, net: NetworkModel, cfg: CacheConfig, backing: BackingStore) -> Self {
        match Self::try_new(topo, net, cfg, backing) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: rejects unsatisfiable configs with
    /// [`CacheError::InvalidConfig`] instead of panicking, so embedding
    /// services can surface the problem as a typed error.
    pub fn try_new(
        topo: Topology,
        net: NetworkModel,
        cfg: CacheConfig,
        backing: BackingStore,
    ) -> Result<Self, CacheError> {
        if cfg.cache_nodes == 0 {
            return Err(CacheError::InvalidConfig("need at least one cache node".into()));
        }
        if cfg.cache_nodes as u32 > topo.nodes() {
            return Err(CacheError::InvalidConfig(format!(
                "{} cache nodes exceed the cluster's {} nodes",
                cfg.cache_nodes,
                topo.nodes()
            )));
        }
        let state = State {
            dram: (0..cfg.cache_nodes)
                .map(|_| TierStore::new(TierKind::Dram, cfg.dram_capacity, cfg.eviction))
                .collect(),
            nvme: (0..cfg.cache_nodes)
                .map(|_| TierStore::new(TierKind::Nvme, cfg.nvme_capacity, cfg.eviction))
                .collect(),
            sketch: FrequencySketch::default(),
            clock: 0,
            placement_counter: 0,
            manual_down: vec![false; cfg.cache_nodes],
            plane_down: vec![false; cfg.cache_nodes],
            permanent_down: vec![false; cfg.cache_nodes],
            down_since: vec![0.0; cfg.cache_nodes],
            ever_cached: HashSet::new(),
            ephemeral: HashSet::new(),
            last_anti_entropy: 0.0,
            recovery_pending: false,
        };
        Ok(Self {
            cfg,
            topo,
            net,
            backing,
            state: Mutex::new(state),
            stats: Mutex::new(CacheStats::default()),
            metrics: CacheMetrics::new(MetricsRegistry::new()),
            faults: Mutex::new(None),
            ft: Mutex::new(FaultTolerance::default()),
        })
    }

    /// Attach a fault plane: node availability follows its crash
    /// windows, remote accesses can fail transiently, and transfer
    /// costs absorb link degradation.
    pub fn attach_faults(&self, plane: Arc<FaultPlane>) {
        *self.faults.lock() = Some(plane);
    }

    /// Replace the fault-tolerance settings (retry budget, deadline,
    /// degradation mode).
    pub fn set_fault_tolerance(&self, ft: FaultTolerance) {
        *self.ft.lock() = ft;
    }

    /// Current fault-tolerance settings.
    pub fn fault_tolerance(&self) -> FaultTolerance {
        *self.ft.lock()
    }

    /// Is `node` currently unavailable (manually failed or inside a
    /// fault-plane crash window)?
    pub fn node_is_down(&self, node: NodeId) -> bool {
        let plane = self.faults.lock().clone();
        let mut st = self.state.lock();
        self.sync_with_plane(&mut st, plane.as_deref());
        node.index() < self.cfg.cache_nodes && st.is_down(node.index())
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The cache's `ids-obs` registry (tier hit/insert/eviction counters
    /// and per-tier resident-size gauges).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics.registry
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats.lock().clone()
    }

    /// Reset statistics (not contents).
    pub fn reset_stats(&self) {
        *self.stats.lock() = CacheStats::default();
    }

    fn dram_transfer(&self, from: RankId, node: NodeId, bytes: u64) -> f64 {
        if self.topo.node_of(from) == node {
            self.net.intra_latency + bytes as f64 / self.net.intra_bandwidth
        } else {
            self.net.inter_cost(bytes)
        }
    }

    fn nvme_transfer(&self, from: RankId, node: NodeId, bytes: u64) -> f64 {
        let device = self.cfg.devices.nvme_cost(bytes);
        if self.topo.node_of(from) == node {
            device
        } else {
            device + self.net.inter_cost(bytes)
        }
    }

    /// Fold the fault plane's current availability into our up/down
    /// state, firing failure/recovery bookkeeping on transitions.
    fn sync_with_plane(&self, st: &mut State, plane: Option<&FaultPlane>) {
        let Some(p) = plane else { return };
        let now = p.now();
        for ni in 0..self.cfg.cache_nodes {
            let pd = p.node_down(NodeId(ni as u32));
            if pd == st.plane_down[ni] {
                continue;
            }
            st.plane_down[ni] = pd;
            if st.manual_down[ni] {
                continue; // combined availability unchanged
            }
            if pd {
                self.on_node_down(st, ni, now);
            } else {
                self.on_node_up(st, ni, now);
            }
        }
    }

    /// A node became unavailable: fence its entries (they stay resident
    /// but are skipped by every lookup until recovery) and meter it.
    fn on_node_down(&self, st: &mut State, ni: usize, now: f64) {
        st.down_since[ni] = now;
        self.metrics.node_failures.inc();
        self.metrics.registry.spans().record("cache.node_down", format!("node {ni}"), now, now);
    }

    /// A node rejoined. DRAM is volatile and was lost in the crash, so
    /// that tier always comes back empty. The NVMe tier is persistent
    /// media: with [`CacheConfig::warm_restart`] on, its entries survive
    /// but are distrusted — marked unverified until the integrity plane
    /// re-checks each checksum, lazily on first read or in bulk at the
    /// next anti-entropy scrub. With warm restart off both tiers are
    /// wiped (the historical behaviour).
    fn on_node_up(&self, st: &mut State, ni: usize, now: f64) {
        st.dram[ni].clear();
        if self.cfg.warm_restart {
            let retained = st.nvme[ni].len() as u64;
            if retained > 0 {
                st.nvme[ni].mark_all_unverified();
                self.stats.lock().warm_restart_retained += retained;
                self.metrics.warm_retained.add(retained);
            }
        } else {
            st.nvme[ni].clear();
        }
        // DRAM rejoined empty: surviving objects may be under-replicated
        // until the next anti-entropy pass restores the factor.
        st.recovery_pending = true;
        self.metrics.update_sizes(st);
        self.metrics.node_recoveries.inc();
        let downtime = (now - st.down_since[ni]).max(0.0);
        self.metrics.recovery_time.observe(downtime);
        self.metrics.registry.spans().record(
            "cache.node_recovered",
            format!("node {ni} after {downtime:.6}s"),
            st.down_since[ni],
            now,
        );
    }

    /// Per-node liveness vector for the placement policy.
    fn live_vec(&self, st: &State) -> Vec<bool> {
        (0..self.cfg.cache_nodes).map(|ni| !st.is_down(ni)).collect()
    }

    /// Per-node free DRAM bytes (down nodes report zero — they cannot
    /// accept placements anyway).
    fn free_vec(&self, st: &State) -> Vec<u64> {
        st.dram
            .iter()
            .enumerate()
            .map(|(ni, t)| if st.is_down(ni) { 0 } else { t.capacity().saturating_sub(t.used()) })
            .collect()
    }

    /// Replica-set placement restricted to live nodes: up to
    /// [`CacheConfig::replication`] distinct live nodes, possibly fewer
    /// when fewer are up (the caller meters the under-replicated write).
    fn place_live_replicas(&self, st: &mut State, requester: NodeId) -> Vec<NodeId> {
        let live = self.live_vec(st);
        let free = self.free_vec(st);
        st.placement_counter += 1;
        self.cfg.policy.place_replicas(
            requester,
            &free,
            &live,
            st.placement_counter - 1,
            self.cfg.replication,
        )
    }

    /// One fabric access under fault injection: rolls transients (remote
    /// ops only), retries with backoff charged to `spent`, and enforces
    /// the per-get deadline. `Ok(true)` = the access landed and `cost`
    /// was charged; `Ok(false)` = retries exhausted (caller falls through
    /// or errors); `Err` = deadline exceeded.
    #[allow(clippy::too_many_arguments)]
    fn attempt_access(
        &self,
        plane: Option<&FaultPlane>,
        ft: &FaultTolerance,
        from: RankId,
        can_fail: bool,
        cost: f64,
        spent: &mut f64,
        deadline: Deadline,
    ) -> Result<bool, CacheError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let fired = can_fail && plane.is_some_and(|p| p.fam_transient(from));
            if !fired {
                *spent += cost;
                self.check_deadline(*spent, deadline)?;
                return Ok(true);
            }
            if attempt >= ft.retry.max_attempts {
                return Ok(false);
            }
            let wait = ft.retry.backoff_secs(attempt, plane.map_or(0.5, |p| p.jitter01(from)));
            self.metrics.retries.inc();
            self.metrics.retry_wait.observe(wait);
            self.stats.lock().retries += 1;
            *spent += wait;
            self.check_deadline(*spent, deadline)?;
        }
    }

    fn check_deadline(&self, spent: f64, deadline: Deadline) -> Result<(), CacheError> {
        if deadline.exceeded(spent) {
            self.metrics.deadline_timeouts.inc();
            return Err(CacheError::DeadlineExceeded {
                deadline_secs: deadline.budget_secs,
                spent_secs: spent,
            });
        }
        Ok(())
    }

    /// Tier invariant: per-tier `used` must equal the sum of its entries'
    /// sizes and never exceed capacity. Debug builds assert after every
    /// mutation batch; release builds self-heal drift (see
    /// [`TierStore::check_accounting`]).
    fn debug_check_accounting(&self, st: &mut State) {
        for t in st.dram.iter_mut().chain(st.nvme.iter_mut()) {
            t.check_accounting();
        }
    }

    /// Store an object: persists to the backing store (authoritative) and
    /// caches it on [`CacheConfig::replication`] distinct live nodes per
    /// the placement policy, charging each replica write its honest
    /// fabric cost. Returns the total virtual cost.
    ///
    /// Under an attached fault plane a *torn write* may corrupt the
    /// backing copy in place; the cached replicas stay healthy, so a
    /// later checked read or anti-entropy pass detects and rewrites it.
    pub fn put(&self, from: RankId, name: &str, data: Bytes) -> f64 {
        let plane = self.faults.lock().clone();
        let size = data.len() as u64;
        let crc = crc32(&data);
        let mut cost = self.backing.put(name, data.clone()).virtual_secs;
        if plane.as_ref().is_some_and(|p| p.torn_write(from)) {
            // The persistent write tore: bytes landed, checksum did not.
            self.backing.corrupt(name);
        }

        let mut st = self.state.lock();
        self.sync_with_plane(&mut st, plane.as_deref());
        st.clock += 1;
        // Coherence on overwrite: drop every cached copy of this name first
        // (the new placement may land on a different node than a previous
        // put's, and a stale copy must never win the tier search).
        for ni in 0..self.cfg.cache_nodes {
            st.dram[ni].remove(name);
            st.nvme[ni].remove(name);
        }
        st.sketch.record(name);
        st.ever_cached.insert(name.to_string());
        // A durable overwrite upgrades a previously ephemeral name: the
        // backing copy written above is now authoritative.
        st.ephemeral.remove(name);
        // Place on up to k live nodes; if every cache node is down the
        // object lives in the backing store only (still durable).
        let replicas = self.place_live_replicas(&mut st, self.topo.node_of(from));
        let link = plane.as_ref().map_or(LinkFactors::NONE, |p| p.link_factors());
        for &node in &replicas {
            cost += self.dram_transfer(from, node, size) * link.cost_mult();
            let (_, spill_cost) = self.insert_dram(&mut st, node, name, data.clone(), crc);
            cost += spill_cost;
        }
        if replicas.len() < self.cfg.replication {
            self.note_under_replicated(name, replicas.len());
        }
        self.debug_check_accounting(&mut st);
        cost
    }

    /// Store a **recomputable** object in the cache tiers only — no
    /// durable write-through. Placement, replication, checksums, and
    /// eviction behave exactly like [`CacheManager::put`]; the
    /// difference is the durability contract. If every cached copy is
    /// later lost (eviction, crashes, quarantined rot), a
    /// [`CacheManager::get`] for the name returns `Ok(None)` without
    /// paying the backing-store round-trip, and the caller recomputes.
    ///
    /// This is the right tier for derived intermediates (e.g. semantic
    /// plan-fragment checkpoints): writing them through to the backing
    /// store would charge a metadata RPC that can exceed the cost of
    /// recomputing the fragment outright.
    pub fn put_ephemeral(&self, from: RankId, name: &str, data: Bytes) -> f64 {
        let plane = self.faults.lock().clone();
        let size = data.len() as u64;
        let crc = crc32(&data);
        let mut cost = 0.0;

        let mut st = self.state.lock();
        self.sync_with_plane(&mut st, plane.as_deref());
        st.clock += 1;
        // Same overwrite coherence as the durable path.
        for ni in 0..self.cfg.cache_nodes {
            st.dram[ni].remove(name);
            st.nvme[ni].remove(name);
        }
        st.sketch.record(name);
        st.ephemeral.insert(name.to_string());
        let replicas = self.place_live_replicas(&mut st, self.topo.node_of(from));
        let link = plane.as_ref().map_or(LinkFactors::NONE, |p| p.link_factors());
        for &node in &replicas {
            cost += self.dram_transfer(from, node, size) * link.cost_mult();
            let (_, spill_cost) = self.insert_dram(&mut st, node, name, data.clone(), crc);
            cost += spill_cost;
        }
        if replicas.len() < self.cfg.replication {
            self.note_under_replicated(name, replicas.len());
        }
        self.debug_check_accounting(&mut st);
        cost
    }

    /// Meter a write that landed on fewer nodes than the configured
    /// replication factor (too few live nodes).
    fn note_under_replicated(&self, name: &str, copies: usize) {
        self.stats.lock().under_replicated_writes += 1;
        self.metrics.under_replicated_writes.inc();
        let now = self.faults.lock().as_ref().map_or(0.0, |p| p.now());
        self.metrics.registry.spans().record(
            "cache.under_replicated_write",
            format!("{name}: {copies}/{} copies", self.cfg.replication),
            now,
            now,
        );
    }

    /// Insert into a node's DRAM tier, spilling victims toward NVMe until
    /// the object fits. Returns `(landed_in_dram, device_cost)` where the
    /// cost covers every spill the insert forced (charged to whichever
    /// operation triggered it). Objects too big for DRAM route straight
    /// to NVMe and report `landed_in_dram = false`.
    fn insert_dram(
        &self,
        st: &mut State,
        node: NodeId,
        name: &str,
        data: Bytes,
        crc: u32,
    ) -> (bool, f64) {
        let size = data.len() as u64;
        let ni = node.index();
        if size > self.cfg.dram_capacity {
            // Too big for DRAM entirely; go straight to NVMe if it fits.
            let (_, cost) = self.insert_nvme(st, node, name, data, crc);
            return (false, cost);
        }
        let clock = st.clock;
        // Remove any stale copy first (overwrite semantics).
        st.dram[ni].remove(name);
        // TinyLFU admission duel: under pressure a candidate only
        // displaces the policy's victim when its sketch estimate is
        // strictly higher — cold scan traffic never erodes a reused
        // resident set. Rejected candidates still get NVMe residency.
        if self.cfg.eviction == EvictionKind::TinyLfu && !st.dram[ni].fits(size) {
            if let Some(victim) = st.dram[ni].peek_victim() {
                if st.sketch.estimate(name) <= st.sketch.estimate(&victim) {
                    self.stats.lock().admission_rejects += 1;
                    self.metrics.admission_rejects_dram.inc();
                    let (_, cost) = self.insert_nvme(st, node, name, data, crc);
                    return (false, cost);
                }
            }
        }
        let mut cost = 0.0;
        while !st.dram[ni].fits(size) {
            let Some((victim, e)) = st.dram[ni].pop_victim() else { break };
            self.metrics.victim_pops.inc();
            cost += self.spill_victim(st, node, &victim, e);
        }
        if !st.dram[ni].insert(name, data, crc, clock) {
            self.metrics.update_sizes(st);
            return (false, cost);
        }
        self.metrics.inserts_dram.inc();
        self.metrics.update_sizes(st);
        (true, cost)
    }

    /// Handle one DRAM eviction victim: spill it to the same node's NVMe
    /// tier unless the admission filter calls it a one-hit wonder while
    /// NVMe is under pressure, in which case it is dropped outright (the
    /// backing store stays authoritative). Returns the device cost of
    /// the spill write (zero when dropped).
    fn spill_victim(&self, st: &mut State, node: NodeId, victim: &str, e: StoredEntry) -> f64 {
        let size = e.data.len() as u64;
        let ni = node.index();
        self.metrics.evictions_dram.inc();
        self.metrics.evicted_bytes_dram.add(size);
        if self.cfg.nvme_admission && !st.nvme[ni].fits(size) && !st.sketch.admit(victim) {
            // Writing a one-hit wonder would force a disk eviction for
            // nothing; skip the spill.
            self.stats.lock().admission_rejects += 1;
            self.metrics.admission_rejects_nvme.inc();
            self.metrics.update_sizes(st);
            return 0.0;
        }
        let (stored, cost) = self.insert_nvme(st, node, victim, e.data, e.crc);
        if stored {
            self.stats.lock().evictions_to_nvme += 1;
            self.metrics.spills.inc();
            self.metrics.spill_bytes.observe(size as f64);
        }
        cost
    }

    /// Insert into a node's NVMe tier, evicting (dropping) victims until
    /// the object fits. Returns `(stored, device_cost)`; objects too big
    /// for the tier are refused with zero cost — only the backing store
    /// holds them.
    fn insert_nvme(
        &self,
        st: &mut State,
        node: NodeId,
        name: &str,
        data: Bytes,
        crc: u32,
    ) -> (bool, f64) {
        let size = data.len() as u64;
        if size > self.cfg.nvme_capacity {
            return (false, 0.0);
        }
        let clock = st.clock;
        let ni = node.index();
        st.nvme[ni].remove(name);
        while !st.nvme[ni].fits(size) {
            let Some((_victim, e)) = st.nvme[ni].pop_victim() else { break };
            self.metrics.victim_pops.inc();
            self.stats.lock().evictions_dropped += 1;
            self.metrics.evictions_nvme.inc();
            self.metrics.evicted_bytes_nvme.add(e.data.len() as u64);
        }
        if !st.nvme[ni].insert(name, data, crc, clock) {
            self.metrics.update_sizes(st);
            return (false, 0.0);
        }
        self.metrics.inserts_nvme.inc();
        self.metrics.update_sizes(st);
        (true, self.cfg.devices.nvme_cost(size))
    }

    /// Store an object with a user-provided placement hint (§3.2: the
    /// manager moves data "based on user-provided hints or
    /// operator-defined policies"). The hinted node overrides the policy
    /// for the *primary* copy; secondary replicas (when
    /// [`CacheConfig::replication`] > 1) fill capacity-weighted over the
    /// remaining live nodes. Out-of-range hints fall back to [`Self::put`].
    pub fn put_with_hint(&self, from: RankId, name: &str, data: Bytes, hint: NodeId) -> f64 {
        if hint.index() >= self.cfg.cache_nodes || self.node_is_down(hint) {
            // Out-of-range or unavailable hints degrade to policy placement.
            return self.put(from, name, data);
        }
        let size = data.len() as u64;
        let crc = crc32(&data);
        let mut cost = self.backing.put(name, data.clone()).virtual_secs;
        let mut st = self.state.lock();
        st.clock += 1;
        st.placement_counter += 1;
        for ni in 0..self.cfg.cache_nodes {
            st.dram[ni].remove(name);
            st.nvme[ni].remove(name);
        }
        st.sketch.record(name);
        st.ever_cached.insert(name.to_string());
        // Hinted primary, then capacity-weighted secondaries (most free
        // DRAM first, ties to the lowest index) up to the replication
        // factor.
        let mut replicas = vec![hint];
        if self.cfg.replication > 1 {
            let free = self.free_vec(&st);
            let mut rest: Vec<usize> = (0..self.cfg.cache_nodes)
                .filter(|&ni| !st.is_down(ni) && ni != hint.index())
                .collect();
            rest.sort_by_key(|&ni| (std::cmp::Reverse(free[ni]), ni));
            replicas.extend(
                rest.into_iter().take(self.cfg.replication - 1).map(|ni| NodeId(ni as u32)),
            );
        }
        for &node in &replicas {
            cost += self.dram_transfer(from, node, size);
            let (_, spill_cost) = self.insert_dram(&mut st, node, name, data.clone(), crc);
            cost += spill_cost;
        }
        if replicas.len() < self.cfg.replication {
            self.note_under_replicated(name, replicas.len());
        }
        self.debug_check_accounting(&mut st);
        cost
    }

    /// Dynamically relocate a cached object to another node's DRAM
    /// ("the cache manager dynamically relocates data within the caching
    /// layer to optimize proximity to computation"). Returns the transfer
    /// cost, or `None` if the object is not cached anywhere or the target
    /// is not a cache node.
    pub fn relocate(&self, name: &str, to: NodeId) -> Option<f64> {
        if to.index() >= self.cfg.cache_nodes || self.node_is_down(to) {
            return None;
        }
        let mut st = self.state.lock();
        st.clock += 1;
        // Find and remove the current copy (fenced copies on down nodes
        // are not eligible sources — they are lost on recovery anyway).
        // With replication > 1 this moves the first copy found; the other
        // replicas stay where they are.
        let mut found: Option<(usize, Bytes, u32)> = None;
        for ni in 0..self.cfg.cache_nodes {
            if st.is_down(ni) {
                continue;
            }
            if let Some(e) = st.dram[ni].remove(name) {
                found = Some((ni, e.data, e.crc));
                break;
            }
            if let Some(e) = st.nvme[ni].remove(name) {
                found = Some((ni, e.data, e.crc));
                break;
            }
        }
        let (from_node, data, crc) = found?;
        let size = data.len() as u64;
        // Node-to-node transfer cost (inter-node unless already there).
        let mut cost = if from_node == to.index() { 0.0 } else { self.net.inter_cost(size) };
        let (_, spill_cost) = self.insert_dram(&mut st, to, name, data, crc);
        cost += spill_cost;
        self.debug_check_accounting(&mut st);
        Some(cost)
    }

    /// Detect injected bit rot on a cached copy: flip one bit (the rot),
    /// verify against the CRC recorded at write time, and quarantine the
    /// copy — it is dropped and metered, never served. Returns `false`
    /// for empty payloads (nothing to rot).
    fn quarantine_if_rotted(&self, st: &mut State, ni: usize, dram: bool, name: &str) -> bool {
        let tier = if dram { &mut st.dram[ni] } else { &mut st.nvme[ni] };
        let Some(e) = tier.get(name) else { return false };
        if e.data.is_empty() {
            return false;
        }
        let mut rotted = e.data.to_vec();
        rotted[0] ^= 0x80;
        if crc32(&rotted) == e.crc {
            return false; // unreachable for a real CRC, kept for honesty
        }
        if tier.remove(name).is_none() {
            return false;
        }
        self.stats.lock().corruptions_detected += 1;
        self.metrics.corruptions_cache.inc();
        self.metrics.quarantines.inc();
        self.metrics.update_sizes(st);
        let now = self.faults.lock().as_ref().map_or(0.0, |p| p.now());
        self.metrics.registry.spans().record(
            "cache.quarantine",
            format!("{name} on node {ni}: checksum mismatch"),
            now,
            now,
        );
        true
    }

    /// Fetch an object. Searches tiers cheapest-first (skipping down
    /// nodes, whose entries are fenced until recovery), retries transient
    /// remote failures with backoff charged to the virtual clock, and
    /// **fails over across replicas**: a copy that exhausts its retries
    /// or fails its checksum (quarantined, repaired from the healthy
    /// serve) just moves the search to the next replica. Only when no
    /// live healthy copy remains does the read fall back to the backing
    /// store (verified against its checksum, then re-populated onto a
    /// full replica set). Returns `Ok(None)` only on a total miss.
    ///
    /// Errors: [`CacheError::DeadlineExceeded`] when the configured
    /// per-get budget runs out; [`CacheError::RetriesExhausted`] when
    /// the authoritative backing fetch keeps failing (or, in strict
    /// mode, when every replica did); [`CacheError::NodeDown`] in
    /// strict mode when the only cached copy is fenced on a down node;
    /// [`CacheError::Corrupted`] when the backing copy fails its
    /// checksum and no healthy replica remains to serve instead.
    pub fn get(
        &self,
        from: RankId,
        name: &str,
    ) -> Result<Option<(Bytes, CacheOutcome)>, CacheError> {
        let plane = self.faults.lock().clone();
        let plane_ref = plane.as_deref();
        let ft = *self.ft.lock();
        let deadline = Deadline::of(ft.get_deadline_secs);
        let my_node = self.topo.node_of(from);
        let mut st = self.state.lock();
        self.sync_with_plane(&mut st, plane_ref);
        st.clock += 1;
        let clock = st.clock;
        st.sketch.record(name);
        let link = plane.as_ref().map_or(LinkFactors::NONE, |p| p.link_factors());
        let mut spent = 0.0f64;

        // Tier search order: local DRAM, remote DRAM, local NVMe, remote
        // NVMe — live nodes only.
        let my = my_node.index();
        let live_order: Vec<usize> = std::iter::once(my)
            .chain((0..self.cfg.cache_nodes).filter(|&n| n != my))
            .filter(|&n| n < self.cfg.cache_nodes && !st.is_down(n))
            .collect();

        // A copy fenced on a down node: failover metering counts it, and
        // strict mode refuses to silently degrade past it.
        let fenced: Option<NodeId> = (0..self.cfg.cache_nodes)
            .find(|&ni| {
                st.is_down(ni) && (st.dram[ni].contains(name) || st.nvme[ni].contains(name))
            })
            .map(|ni| NodeId(ni as u32));

        // Copies that failed *this* get: exhausted retry budgets and
        // checksum quarantines. Either way the search moves on — that is
        // the failover — and quarantined replicas are repaired from the
        // eventual healthy serve.
        let mut exhausted: Option<String> = None;
        let mut quarantined: Vec<NodeId> = Vec::new();

        // (data, crc, serving node, tier) once a healthy copy answers.
        let mut serve: Option<(Bytes, u32, usize, Tier)> = None;
        for &ni in &live_order {
            let Some(size) = st.dram[ni].size_of(name) else { continue };
            let local = ni == my;
            let cost = self.dram_transfer(from, NodeId(ni as u32), size) * link.cost_mult();
            if !self.attempt_access(plane_ref, &ft, from, !local, cost, &mut spent, deadline)? {
                exhausted = Some(format!("remote DRAM on node {ni}"));
                continue; // fail over to the next replica
            }
            // The read landed; now verify the copy (bit rot may have hit
            // it since the write — the read cost is already paid).
            if plane_ref.is_some_and(|p| p.bit_rot(from))
                && self.quarantine_if_rotted(&mut st, ni, true, name)
            {
                quarantined.push(NodeId(ni as u32));
                continue; // fail over to the next replica
            }
            // The entry can only have vanished if the bit-rot probe above
            // quarantined-but-reported-clean; treat that as a failover.
            st.dram[ni].touch(name, clock);
            let Some(e) = st.dram[ni].get(name) else { continue };
            let tier = if local { Tier::LocalDram } else { Tier::RemoteDram };
            serve = Some((e.data.clone(), e.crc, ni, tier));
            break;
        }
        if serve.is_none() {
            for &ni in &live_order {
                let Some(size) = st.nvme[ni].size_of(name) else { continue };
                let local = ni == my;
                let cost = self.nvme_transfer(from, NodeId(ni as u32), size) * link.cost_mult();
                if !self.attempt_access(plane_ref, &ft, from, !local, cost, &mut spent, deadline)? {
                    exhausted = Some(format!("remote NVMe on node {ni}"));
                    continue;
                }
                if plane_ref.is_some_and(|p| p.bit_rot(from))
                    && self.quarantine_if_rotted(&mut st, ni, false, name)
                {
                    quarantined.push(NodeId(ni as u32));
                    continue;
                }
                // A clean checked read re-verifies an entry retained
                // across a warm restart.
                if st.nvme[ni].mark_verified(name) {
                    self.metrics.warm_verified.inc();
                }
                st.nvme[ni].touch(name, clock);
                let Some(e) = st.nvme[ni].get(name) else { continue };
                let tier = if local { Tier::LocalNvme } else { Tier::RemoteNvme };
                serve = Some((e.data.clone(), e.crc, ni, tier));
                break;
            }
        }

        if let Some((data, crc, ni, tier)) = serve {
            let failover = fenced.is_some() || exhausted.is_some() || !quarantined.is_empty();
            {
                let mut stats = self.stats.lock();
                match tier {
                    Tier::LocalDram => stats.local_dram_hits += 1,
                    Tier::RemoteDram => stats.remote_dram_hits += 1,
                    Tier::LocalNvme => stats.local_nvme_hits += 1,
                    Tier::RemoteNvme => stats.remote_nvme_hits += 1,
                    // `serve` is only ever built from cache tiers; count a
                    // backing tag defensively instead of panicking.
                    Tier::Backing => stats.backing_fetches += 1,
                }
                if failover {
                    stats.failover_reads += 1;
                }
            }
            self.metrics.tier_hit(tier);
            if failover {
                self.metrics.failover_reads.inc();
            }
            // Promote hot NVMe objects back to DRAM on the serving node —
            // a true move: once the DRAM copy lands, the NVMe copy is
            // released. The DRAM write and any cascaded spills are
            // charged to this get.
            let size = data.len() as u64;
            if matches!(tier, Tier::LocalNvme | Tier::RemoteNvme) && size <= self.cfg.dram_capacity
            {
                let (landed, spill_cost) =
                    self.insert_dram(&mut st, NodeId(ni as u32), name, data.clone(), crc);
                spent += spill_cost;
                if landed {
                    st.nvme[ni].remove(name);
                    spent += self.cfg.devices.dram_cost(size);
                    self.stats.lock().promotes += 1;
                    self.metrics.promotes.inc();
                    self.metrics.promoted_bytes.add(size);
                    self.metrics.promote_bytes.observe(size as f64);
                    self.metrics.update_sizes(&st);
                }
            }
            // Read-path repair: replicas quarantined above are restored
            // from this healthy copy, charged as node-to-node transfers.
            for &node in &quarantined {
                if node.index() != ni {
                    spent += self.net.inter_cost(size);
                }
                let (_, spill_cost) = self.insert_dram(&mut st, node, name, data.clone(), crc);
                spent += spill_cost;
                self.stats.lock().repairs += 1;
                self.metrics.repairs_replicate.inc();
            }
            self.debug_check_accounting(&mut st);
            return Ok(Some((data, CacheOutcome { tier, virtual_secs: spent })));
        }

        // Strict mode: a cached copy exists but every live one failed, or
        // the only copy is fenced on a down node — refusing beats silent
        // degradation to the backing store. A genuinely uncached object
        // still falls through (a cold fetch is not a degradation).
        if !ft.degrade_to_backing {
            if let Some(detail) = exhausted {
                return Err(CacheError::RetriesExhausted {
                    attempts: ft.retry.max_attempts,
                    spent_secs: spent,
                    detail,
                });
            }
            if let Some(node) = fenced {
                return Err(CacheError::NodeDown { node, spent_secs: spent });
            }
        }

        // Ephemeral objects have no authoritative backing copy: once no
        // cache tier can serve one it is simply gone, and the directory
        // lookup above already established that. Report a miss without
        // the backing-store RPC — the caller recomputes.
        if st.ephemeral.contains(name) {
            self.stats.lock().total_misses += 1;
            self.metrics.misses.inc();
            return Ok(None);
        }

        // Backing store: authoritative, checksum-verified fallback +
        // re-population of a full replica set.
        let fetched = self.backing.get_checked(name);
        match fetched.value {
            Some(vr) => {
                let cost = fetched.virtual_secs * link.cost_mult();
                if !self.attempt_access(plane_ref, &ft, from, true, cost, &mut spent, deadline)? {
                    return Err(CacheError::RetriesExhausted {
                        attempts: ft.retry.max_attempts,
                        spent_secs: spent,
                        detail: "backing store fetch".into(),
                    });
                }
                if !vr.intact {
                    // Torn write or rot in the authoritative copy, and no
                    // healthy replica remained to serve or repair it this
                    // read. Never serve corrupt bytes.
                    self.stats.lock().corruptions_detected += 1;
                    self.metrics.corruptions_backing.inc();
                    return Err(CacheError::Corrupted {
                        name: name.to_string(),
                        spent_secs: spent,
                    });
                }
                let data = vr.data;
                {
                    let mut stats = self.stats.lock();
                    stats.backing_fetches += 1;
                    // Re-population (§3.2: the object was cached before and
                    // lost to eviction/failure) is metered separately from
                    // first-touch backing traffic.
                    if st.ever_cached.contains(name) {
                        stats.repopulations += 1;
                        self.metrics.repopulations.inc();
                    }
                }
                self.metrics.tier_hit(Tier::Backing);
                let crc = crc32(&data);
                let replicas = self.place_live_replicas(&mut st, my_node);
                for &node in &replicas {
                    let (_, spill_cost) = self.insert_dram(&mut st, node, name, data.clone(), crc);
                    spent += spill_cost;
                }
                if !replicas.is_empty() {
                    st.ever_cached.insert(name.to_string());
                }
                self.debug_check_accounting(&mut st);
                Ok(Some((data, CacheOutcome { tier: Tier::Backing, virtual_secs: spent })))
            }
            None => {
                self.stats.lock().total_misses += 1;
                self.metrics.misses.inc();
                Ok(None)
            }
        }
    }

    /// Locality query: which cache nodes hold the object, and in which
    /// tier. Schedulers use this to co-locate computation with data (§3.2).
    pub fn locality(&self, name: &str) -> Vec<(NodeId, Tier)> {
        let plane = self.faults.lock().clone();
        let mut st = self.state.lock();
        self.sync_with_plane(&mut st, plane.as_deref());
        let mut out = Vec::new();
        // Down nodes never appear: their fenced entries cannot serve and
        // are lost on recovery, so reporting them would mislead schedulers.
        for ni in (0..self.cfg.cache_nodes).filter(|&ni| !st.is_down(ni)) {
            if st.dram[ni].contains(name) {
                out.push((NodeId(ni as u32), Tier::LocalDram));
            }
            if st.nvme[ni].contains(name) {
                out.push((NodeId(ni as u32), Tier::LocalNvme));
            }
        }
        out
    }

    /// Metadata for a cached object, if cached on any live node.
    pub fn meta(&self, name: &str) -> Option<ObjectMeta> {
        let plane = self.faults.lock().clone();
        let mut st = self.state.lock();
        self.sync_with_plane(&mut st, plane.as_deref());
        for ni in (0..self.cfg.cache_nodes).filter(|&ni| !st.is_down(ni)) {
            if let Some(e) = st.dram[ni].get(name).or_else(|| st.nvme[ni].get(name)) {
                return Some(ObjectMeta {
                    name: name.to_string(),
                    id: object_id(name),
                    size: e.data.len() as u64,
                    node: NodeId(ni as u32),
                    checksum: e.crc,
                });
            }
        }
        None
    }

    /// Take a cache node down (idempotent). Its entries are *fenced* —
    /// skipped by every lookup — until [`Self::recover_node`], at which
    /// point the crash semantics apply: DRAM contents are lost (volatile)
    /// and re-populate on demand, while NVMe contents survive under
    /// [`CacheConfig::warm_restart`], pending checksum re-verification.
    pub fn fail_node(&self, node: NodeId) {
        let plane = self.faults.lock().clone();
        let now = plane.as_ref().map_or(0.0, |p| p.now());
        let mut st = self.state.lock();
        let ni = node.index();
        if ni >= self.cfg.cache_nodes || st.manual_down[ni] {
            return; // unknown node or already down: nothing to do
        }
        st.manual_down[ni] = true;
        if !st.plane_down[ni] {
            self.on_node_down(&mut st, ni, now);
        }
    }

    /// Bring a manually failed node back (idempotent). Its DRAM rejoins
    /// empty (lost in the crash); its NVMe tier rejoins warm when
    /// [`CacheConfig::warm_restart`] is on, every retained entry held
    /// back until re-verified. A node declared permanently dead never
    /// rejoins.
    pub fn recover_node(&self, node: NodeId) {
        let plane = self.faults.lock().clone();
        let now = plane.as_ref().map_or(0.0, |p| p.now());
        let mut st = self.state.lock();
        let ni = node.index();
        if ni >= self.cfg.cache_nodes || !st.manual_down[ni] || st.permanent_down[ni] {
            return;
        }
        st.manual_down[ni] = false;
        if !st.plane_down[ni] {
            self.on_node_up(&mut st, ni, now);
        }
    }

    /// Declare a cache node permanently dead (idempotent): its DRAM/NVMe
    /// entries are purged immediately — a checkpoint it owned must never
    /// serve a later read, even if some bug resurrected the node — and
    /// survivors are flagged under-replicated so the next anti-entropy
    /// pass restores the replication factor from the remaining copies.
    /// Called by the engine's recovery plane when a compute rank's node
    /// dies with no recovery window.
    pub fn fail_node_permanently(&self, node: NodeId) {
        let plane = self.faults.lock().clone();
        let now = plane.as_ref().map_or(0.0, |p| p.now());
        let mut st = self.state.lock();
        let ni = node.index();
        if ni >= self.cfg.cache_nodes || st.permanent_down[ni] {
            return;
        }
        let was_down = st.is_down(ni);
        st.permanent_down[ni] = true;
        // Permanent death purges both tiers — warm restart never applies
        // to a node that is gone for good.
        st.dram[ni].clear();
        st.nvme[ni].clear();
        self.metrics.update_sizes(&st);
        st.recovery_pending = true;
        self.metrics.registry.counter("ids_cache_permanent_failures_total").inc();
        if !was_down {
            self.on_node_down(&mut st, ni, now);
        }
    }

    /// Run the anti-entropy pass if it is due: either a node recovered
    /// since the last pass (its wiped contents left survivors
    /// under-replicated) or [`CacheConfig::anti_entropy_interval_secs`]
    /// of virtual time elapsed. The engine calls this at stage
    /// boundaries — single-threaded points on the virtual clock, so the
    /// scrub's deterministic draw streams are consumed in a fixed order.
    /// Returns `None` when the pass is not due or no fault plane is
    /// attached (without a plane there is no virtual clock to schedule
    /// against; use [`Self::anti_entropy`] to force a pass).
    pub fn maybe_anti_entropy(&self) -> Option<AntiEntropyReport> {
        let plane = self.faults.lock().clone();
        let p = plane.as_deref()?;
        let now = p.now();
        let mut st = self.state.lock();
        self.sync_with_plane(&mut st, Some(p));
        if !st.recovery_pending && now - st.last_anti_entropy < self.cfg.anti_entropy_interval_secs
        {
            return None;
        }
        Some(self.run_anti_entropy(&mut st, Some(p), now))
    }

    /// Force an anti-entropy pass now, regardless of schedule: scrub
    /// live copies against their checksums, rewrite corrupt backing
    /// objects from healthy replicas, and restore the replication factor
    /// for under-replicated survivors.
    pub fn anti_entropy(&self) -> AntiEntropyReport {
        let plane = self.faults.lock().clone();
        let now = plane.as_ref().map_or(0.0, |p| p.now());
        let mut st = self.state.lock();
        self.sync_with_plane(&mut st, plane.as_deref());
        self.run_anti_entropy(&mut st, plane.as_deref(), now)
    }

    fn run_anti_entropy(
        &self,
        st: &mut State,
        plane: Option<&FaultPlane>,
        now: f64,
    ) -> AntiEntropyReport {
        st.last_anti_entropy = now;
        st.recovery_pending = false;
        self.metrics.anti_entropy_runs.inc();
        let mut report = AntiEntropyReport::default();

        let live: Vec<usize> = (0..self.cfg.cache_nodes).filter(|&ni| !st.is_down(ni)).collect();

        // 1. Scrub: verify every live cached copy against its recorded
        //    checksum, in deterministic (node, sorted-name) order. The
        //    per-node scrub draw streams are independent of the rank
        //    streams, so scrubbing never perturbs read-path outcomes.
        for &ni in &live {
            let mut names: Vec<(String, bool)> = st.dram[ni]
                .names_sorted()
                .into_iter()
                .map(|n| (n, true))
                .chain(st.nvme[ni].names_sorted().into_iter().map(|n| (n, false)))
                .collect();
            names.sort();
            for (name, dram) in names {
                report.scrubbed += 1;
                self.metrics.scrubbed_objects.inc();
                if plane.is_some_and(|p| p.bit_rot_scrub(NodeId(ni as u32)))
                    && self.quarantine_if_rotted(st, ni, dram, &name)
                {
                    report.corruptions += 1;
                } else if !dram && st.nvme[ni].mark_verified(&name) {
                    // The scrub's clean checksum pass re-admits an entry
                    // retained across a warm restart.
                    self.metrics.warm_verified.inc();
                }
            }
        }

        // Names still cached on at least one live node, with their
        // healthy source copies.
        let cached: BTreeSet<String> = live
            .iter()
            .flat_map(|&ni| {
                st.dram[ni].names_sorted().into_iter().chain(st.nvme[ni].names_sorted())
            })
            .collect();

        for name in &cached {
            let holders: Vec<usize> = live
                .iter()
                .copied()
                .filter(|&ni| st.dram[ni].contains(name) || st.nvme[ni].contains(name))
                .collect();
            let Some(&src) = holders.first() else { continue };
            let Some((data, crc)) = st.dram[src]
                .get(name)
                .or_else(|| st.nvme[src].get(name))
                .map(|e| (e.data.clone(), e.crc))
            else {
                continue; // holder lost its copy between scans
            };

            // 2. Backing integrity: a torn/rotted authoritative copy is
            //    rewritten from the healthy replica before any read can
            //    trip over it.
            if self.backing.verify(name).value == Some(false) {
                report.corruptions += 1;
                self.stats.lock().corruptions_detected += 1;
                self.metrics.corruptions_backing.inc();
                self.backing.put(name, data.clone());
                report.backing_repairs += 1;
                self.stats.lock().repairs += 1;
                self.metrics.repairs_backing.inc();
            }

            // 3. Re-replication: restore the replication factor for
            //    survivors (a recovered node rejoined empty). Targets are
            //    the live non-holders with the most free DRAM, ties to
            //    the lowest index — the same deterministic order the
            //    placement policy documents.
            let target = self.cfg.replication.min(live.len());
            if holders.len() >= target {
                continue;
            }
            let free = self.free_vec(st);
            let mut dests: Vec<usize> =
                live.iter().copied().filter(|ni| !holders.contains(ni)).collect();
            dests.sort_by_key(|&ni| (std::cmp::Reverse(free[ni]), ni));
            for &dest in dests.iter().take(target - holders.len()) {
                let _ = self.insert_dram(st, NodeId(dest as u32), name, data.clone(), crc);
                report.re_replicated += 1;
                self.stats.lock().repairs += 1;
                self.metrics.repairs_replicate.inc();
            }
        }

        self.debug_check_accounting(st);
        self.metrics.registry.spans().record(
            "cache.anti_entropy",
            format!(
                "scrubbed {} corruptions {} re_replicated {} backing_repairs {}",
                report.scrubbed, report.corruptions, report.re_replicated, report.backing_repairs
            ),
            now,
            now,
        );
        report
    }

    /// Drop an object from every cache tier (backing copy untouched).
    pub fn invalidate(&self, name: &str) {
        let mut st = self.state.lock();
        for ni in 0..self.cfg.cache_nodes {
            st.dram[ni].remove(name);
            st.nvme[ni].remove(name);
        }
        self.metrics.update_sizes(&st);
        self.debug_check_accounting(&mut st);
    }

    /// Point-in-time cache inspector: per-node per-tier occupancy plus
    /// the lifetime movement counters (spills, promotes, admission
    /// rejects, warm-restart retention). Counters come from the metrics
    /// registry, so [`Self::reset_stats`] does not zero them; occupancy
    /// reflects the stores as of this call. Rendered into the EXPLAIN
    /// `cache tiers:` block and dumped as JSON by the benches.
    pub fn inspect(&self) -> CacheInspection {
        let plane = self.faults.lock().clone();
        let mut st = self.state.lock();
        self.sync_with_plane(&mut st, plane.as_deref());
        let mut tiers = Vec::new();
        for stores in [&st.dram, &st.nvme] {
            for (ni, t) in stores.iter().enumerate() {
                tiers.push(TierInspection {
                    node: ni,
                    tier: t.kind().label().to_string(),
                    capacity_bytes: t.capacity(),
                    occupied_bytes: t.used(),
                    entries: t.len() as u64,
                    unverified: t.unverified(),
                    victim_pops: t.victim_pops(),
                });
            }
        }
        drop(st);
        let snap = self.metrics.registry.snapshot();
        let hit = |tier: &str| snap.counter("ids_cache_lookup_hits_total", tier);
        CacheInspection {
            eviction: self.cfg.eviction,
            tiers,
            hits: [hit("local_dram"), hit("remote_dram"), hit("local_nvme"), hit("remote_nvme")],
            backing_fetches: hit("backing"),
            misses: snap.counter("ids_cache_lookup_misses_total", ""),
            spills: snap.counter("ids_cache_spills_total", ""),
            promotes: snap.counter("ids_cache_promotes_total", ""),
            admission_rejects: snap.counter_sum("ids_cache_admission_rejects_total"),
            warm_retained: snap.counter("ids_cache_warm_restart_retained_total", ""),
            warm_verified: snap.counter("ids_cache_warm_restart_verified_total", ""),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(dram: u64, nvme: u64) -> CacheManager {
        cache_cfg(CacheConfig::new(2, dram, nvme))
    }

    fn cache_cfg(cfg: CacheConfig) -> CacheManager {
        CacheManager::new(
            Topology::new(4, 2),
            NetworkModel::slingshot(),
            cfg,
            BackingStore::default_store(),
        )
    }

    fn payload(n: usize, tag: u8) -> Bytes {
        Bytes::from(vec![tag; n])
    }

    #[test]
    fn try_new_rejects_unsatisfiable_configs_as_typed_errors() {
        let net = NetworkModel::slingshot();
        let Err(err) = CacheManager::try_new(
            Topology::new(4, 2),
            net,
            CacheConfig::new(0, 1 << 20, 1 << 22),
            BackingStore::default_store(),
        ) else {
            panic!("zero cache nodes must be rejected");
        };
        assert!(matches!(err, CacheError::InvalidConfig(_)), "{err}");
        assert_eq!(err.spent_secs(), 0.0, "construction failures spend no virtual time");

        let Err(err) = CacheManager::try_new(
            Topology::new(2, 2),
            net,
            CacheConfig::new(5, 1 << 20, 1 << 22),
            BackingStore::default_store(),
        ) else {
            panic!("oversized cache-node count must be rejected");
        };
        assert!(err.to_string().contains("5 cache nodes exceed"), "{err}");

        assert!(CacheManager::try_new(
            Topology::new(4, 2),
            net,
            CacheConfig::new(2, 1 << 20, 1 << 22),
            BackingStore::default_store(),
        )
        .is_ok());
    }

    #[test]
    #[should_panic(expected = "need at least one cache node")]
    fn new_panics_on_zero_cache_nodes() {
        let _ = CacheManager::new(
            Topology::new(4, 2),
            NetworkModel::slingshot(),
            CacheConfig::new(0, 1 << 20, 1 << 22),
            BackingStore::default_store(),
        );
    }

    #[test]
    fn put_then_local_get_hits_dram() {
        let c = cache(1 << 20, 1 << 22);
        // Rank 0 lives on node 0, which is a cache node.
        c.put(RankId(0), "vina/c1", payload(1000, 1));
        let (data, out) = c.get(RankId(0), "vina/c1").unwrap().unwrap();
        assert_eq!(data.len(), 1000);
        assert_eq!(out.tier, Tier::LocalDram);
        assert_eq!(c.stats().local_dram_hits, 1);
    }

    #[test]
    fn ephemeral_objects_skip_the_backing_store() {
        let c = cache(1 << 20, 1 << 22);
        let cold_miss = c.get(RankId(0), "reuse/unknown").unwrap();
        assert!(cold_miss.is_none());

        // An ephemeral put serves from cache tiers like a durable one...
        c.put_ephemeral(RankId(0), "reuse/frag", payload(1000, 7));
        let (data, out) = c.get(RankId(0), "reuse/frag").unwrap().unwrap();
        assert_eq!(data.len(), 1000);
        assert_eq!(out.tier, Tier::LocalDram);

        // ...but once every cached copy is gone the object is gone too:
        // no backing fallback, no backing fetch metered, zero read cost.
        let fetches_before = c.stats().backing_fetches;
        c.invalidate("reuse/frag");
        let miss = c.get(RankId(0), "reuse/frag").unwrap();
        assert!(miss.is_none(), "ephemeral objects must not survive in backing");
        assert_eq!(c.stats().backing_fetches, fetches_before);

        // A later durable put of the same name upgrades it.
        c.put(RankId(0), "reuse/frag", payload(500, 8));
        c.invalidate("reuse/frag");
        let (data, out) = c.get(RankId(0), "reuse/frag").unwrap().unwrap();
        assert_eq!(data.len(), 500);
        assert_eq!(out.tier, Tier::Backing);
    }

    #[test]
    fn remote_rank_hits_remote_dram() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(1000, 2));
        // Rank 6 is on node 3 (not a cache node) → remote DRAM.
        let (_, out) = c.get(RankId(6), "obj").unwrap().unwrap();
        assert_eq!(out.tier, Tier::RemoteDram);
        // Remote access costs more than local.
        let (_, local) = c.get(RankId(0), "obj").unwrap().unwrap();
        assert!(out.virtual_secs > local.virtual_secs);
    }

    #[test]
    fn dram_pressure_spills_to_nvme() {
        // DRAM holds 2 objects of 1000; the third put evicts the LRU.
        let c = cache(2048, 1 << 20);
        c.put(RankId(0), "a", payload(1000, 1));
        c.put(RankId(0), "b", payload(1000, 2));
        c.put(RankId(0), "c", payload(1000, 3));
        assert!(c.stats().evictions_to_nvme >= 1);
        // "a" (LRU) now serves from NVMe.
        let (_, out) = c.get(RankId(0), "a").unwrap().unwrap();
        assert_eq!(out.tier, Tier::LocalNvme);
    }

    #[test]
    fn nvme_hit_promotes_back_to_dram() {
        let c = cache(2048, 1 << 20);
        c.put(RankId(0), "a", payload(1000, 1));
        c.put(RankId(0), "b", payload(1000, 2));
        c.put(RankId(0), "c", payload(1000, 3)); // spills a
        let (_, first) = c.get(RankId(0), "a").unwrap().unwrap();
        assert_eq!(first.tier, Tier::LocalNvme);
        let (_, second) = c.get(RankId(0), "a").unwrap().unwrap();
        assert_eq!(second.tier, Tier::LocalDram, "promoted on first NVMe hit");
    }

    #[test]
    fn total_eviction_falls_back_to_backing_and_repopulates() {
        // Tiny tiers: everything cascades out. Admission control is off
        // so the spill cascade is unconditional, like the historical one.
        let c = cache_cfg(CacheConfig::new(2, 1000, 1000).with_nvme_admission(false));
        c.put(RankId(0), "a", payload(900, 1));
        c.put(RankId(0), "b", payload(900, 2)); // a → nvme
        c.put(RankId(0), "c", payload(900, 3)); // b → nvme, a dropped
        let (data, out) = c.get(RankId(0), "a").unwrap().unwrap();
        assert_eq!(out.tier, Tier::Backing);
        assert_eq!(data.len(), 900);
        // Re-populated: next access is a cache hit.
        let (_, again) = c.get(RankId(0), "a").unwrap().unwrap();
        assert_ne!(again.tier, Tier::Backing);
    }

    #[test]
    fn tier_costs_are_ordered() {
        let big = 1 << 22; // 4 MiB so bandwidth terms dominate latency noise
        let c = cache(1 << 23, 1 << 24);
        c.put(RankId(0), "x", payload(big, 7));
        let (_, local_dram) = c.get(RankId(0), "x").unwrap().unwrap();
        let (_, remote_dram) = c.get(RankId(7), "x").unwrap().unwrap();
        assert!(local_dram.virtual_secs < remote_dram.virtual_secs);
        // Force NVMe service.
        let c2 = cache(1, 1 << 24);
        c2.put(RankId(0), "x", payload(big, 7));
        let (_, nvme) = c2.get(RankId(0), "x").unwrap().unwrap();
        assert_eq!(nvme.tier, Tier::LocalNvme);
        assert!(
            remote_dram.virtual_secs < nvme.virtual_secs,
            "{} < {}",
            remote_dram.virtual_secs,
            nvme.virtual_secs
        );
        // Backing slowest.
        let c3 = cache(1, 1);
        c3.put(RankId(0), "x", payload(big, 7));
        let (_, back) = c3.get(RankId(0), "x").unwrap().unwrap();
        assert_eq!(back.tier, Tier::Backing);
        assert!(nvme.virtual_secs < back.virtual_secs);
    }

    #[test]
    fn locality_reports_holders() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(100, 1));
        let loc = c.locality("obj");
        assert_eq!(loc, vec![(NodeId(0), Tier::LocalDram)]);
        assert!(c.locality("ghost").is_empty());
        let meta = c.meta("obj").unwrap();
        assert_eq!(meta.size, 100);
        assert_eq!(meta.node, NodeId(0));
        assert_eq!(meta.id, object_id("obj"));
    }

    #[test]
    fn node_failure_loses_cache_not_data() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(100, 1));
        c.fail_node(NodeId(0));
        assert!(c.locality("obj").is_empty());
        // Still retrievable via the backing store, then re-cached.
        let (_, out) = c.get(RankId(0), "obj").unwrap().unwrap();
        assert_eq!(out.tier, Tier::Backing);
        assert!(!c.locality("obj").is_empty(), "re-populated");
    }

    #[test]
    fn total_miss_returns_none() {
        let c = cache(1 << 20, 1 << 22);
        assert!(c.get(RankId(0), "never-stored").unwrap().is_none());
        assert_eq!(c.stats().total_misses, 1);
    }

    #[test]
    fn invalidate_drops_cached_copy_only() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(100, 1));
        c.invalidate("obj");
        assert!(c.locality("obj").is_empty());
        let (_, out) = c.get(RankId(0), "obj").unwrap().unwrap();
        assert_eq!(out.tier, Tier::Backing);
    }

    #[test]
    fn oversized_object_skips_dram() {
        let c = cache(100, 1 << 20);
        c.put(RankId(0), "big", payload(5000, 1));
        let (_, out) = c.get(RankId(0), "big").unwrap().unwrap();
        assert_eq!(out.tier, Tier::LocalNvme);
    }

    #[test]
    fn hit_rate_reflects_reuse() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "a", payload(10, 1));
        c.get(RankId(0), "a").unwrap().unwrap();
        c.get(RankId(0), "a").unwrap().unwrap();
        c.invalidate("a");
        c.get(RankId(0), "a").unwrap().unwrap(); // backing fetch
        let s = c.stats();
        assert_eq!(s.cache_hits(), 2);
        assert_eq!(s.backing_fetches, 1);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn put_with_hint_overrides_policy() {
        let c = cache(1 << 20, 1 << 22);
        // Rank 0 is on node 0, but the user hints node 1.
        c.put_with_hint(RankId(0), "obj", payload(100, 1), NodeId(1));
        assert_eq!(c.locality("obj"), vec![(NodeId(1), Tier::LocalDram)]);
        // Out-of-range hints degrade to policy placement.
        c.put_with_hint(RankId(0), "obj2", payload(100, 2), NodeId(9));
        assert_eq!(c.locality("obj2"), vec![(NodeId(0), Tier::LocalDram)]);
    }

    #[test]
    fn relocate_moves_the_cached_copy() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(1000, 3));
        assert_eq!(c.locality("obj"), vec![(NodeId(0), Tier::LocalDram)]);
        let cost = c.relocate("obj", NodeId(1)).expect("cached object relocates");
        assert!(cost > 0.0);
        assert_eq!(c.locality("obj"), vec![(NodeId(1), Tier::LocalDram)]);
        // Data unchanged after the move.
        let (data, out) = c.get(RankId(2), "obj").unwrap().unwrap(); // rank 2 = node 1
        assert_eq!(out.tier, Tier::LocalDram);
        assert_eq!(data.len(), 1000);
        // Relocating to the same node is free; unknown objects are None.
        assert_eq!(c.relocate("obj", NodeId(1)), Some(0.0));
        assert_eq!(c.relocate("ghost", NodeId(0)), None);
        assert_eq!(c.relocate("obj", NodeId(9)), None);
    }

    #[test]
    fn obs_metrics_track_tier_activity() {
        let c = cache(2048, 1 << 20);
        c.put(RankId(0), "a", payload(1000, 1));
        c.put(RankId(0), "b", payload(1000, 2));
        c.put(RankId(0), "c", payload(1000, 3)); // spills LRU ("a") to NVMe
        c.get(RankId(0), "a").unwrap().unwrap(); // NVMe hit (promotes "a", spilling "b")
        c.get(RankId(0), "a").unwrap().unwrap(); // DRAM hit
        c.get(RankId(6), "a").unwrap().unwrap(); // remote DRAM hit
        c.get(RankId(0), "b").unwrap().unwrap(); // NVMe hit
        assert!(c.get(RankId(0), "ghost").unwrap().is_none());

        let snap = c.metrics().snapshot();
        assert_eq!(snap.counter("ids_cache_lookup_hits_total", "local_dram"), 1);
        assert_eq!(snap.counter("ids_cache_lookup_hits_total", "remote_dram"), 1);
        assert_eq!(snap.counter("ids_cache_lookup_hits_total", "local_nvme"), 2);
        assert_eq!(snap.counter("ids_cache_lookup_misses_total", ""), 1);
        assert!(snap.counter("ids_cache_spills_total", "") >= 1);
        assert_eq!(
            snap.counter("ids_cache_spills_total", ""),
            snap.counter("ids_cache_evictions_total", "dram")
        );
        assert!(snap.counter("ids_cache_evicted_bytes_total", "dram") >= 1000);
        assert!(snap.counter("ids_cache_inserts_total", "dram") >= 3);

        // Gauges reflect resident bytes, consistent with stats.
        let dram = snap
            .gauges
            .iter()
            .find(|(k, _)| k.name == "ids_cache_size_bytes" && k.label_value == "dram")
            .unwrap()
            .1;
        assert!(*dram > 0 && *dram <= 2048 * 2);

        // Prometheus exposition carries the tier counters.
        let text = c.metrics().render_prometheus();
        assert!(text.contains("ids_cache_lookup_hits_total{tier=\"local_dram\"} 1"));
        assert!(text.contains("ids_cache_lookup_hits_total{tier=\"local_nvme\"} 2"));
        assert!(text.contains("# TYPE ids_cache_size_bytes gauge"));
    }

    #[test]
    fn overwrite_updates_value_and_accounting() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "k", payload(100, 1));
        c.put(RankId(0), "k", payload(200, 2));
        let (data, _) = c.get(RankId(0), "k").unwrap().unwrap();
        assert_eq!(data.len(), 200);
        assert_eq!(data[0], 2);
        let meta = c.meta("k").unwrap();
        assert_eq!(meta.size, 200);
    }

    #[test]
    fn fail_and_recover_are_idempotent_and_metered() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(100, 1));
        c.fail_node(NodeId(0));
        c.fail_node(NodeId(0)); // second call is a no-op
        assert!(c.node_is_down(NodeId(0)));
        let snap = c.metrics().snapshot();
        assert_eq!(snap.counter("ids_cache_node_failures_total", ""), 1);
        assert!(snap.spans.iter().any(|s| s.name == "cache.node_down"));

        c.recover_node(NodeId(0));
        c.recover_node(NodeId(0)); // second call is a no-op
        assert!(!c.node_is_down(NodeId(0)));
        let snap = c.metrics().snapshot();
        assert_eq!(snap.counter("ids_cache_node_recoveries_total", ""), 1);
        assert!(snap.spans.iter().any(|s| s.name == "cache.node_recovered"));
        let h = snap
            .histograms
            .get(&ids_obs::MetricKey::unlabelled("ids_cache_node_recovery_secs"))
            .expect("recovery-time histogram recorded");
        assert_eq!(h.count, 1);

        // A crashed node rejoins empty: its DRAM/NVMe contents are lost
        // (§3.2 — the backing store is authoritative, the cache is not).
        assert!(c.locality("obj").is_empty());
        let (_, out) = c.get(RankId(0), "obj").unwrap().unwrap();
        assert_eq!(out.tier, Tier::Backing);
    }

    #[test]
    fn repopulation_after_failure_lands_on_live_nodes_only() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(100, 1));
        assert_eq!(c.locality("obj"), vec![(NodeId(0), Tier::LocalDram)]);

        c.fail_node(NodeId(0));
        // Entry is fenced: lookup skips the down node and falls through
        // to the backing store, re-populating onto the live node.
        let (_, out) = c.get(RankId(0), "obj").unwrap().unwrap();
        assert_eq!(out.tier, Tier::Backing);
        let loc = c.locality("obj");
        assert_eq!(loc, vec![(NodeId(1), Tier::LocalDram)]);
        assert!(loc.iter().all(|(n, _)| !c.node_is_down(*n)));

        // The backing fetch of a previously cached object is metered as a
        // re-population, distinct from cold-miss traffic.
        assert_eq!(c.stats().repopulations, 1);
        let snap = c.metrics().snapshot();
        assert_eq!(snap.counter("ids_cache_repopulations_total", ""), 1);
    }

    #[test]
    fn cold_backing_fetch_is_not_a_repopulation() {
        let backing = BackingStore::default_store();
        backing.put("cold", payload(64, 9));
        let c = CacheManager::new(
            Topology::new(4, 2),
            NetworkModel::slingshot(),
            CacheConfig::new(2, 1 << 20, 1 << 22),
            backing,
        );
        let (_, out) = c.get(RankId(0), "cold").unwrap().unwrap();
        assert_eq!(out.tier, Tier::Backing);
        assert_eq!(c.stats().repopulations, 0);
        assert_eq!(c.stats().backing_fetches, 1);
    }

    #[test]
    fn locality_never_reports_a_down_node() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "a", payload(100, 1));
        c.put(RankId(2), "b", payload(100, 2));
        c.fail_node(NodeId(1));
        assert_eq!(c.locality("a"), vec![(NodeId(0), Tier::LocalDram)]);
        assert!(c.locality("b").is_empty(), "fenced entries are invisible");
        assert!(c.meta("b").is_none());
        c.recover_node(NodeId(1));
        assert!(c.locality("b").is_empty(), "recovered node rejoined empty");
    }

    #[test]
    fn all_nodes_down_still_serves_from_backing() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(100, 1));
        c.fail_node(NodeId(0));
        c.fail_node(NodeId(1));
        let (data, out) = c.get(RankId(0), "obj").unwrap().unwrap();
        assert_eq!(out.tier, Tier::Backing);
        assert_eq!(data.len(), 100);
        // Nothing live to re-populate onto; puts keep only the backing copy.
        assert!(c.locality("obj").is_empty());
        let cost = c.put(RankId(0), "other", payload(50, 2));
        assert!(cost > 0.0);
        let (_, out2) = c.get(RankId(0), "other").unwrap().unwrap();
        assert_eq!(out2.tier, Tier::Backing);
    }

    #[test]
    fn transient_storm_exhausts_retries_but_local_access_is_unaffected() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(100, 1));
        // Every fabric access fails: remote retries exhaust, then the
        // backing fetch (also over the fabric) exhausts too.
        c.attach_faults(Arc::new(FaultPlane::new(
            5,
            ids_simrt::faults::FaultConfig::transient_only(1.0),
            4,
            8,
            100.0,
        )));
        let err = c.get(RankId(6), "obj").unwrap_err();
        match &err {
            CacheError::RetriesExhausted { attempts, spent_secs, .. } => {
                assert_eq!(*attempts, RetryPolicy::default().max_attempts);
                assert!(*spent_secs > 0.0, "backoff waits are charged to virtual time");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert!(c.stats().retries > 0);
        // Local DRAM access never touches the fabric, so it still serves.
        let (_, out) = c.get(RankId(0), "obj").unwrap().unwrap();
        assert_eq!(out.tier, Tier::LocalDram);
    }

    #[test]
    fn moderate_transients_are_absorbed_by_retries() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(100, 1));
        c.attach_faults(Arc::new(FaultPlane::new(
            11,
            ids_simrt::faults::FaultConfig::transient_only(0.3),
            4,
            8,
            100.0,
        )));
        let mut served = 0;
        for _ in 0..100 {
            if c.get(RankId(6), "obj").is_ok_and(|r| r.is_some()) {
                served += 1;
            }
        }
        // P(4 consecutive transient failures) = 0.3^4 ≈ 0.8%, and even then
        // the backing fallback gets its own retry budget.
        assert!(served >= 98, "retries should absorb most transients, served {served}");
        assert!(c.stats().retries > 0);
        let snap = c.metrics().snapshot();
        assert!(snap.counter("ids_cache_retries_total", "") > 0);
        let h = snap
            .histograms
            .get(&ids_obs::MetricKey::unlabelled("ids_cache_retry_wait_secs"))
            .expect("retry-wait histogram recorded");
        assert!(h.count > 0 && h.sum > 0.0);
    }

    #[test]
    fn per_get_deadline_is_enforced() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(100, 1));
        c.attach_faults(Arc::new(FaultPlane::new(
            3,
            ids_simrt::faults::FaultConfig::transient_only(1.0),
            4,
            8,
            100.0,
        )));
        c.set_fault_tolerance(FaultTolerance {
            retry: RetryPolicy { max_attempts: 64, ..RetryPolicy::default() },
            get_deadline_secs: 0.005,
            degrade_to_backing: true,
        });
        let err = c.get(RankId(6), "obj").unwrap_err();
        match err {
            CacheError::DeadlineExceeded { deadline_secs, spent_secs } => {
                assert_eq!(deadline_secs, 0.005);
                assert!(spent_secs > deadline_secs);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(c.metrics().snapshot().counter("ids_cache_deadline_timeouts_total", "") > 0);
    }

    #[test]
    fn strict_mode_reports_node_down_instead_of_degrading() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(100, 1));
        c.set_fault_tolerance(FaultTolerance {
            degrade_to_backing: false,
            ..FaultTolerance::default()
        });
        c.fail_node(NodeId(0));
        let err = c.get(RankId(0), "obj").unwrap_err();
        assert!(matches!(err, CacheError::NodeDown { node: NodeId(0), .. }), "got {err:?}");
        // The default policy degrades to the backing store instead.
        c.set_fault_tolerance(FaultTolerance::default());
        assert!(c.get(RankId(0), "obj").unwrap().is_some());
    }

    #[test]
    fn plane_crash_windows_fence_then_wipe_on_recovery() {
        let plane = Arc::new(FaultPlane::new(
            7,
            ids_simrt::faults::FaultConfig::crashes_only(1.0, 0.5),
            4,
            8,
            60.0,
        ));
        let (start, end) = plane.crash_windows(NodeId(0))[0];
        let c = cache(1 << 20, 1 << 22);
        c.attach_faults(plane.clone());
        c.put(RankId(0), "obj", payload(100, 1));
        assert_eq!(c.locality("obj"), vec![(NodeId(0), Tier::LocalDram)]);

        plane.advance_to((start + end) / 2.0);
        assert!(c.node_is_down(NodeId(0)));
        assert!(c.locality("obj").is_empty(), "fenced while the plane holds the node down");
        let (_, out) = c.get(RankId(0), "obj").unwrap().unwrap();
        assert_eq!(out.tier, Tier::Backing);

        plane.advance_to(end + 1e-9);
        assert!(!c.node_is_down(NodeId(0)));
        // Node 0 rejoined empty — any surviving copy lives elsewhere.
        // (Node 1 has its own crash schedule, so we only assert node 0's
        // fenced entry did not outlive the crash.)
        assert!(c.locality("obj").iter().all(|(n, _)| *n != NodeId(0)));
        let snap = c.metrics().snapshot();
        assert!(snap.counter("ids_cache_node_failures_total", "") >= 1);
        assert!(snap.counter("ids_cache_node_recoveries_total", "") >= 1);
        let h = snap
            .histograms
            .get(&ids_obs::MetricKey::unlabelled("ids_cache_node_recovery_secs"))
            .unwrap();
        assert!(h.count >= 1);
        assert!(h.mean() > 0.0);
    }

    fn cache_rf(k: usize) -> CacheManager {
        CacheManager::new(
            Topology::new(4, 2),
            NetworkModel::slingshot(),
            CacheConfig::new(2, 1 << 20, 1 << 22).with_replication(k),
            BackingStore::default_store(),
        )
    }

    #[test]
    fn replicated_put_lands_k_copies_and_charges_each() {
        let c1 = cache_rf(1);
        let c2 = cache_rf(2);
        let cost1 = c1.put(RankId(0), "obj", payload(1 << 16, 5));
        let cost2 = c2.put(RankId(0), "obj", payload(1 << 16, 5));
        assert_eq!(c1.locality("obj").len(), 1);
        let holders: Vec<NodeId> = c2.locality("obj").iter().map(|(n, _)| *n).collect();
        assert_eq!(holders, vec![NodeId(0), NodeId(1)], "distinct nodes hold the replicas");
        assert!(cost2 > cost1, "each replica write is charged: {cost2} vs {cost1}");
        // Metadata carries the content checksum.
        assert_eq!(c2.meta("obj").unwrap().checksum, crc32(&payload(1 << 16, 5)));
    }

    #[test]
    fn failover_read_survives_node_crash_with_zero_backing_traffic() {
        let c = cache_rf(2);
        c.put(RankId(0), "obj", payload(1000, 7));
        c.fail_node(NodeId(0));
        // The primary copy is fenced; the surviving replica answers
        // without touching the backing store.
        let (data, out) = c.get(RankId(0), "obj").unwrap().unwrap();
        assert_eq!(out.tier, Tier::RemoteDram);
        assert_eq!(data.len(), 1000);
        let s = c.stats();
        assert_eq!(s.backing_fetches, 0, "no backing fallback needed");
        assert_eq!(s.repopulations, 0, "the crash cost no re-population");
        assert_eq!(s.failover_reads, 1);
        let snap = c.metrics().snapshot();
        assert_eq!(snap.counter("ids_cache_failover_reads_total", ""), 1);
        assert_eq!(snap.counter("ids_cache_repopulations_total", ""), 0);
    }

    #[test]
    fn strict_mode_serves_from_surviving_replica() {
        let c = cache_rf(2);
        c.set_fault_tolerance(FaultTolerance {
            degrade_to_backing: false,
            ..FaultTolerance::default()
        });
        c.put(RankId(0), "obj", payload(100, 1));
        c.fail_node(NodeId(0));
        // With replication 1 this errored (NodeDown); with a live replica
        // strict mode is satisfied without degradation.
        let (_, out) = c.get(RankId(0), "obj").unwrap().unwrap();
        assert_eq!(out.tier, Tier::RemoteDram);
        assert_eq!(c.stats().failover_reads, 1);
    }

    #[test]
    fn under_replicated_write_is_metered() {
        let c = cache_rf(2);
        c.fail_node(NodeId(1));
        c.put(RankId(0), "obj", payload(100, 1));
        assert_eq!(c.locality("obj").len(), 1, "only one live node to hold a copy");
        let s = c.stats();
        assert_eq!(s.under_replicated_writes, 1);
        let snap = c.metrics().snapshot();
        assert_eq!(snap.counter("ids_cache_under_replicated_writes_total", ""), 1);
        assert!(snap.spans.iter().any(|sp| sp.name == "cache.under_replicated_write"));
        // Fully replicated writes are not metered.
        c.recover_node(NodeId(1));
        c.put(RankId(0), "obj2", payload(100, 2));
        assert_eq!(c.stats().under_replicated_writes, 1);
    }

    #[test]
    fn anti_entropy_restores_replication_after_recovery_wipe() {
        let c = cache_rf(2);
        c.put(RankId(0), "a", payload(500, 1));
        c.put(RankId(2), "b", payload(500, 2));
        c.fail_node(NodeId(0));
        c.recover_node(NodeId(0)); // rejoined empty: survivors under-replicated
        assert_eq!(c.locality("a").len(), 1);
        assert_eq!(c.locality("b").len(), 1);

        let report = c.anti_entropy();
        assert_eq!(report.re_replicated, 2, "both survivors regain their second copy");
        assert_eq!(report.corruptions, 0);
        assert_eq!(c.locality("a").len(), 2);
        assert_eq!(c.locality("b").len(), 2);
        assert_eq!(c.stats().repairs, 2);
        let snap = c.metrics().snapshot();
        assert_eq!(snap.counter("ids_cache_repairs_total", "re_replicate"), 2);
        assert_eq!(snap.counter("ids_cache_anti_entropy_runs_total", ""), 1);
        assert!(snap.counter("ids_cache_scrubbed_objects_total", "") >= 2);

        // A second pass finds nothing to do.
        assert!(c.anti_entropy().is_noop());
    }

    #[test]
    fn maybe_anti_entropy_follows_the_virtual_clock() {
        let plane =
            Arc::new(FaultPlane::new(1, ids_simrt::faults::FaultConfig::none(), 4, 8, 1000.0));
        let c = cache_rf(2);
        c.attach_faults(plane.clone());
        c.put(RankId(0), "obj", payload(100, 1));
        // t=0: the interval (1s) has not elapsed and nothing recovered.
        assert!(c.maybe_anti_entropy().is_none());
        plane.advance_to(0.5);
        assert!(c.maybe_anti_entropy().is_none());
        plane.advance_to(1.5);
        let report = c.maybe_anti_entropy().expect("interval elapsed");
        assert!(report.scrubbed >= 1);
        // The pass just ran; the next one waits for the interval again.
        assert!(c.maybe_anti_entropy().is_none());

        // A recovery forces the next pass regardless of the interval.
        c.fail_node(NodeId(0));
        c.recover_node(NodeId(0));
        let report = c.maybe_anti_entropy().expect("recovery pending");
        assert_eq!(report.re_replicated, 1);
    }

    #[test]
    fn torn_write_corrupts_backing_and_anti_entropy_rewrites_it() {
        let c = cache_rf(2);
        // Every backing write tears; cached replicas stay healthy.
        c.attach_faults(Arc::new(FaultPlane::new(
            3,
            ids_simrt::faults::FaultConfig::storage_only(0.0, 1.0),
            4,
            8,
            100.0,
        )));
        c.put(RankId(0), "obj", payload(2000, 9));
        // The cached copies still serve reads correctly.
        let (data, out) = c.get(RankId(0), "obj").unwrap().unwrap();
        assert_eq!(out.tier, Tier::LocalDram);
        assert_eq!(&data[..], &payload(2000, 9)[..]);

        let report = c.anti_entropy();
        assert_eq!(report.backing_repairs, 1, "torn authoritative copy rewritten");
        assert!(report.corruptions >= 1);
        let snap = c.metrics().snapshot();
        assert_eq!(snap.counter("ids_cache_repairs_total", "backing_rewrite"), 1);
        assert_eq!(snap.counter("ids_cache_corruptions_detected_total", "backing"), 1);
    }

    #[test]
    fn corrupt_backing_with_no_replica_is_detected_never_served() {
        let backing = BackingStore::default_store();
        backing.put("poison", payload(256, 4));
        backing.corrupt("poison");
        let c = CacheManager::new(
            Topology::new(4, 2),
            NetworkModel::slingshot(),
            CacheConfig::new(2, 1 << 20, 1 << 22),
            backing,
        );
        let err = c.get(RankId(0), "poison").unwrap_err();
        match &err {
            CacheError::Corrupted { name, spent_secs } => {
                assert_eq!(name, "poison");
                assert!(*spent_secs > 0.0, "the failed read still cost virtual time");
            }
            other => panic!("expected Corrupted, got {other:?}"),
        }
        assert!(err.to_string().contains("poison"));
        assert_eq!(c.stats().corruptions_detected, 1);
        assert_eq!(
            c.metrics().snapshot().counter("ids_cache_corruptions_detected_total", "backing"),
            1
        );
        assert!(c.locality("poison").is_empty(), "corrupt bytes were never cached");
    }

    #[test]
    fn bit_rot_on_read_quarantines_and_fails_over_to_healthy_replica() {
        // Find a seed where the requester-local copy rots on the first
        // read but the remote replica survives it: the get must serve the
        // healthy bytes and repair the quarantined copy in place.
        let mut exercised = false;
        for seed in 0..64u64 {
            let c = cache_rf(2);
            c.attach_faults(Arc::new(FaultPlane::new(
                seed,
                ids_simrt::faults::FaultConfig::storage_only(0.5, 0.0),
                4,
                8,
                100.0,
            )));
            c.put(RankId(0), "obj", payload(1500, 6));
            let Ok(Some((data, out))) = c.get(RankId(0), "obj") else { continue };
            assert_eq!(&data[..], &payload(1500, 6)[..], "never serve rotted bytes");
            let s = c.stats();
            if out.tier == Tier::RemoteDram && s.corruptions_detected == 1 {
                assert_eq!(s.failover_reads, 1);
                assert_eq!(s.repairs, 1, "quarantined copy repaired from the serve");
                assert_eq!(c.locality("obj").len(), 2, "replication restored in-line");
                let snap = c.metrics().snapshot();
                assert_eq!(snap.counter("ids_cache_quarantines_total", ""), 1);
                assert_eq!(snap.counter("ids_cache_corruptions_detected_total", "cache"), 1);
                assert_eq!(snap.counter("ids_cache_repairs_total", "re_replicate"), 1);
                assert!(snap.spans.iter().any(|sp| sp.name == "cache.quarantine"));
                exercised = true;
                break;
            }
        }
        assert!(exercised, "no seed in 0..64 exercised the quarantine+failover path");
    }

    #[test]
    fn scrub_quarantines_rotted_copies_deterministically() {
        let run = |seed: u64| {
            let c = cache_rf(2);
            c.attach_faults(Arc::new(FaultPlane::new(
                seed,
                ids_simrt::faults::FaultConfig::storage_only(1.0, 0.0),
                4,
                8,
                100.0,
            )));
            // Bypass read-path rot by scrubbing immediately after put.
            c.put(RankId(0), "obj", payload(800, 3));
            c.anti_entropy()
        };
        let a = run(17);
        let b = run(17);
        assert_eq!(a, b, "scrub outcome is a pure function of the seed");
        // With p=1.0 every live copy rots and is quarantined.
        assert_eq!(a.scrubbed, 2);
        assert_eq!(a.corruptions, 2);
        // The object is gone from the cache but intact in backing.
        let c = cache_rf(2);
        c.attach_faults(Arc::new(FaultPlane::new(
            17,
            ids_simrt::faults::FaultConfig::storage_only(1.0, 0.0),
            4,
            8,
            100.0,
        )));
        c.put(RankId(0), "obj", payload(800, 3));
        c.anti_entropy();
        assert!(c.locality("obj").is_empty());
        let (data, out) = c.get(RankId(0), "obj").unwrap().unwrap();
        assert_eq!(out.tier, Tier::Backing, "authoritative copy still serves");
        assert_eq!(&data[..], &payload(800, 3)[..]);
    }

    #[test]
    fn replication_clamps_to_live_nodes_not_capacity() {
        // k larger than the cluster: every live node gets a copy, and the
        // write is metered under-replicated.
        let c = cache_rf(5);
        c.put(RankId(0), "obj", payload(100, 1));
        assert_eq!(c.locality("obj").len(), 2);
        assert_eq!(c.stats().under_replicated_writes, 1);
    }

    #[test]
    fn accounting_invariant_survives_churn() {
        // Exercise put/get/invalidate/fail/recover cycles under tight
        // capacities; `debug_check_accounting` fires after every mutation
        // (debug_assert), so this test's value is in not panicking.
        let c = cache(2048, 4096);
        for i in 0u32..60 {
            let name = format!("k{}", i % 10);
            c.put(RankId(i % 8), &name, payload(700 + (i as usize * 37) % 900, i as u8));
            if i % 7 == 0 {
                c.invalidate(&format!("k{}", (i + 3) % 10));
            }
            if i % 11 == 0 {
                c.fail_node(NodeId(0));
            }
            if i % 13 == 0 {
                c.recover_node(NodeId(0));
            }
            let _ = c.get(RankId((i + 3) % 8), &format!("k{}", (i + 1) % 10));
        }
        let stats = c.stats();
        assert!(stats.cache_hits() + stats.backing_fetches + stats.total_misses > 0);
    }

    #[test]
    fn admission_filter_drops_cold_spills_under_nvme_pressure() {
        let c = cache_cfg(CacheConfig::new(2, 1000, 1000));
        c.put(RankId(0), "a", payload(900, 1));
        c.get(RankId(0), "a").unwrap().unwrap(); // "a" is reused: sketch estimate ≥ 2
        c.put(RankId(0), "b", payload(900, 2)); // "a" spills to NVMe (it fits)
                                                // "b" would spill next, but NVMe is full and "b" was touched only
                                                // once → the admission filter drops it instead of churning "a".
        c.put(RankId(0), "c", payload(900, 3));
        assert!(c.stats().admission_rejects >= 1);
        assert!(c.metrics().snapshot().counter("ids_cache_admission_rejects_total", "nvme") >= 1);
        // The reused object survived on disk; the one-hit wonder did not.
        let (_, a) = c.get(RankId(0), "a").unwrap().unwrap();
        assert_eq!(a.tier, Tier::LocalNvme, "reused object kept its NVMe copy");
        let (_, b) = c.get(RankId(0), "b").unwrap().unwrap();
        assert_eq!(b.tier, Tier::Backing, "the cold spill was dropped");
    }

    #[test]
    fn warm_restart_retains_nvme_entries_after_recovery() {
        let c = cache_cfg(CacheConfig::new(2, 1000, 1 << 20));
        c.put(RankId(0), "a", payload(900, 1));
        c.put(RankId(0), "b", payload(900, 2)); // "a" spills to node 0's NVMe
        assert_eq!(c.locality("a"), vec![(NodeId(0), Tier::LocalNvme)]);

        c.fail_node(NodeId(0));
        c.recover_node(NodeId(0));
        // DRAM was wiped (volatile); the NVMe tier survived the restart.
        assert_eq!(c.stats().warm_restart_retained, 1);
        let (_, a) = c.get(RankId(0), "a").unwrap().unwrap();
        assert_eq!(a.tier, Tier::LocalNvme, "warm NVMe serves without backing traffic");
        assert_eq!(c.stats().backing_fetches, 0);
        let snap = c.metrics().snapshot();
        assert_eq!(snap.counter("ids_cache_warm_restart_retained_total", ""), 1);
        assert_eq!(
            snap.counter("ids_cache_warm_restart_verified_total", ""),
            1,
            "first clean read re-verified the retained entry"
        );
        // The DRAM casualty re-populates from backing as before.
        let (_, b) = c.get(RankId(0), "b").unwrap().unwrap();
        assert_eq!(b.tier, Tier::Backing);
    }

    #[test]
    fn cold_restart_wipes_both_tiers_when_disabled() {
        let c = cache_cfg(CacheConfig::new(2, 1000, 1 << 20).with_warm_restart(false));
        c.put(RankId(0), "a", payload(900, 1));
        c.put(RankId(0), "b", payload(900, 2)); // "a" spills to NVMe
        c.fail_node(NodeId(0));
        c.recover_node(NodeId(0));
        assert_eq!(c.stats().warm_restart_retained, 0);
        let (_, a) = c.get(RankId(0), "a").unwrap().unwrap();
        assert_eq!(a.tier, Tier::Backing, "cold restart lost the NVMe copy");
    }

    #[test]
    fn s3fifo_keeps_hot_set_resident_under_scan() {
        // DRAM holds 4 objects. One hot object is re-referenced, then a
        // 12-object sequential scan pours through.
        let run = |eviction| {
            let c = cache_cfg(CacheConfig::new(2, 4096, 1 << 20).with_eviction(eviction));
            c.put(RankId(0), "hot", payload(1000, 1));
            for _ in 0..4 {
                c.get(RankId(0), "hot").unwrap().unwrap();
            }
            for i in 0..12 {
                c.put(RankId(0), &format!("scan{i}"), payload(1000, 2));
            }
            let (_, out) = c.get(RankId(0), "hot").unwrap().unwrap();
            out.tier
        };
        assert_eq!(
            run(EvictionKind::S3Fifo),
            Tier::LocalDram,
            "scan traffic must not flush the S3-FIFO hot set"
        );
        assert_ne!(
            run(EvictionKind::Lru),
            Tier::LocalDram,
            "LRU thrashes under the same scan (negative control)"
        );
    }

    #[test]
    fn tinylfu_admission_protects_dram_from_cold_inserts() {
        let c = cache_cfg(CacheConfig::new(2, 2048, 1 << 20).with_eviction(EvictionKind::TinyLfu));
        c.put(RankId(0), "hot1", payload(1000, 1));
        c.put(RankId(0), "hot2", payload(1000, 2));
        for _ in 0..3 {
            c.get(RankId(0), "hot1").unwrap().unwrap();
            c.get(RankId(0), "hot2").unwrap().unwrap();
        }
        // A cold insert (estimate 1) cannot displace a victim with
        // estimate ≥ 4 — it lands on NVMe instead.
        c.put(RankId(0), "cold", payload(1000, 3));
        let (_, h) = c.get(RankId(0), "hot1").unwrap().unwrap();
        assert_eq!(h.tier, Tier::LocalDram, "resident hot set untouched");
        let (_, cold) = c.get(RankId(0), "cold").unwrap().unwrap();
        assert_eq!(cold.tier, Tier::LocalNvme, "rejected candidate still cached on disk");
        assert!(c.stats().admission_rejects >= 1);
        assert!(c.metrics().snapshot().counter("ids_cache_admission_rejects_total", "dram") >= 1);
    }

    #[test]
    fn inspector_reports_occupancy_and_movement() {
        let c = cache(2048, 1 << 20);
        c.put(RankId(0), "a", payload(1000, 1));
        c.put(RankId(0), "b", payload(1000, 2));
        c.put(RankId(0), "c", payload(1000, 3)); // spills "a"
        c.get(RankId(0), "a").unwrap().unwrap(); // NVMe hit → promote
        let insp = c.inspect();
        assert_eq!(insp.tiers.len(), 4, "two nodes × two tiers");
        assert!(insp.spills >= 1);
        assert_eq!(insp.promotes, 1);
        assert_eq!(insp.hits[2], 1, "one local-NVMe hit");
        assert!(insp.tiers.iter().any(|t| t.victim_pops > 0));
        assert!(insp.occupied("dram") > 0 && insp.occupied("dram") <= 2 * 2048);
        assert!(insp.hit_rate() > 0.0);
        let text = insp.render();
        assert!(text.contains("eviction policy: lru"), "{text}");
        assert!(text.contains("node 0 dram:"), "{text}");
        let json = insp.to_json();
        assert!(json.contains("\"spills\":") && json.contains("\"promotes\":1"), "{json}");
    }
}
