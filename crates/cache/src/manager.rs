//! The Cache Manager (§3.2): tiered placement, eviction, locality, and
//! failure handling for the globally shared client-side cache.
//!
//! Tier order on access, cheapest first: local DRAM → remote DRAM (via
//! FAM/RDMA) → local NVMe → remote NVMe → backing store. When DRAM
//! capacity is exceeded the LRU entry *spills* to the same node's NVMe
//! ("when DRAM capacity is exceeded, the cache seamlessly spills data to
//! locally connected SSDs"); NVMe evictions drop the cached copy entirely —
//! safe because authoritative copies live in the backing store. A fetched
//! backing-store object is re-cached near the requester (re-population).

use crate::backing::BackingStore;
use crate::object::{object_id, ObjectMeta};
use crate::policy::PlacementPolicy;
use bytes::Bytes;
use ids_obs::{Counter, Gauge, MetricsRegistry};
use ids_simrt::net::NetworkModel;
use ids_simrt::topology::{NodeId, RankId, Topology};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which tier served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    LocalDram,
    RemoteDram,
    LocalNvme,
    RemoteNvme,
    Backing,
}

/// Result of a cache read: where it was served from and what it cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheOutcome {
    pub tier: Tier,
    pub virtual_secs: f64,
}

/// Aggregate hit/miss statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    pub local_dram_hits: u64,
    pub remote_dram_hits: u64,
    pub local_nvme_hits: u64,
    pub remote_nvme_hits: u64,
    pub backing_fetches: u64,
    pub total_misses: u64,
    pub evictions_to_nvme: u64,
    pub evictions_dropped: u64,
}

impl CacheStats {
    /// All cache-tier hits (everything short of the backing store).
    pub fn cache_hits(&self) -> u64 {
        self.local_dram_hits + self.remote_dram_hits + self.local_nvme_hits + self.remote_nvme_hits
    }

    /// Hit rate over all accesses that found the object somewhere.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits() + self.backing_fetches;
        if total == 0 {
            0.0
        } else {
            self.cache_hits() as f64 / total as f64
        }
    }
}

/// Cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of nodes contributing DRAM/NVMe to the cache (the first
    /// `cache_nodes` node ids of the topology).
    pub cache_nodes: usize,
    /// DRAM bytes contributed per node.
    pub dram_capacity: u64,
    /// NVMe bytes contributed per node.
    pub nvme_capacity: u64,
    /// Placement policy for new objects.
    pub policy: PlacementPolicy,
    /// NVMe access latency (seconds).
    pub nvme_latency: f64,
    /// NVMe bandwidth (bytes/second).
    pub nvme_bandwidth: f64,
}

impl CacheConfig {
    /// Testbed-like defaults: local-first placement, NVMe at 100 µs / 3 GB/s.
    pub fn new(cache_nodes: usize, dram_capacity: u64, nvme_capacity: u64) -> Self {
        Self {
            cache_nodes,
            dram_capacity,
            nvme_capacity,
            policy: PlacementPolicy::LocalFirst,
            nvme_latency: 1.0e-4,
            nvme_bandwidth: 3.0e9,
        }
    }
}

struct Entry {
    data: Bytes,
    last_access: u64,
}

struct TierState {
    entries: HashMap<String, Entry>,
    used: u64,
}

impl TierState {
    fn new() -> Self {
        Self { entries: HashMap::new(), used: 0 }
    }

    fn lru_victim(&self) -> Option<String> {
        self.entries
            .iter()
            .min_by_key(|(name, e)| (e.last_access, (*name).clone()))
            .map(|(name, _)| name.clone())
    }
}

struct State {
    dram: Vec<TierState>,
    nvme: Vec<TierState>,
    clock: u64,
    placement_counter: u64,
}

/// Pre-resolved `ids-obs` handles for the cache's fixed label set, so
/// the hot path bumps atomics without touching the registry maps.
struct CacheMetrics {
    registry: MetricsRegistry,
    hits: [Counter; 4], // indexed by tier_slot(): local/remote DRAM, local/remote NVMe
    backing_fetches: Counter,
    misses: Counter,
    inserts_dram: Counter,
    inserts_nvme: Counter,
    spills: Counter,
    evictions_dram: Counter,
    evictions_nvme: Counter,
    evicted_bytes_dram: Counter,
    evicted_bytes_nvme: Counter,
    size_dram: Gauge,
    size_nvme: Gauge,
}

impl CacheMetrics {
    fn new(registry: MetricsRegistry) -> Self {
        let hit = |tier| registry.counter_with("ids_cache_lookup_hits_total", "tier", tier);
        Self {
            hits: [hit("local_dram"), hit("remote_dram"), hit("local_nvme"), hit("remote_nvme")],
            backing_fetches: hit("backing"),
            misses: registry.counter("ids_cache_lookup_misses_total"),
            inserts_dram: registry.counter_with("ids_cache_inserts_total", "tier", "dram"),
            inserts_nvme: registry.counter_with("ids_cache_inserts_total", "tier", "nvme"),
            spills: registry.counter("ids_cache_spills_total"),
            evictions_dram: registry.counter_with("ids_cache_evictions_total", "tier", "dram"),
            evictions_nvme: registry.counter_with("ids_cache_evictions_total", "tier", "nvme"),
            evicted_bytes_dram: registry.counter_with(
                "ids_cache_evicted_bytes_total",
                "tier",
                "dram",
            ),
            evicted_bytes_nvme: registry.counter_with(
                "ids_cache_evicted_bytes_total",
                "tier",
                "nvme",
            ),
            size_dram: registry.gauge_with("ids_cache_size_bytes", "tier", "dram"),
            size_nvme: registry.gauge_with("ids_cache_size_bytes", "tier", "nvme"),
            registry,
        }
    }

    fn tier_hit(&self, tier: Tier) {
        match tier {
            Tier::LocalDram => self.hits[0].inc(),
            Tier::RemoteDram => self.hits[1].inc(),
            Tier::LocalNvme => self.hits[2].inc(),
            Tier::RemoteNvme => self.hits[3].inc(),
            Tier::Backing => self.backing_fetches.inc(),
        }
    }

    fn update_sizes(&self, st: &State) {
        self.size_dram.set(st.dram.iter().map(|t| t.used).sum::<u64>() as i64);
        self.size_nvme.set(st.nvme.iter().map(|t| t.used).sum::<u64>() as i64);
    }
}

/// The distributed cache manager.
pub struct CacheManager {
    cfg: CacheConfig,
    topo: Topology,
    net: NetworkModel,
    backing: BackingStore,
    state: Mutex<State>,
    stats: Mutex<CacheStats>,
    metrics: CacheMetrics,
}

impl CacheManager {
    /// Build a cache over `topo` with the given config; the backing store
    /// starts empty.
    pub fn new(topo: Topology, net: NetworkModel, cfg: CacheConfig, backing: BackingStore) -> Self {
        assert!(cfg.cache_nodes > 0, "need at least one cache node");
        assert!(cfg.cache_nodes as u32 <= topo.nodes(), "more cache nodes than nodes");
        let state = State {
            dram: (0..cfg.cache_nodes).map(|_| TierState::new()).collect(),
            nvme: (0..cfg.cache_nodes).map(|_| TierState::new()).collect(),
            clock: 0,
            placement_counter: 0,
        };
        Self {
            cfg,
            topo,
            net,
            backing,
            state: Mutex::new(state),
            stats: Mutex::new(CacheStats::default()),
            metrics: CacheMetrics::new(MetricsRegistry::new()),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The cache's `ids-obs` registry (tier hit/insert/eviction counters
    /// and per-tier resident-size gauges).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics.registry
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats.lock().clone()
    }

    /// Reset statistics (not contents).
    pub fn reset_stats(&self) {
        *self.stats.lock() = CacheStats::default();
    }

    fn dram_transfer(&self, from: RankId, node: NodeId, bytes: u64) -> f64 {
        if self.topo.node_of(from) == node {
            self.net.intra_latency + bytes as f64 / self.net.intra_bandwidth
        } else {
            self.net.inter_latency + bytes as f64 / self.net.inter_bandwidth
        }
    }

    fn nvme_transfer(&self, from: RankId, node: NodeId, bytes: u64) -> f64 {
        let device = self.cfg.nvme_latency + bytes as f64 / self.cfg.nvme_bandwidth;
        if self.topo.node_of(from) == node {
            device
        } else {
            device + self.net.inter_latency + bytes as f64 / self.net.inter_bandwidth
        }
    }

    /// Store an object: persists to the backing store (authoritative) and
    /// caches it per the placement policy. Returns the virtual cost.
    pub fn put(&self, from: RankId, name: &str, data: Bytes) -> f64 {
        let size = data.len() as u64;
        let mut cost = self.backing.put(name, data.clone()).virtual_secs;

        let mut st = self.state.lock();
        st.clock += 1;
        st.placement_counter += 1;
        // Coherence on overwrite: drop every cached copy of this name first
        // (the new placement may land on a different node than a previous
        // put's, and a stale copy must never win the tier search).
        for ni in 0..self.cfg.cache_nodes {
            if let Some(e) = st.dram[ni].entries.remove(name) {
                st.dram[ni].used -= e.data.len() as u64;
            }
            if let Some(e) = st.nvme[ni].entries.remove(name) {
                st.nvme[ni].used -= e.data.len() as u64;
            }
        }
        let free: Vec<u64> =
            st.dram.iter().map(|t| self.cfg.dram_capacity.saturating_sub(t.used)).collect();
        let node = self.cfg.policy.place(self.topo.node_of(from), &free, st.placement_counter - 1);
        cost += self.dram_transfer(from, node, size);
        self.insert_dram(&mut st, node, name, data);
        cost
    }

    fn insert_dram(&self, st: &mut State, node: NodeId, name: &str, data: Bytes) {
        let size = data.len() as u64;
        if size > self.cfg.dram_capacity {
            // Too big for DRAM entirely; go straight to NVMe if it fits.
            if size <= self.cfg.nvme_capacity {
                self.insert_nvme(st, node, name, data);
            }
            return;
        }
        let clock = st.clock;
        let ni = node.index();
        // Remove any stale copy first (overwrite semantics).
        if let Some(old) = st.dram[ni].entries.remove(name) {
            st.dram[ni].used -= old.data.len() as u64;
        }
        // Evict LRU to NVMe until the object fits.
        while st.dram[ni].used + size > self.cfg.dram_capacity {
            let victim = st.dram[ni].lru_victim().expect("used > 0 implies an entry");
            let e = st.dram[ni].entries.remove(&victim).expect("victim present");
            st.dram[ni].used -= e.data.len() as u64;
            self.stats.lock().evictions_to_nvme += 1;
            self.metrics.spills.inc();
            self.metrics.evictions_dram.inc();
            self.metrics.evicted_bytes_dram.add(e.data.len() as u64);
            self.insert_nvme(st, node, &victim, e.data);
        }
        st.dram[ni].used += size;
        st.dram[ni].entries.insert(name.to_string(), Entry { data, last_access: clock });
        self.metrics.inserts_dram.inc();
        self.metrics.update_sizes(st);
    }

    fn insert_nvme(&self, st: &mut State, node: NodeId, name: &str, data: Bytes) {
        let size = data.len() as u64;
        if size > self.cfg.nvme_capacity {
            return; // only the backing store holds it
        }
        let clock = st.clock;
        let ni = node.index();
        if let Some(old) = st.nvme[ni].entries.remove(name) {
            st.nvme[ni].used -= old.data.len() as u64;
        }
        while st.nvme[ni].used + size > self.cfg.nvme_capacity {
            let victim = st.nvme[ni].lru_victim().expect("used > 0 implies an entry");
            let e = st.nvme[ni].entries.remove(&victim).expect("victim present");
            st.nvme[ni].used -= e.data.len() as u64;
            self.stats.lock().evictions_dropped += 1;
            self.metrics.evictions_nvme.inc();
            self.metrics.evicted_bytes_nvme.add(e.data.len() as u64);
        }
        st.nvme[ni].used += size;
        st.nvme[ni].entries.insert(name.to_string(), Entry { data, last_access: clock });
        self.metrics.inserts_nvme.inc();
        self.metrics.update_sizes(st);
    }

    /// Store an object with a user-provided placement hint (§3.2: the
    /// manager moves data "based on user-provided hints or
    /// operator-defined policies"). The hinted node overrides the policy;
    /// out-of-range hints fall back to [`Self::put`].
    pub fn put_with_hint(&self, from: RankId, name: &str, data: Bytes, hint: NodeId) -> f64 {
        if hint.index() >= self.cfg.cache_nodes {
            return self.put(from, name, data);
        }
        let size = data.len() as u64;
        let mut cost = self.backing.put(name, data.clone()).virtual_secs;
        let mut st = self.state.lock();
        st.clock += 1;
        st.placement_counter += 1;
        for ni in 0..self.cfg.cache_nodes {
            if let Some(e) = st.dram[ni].entries.remove(name) {
                st.dram[ni].used -= e.data.len() as u64;
            }
            if let Some(e) = st.nvme[ni].entries.remove(name) {
                st.nvme[ni].used -= e.data.len() as u64;
            }
        }
        cost += self.dram_transfer(from, hint, size);
        self.insert_dram(&mut st, hint, name, data);
        cost
    }

    /// Dynamically relocate a cached object to another node's DRAM
    /// ("the cache manager dynamically relocates data within the caching
    /// layer to optimize proximity to computation"). Returns the transfer
    /// cost, or `None` if the object is not cached anywhere or the target
    /// is not a cache node.
    pub fn relocate(&self, name: &str, to: NodeId) -> Option<f64> {
        if to.index() >= self.cfg.cache_nodes {
            return None;
        }
        let mut st = self.state.lock();
        st.clock += 1;
        // Find and remove the current copy.
        let mut found: Option<(usize, Bytes)> = None;
        for ni in 0..self.cfg.cache_nodes {
            if let Some(e) = st.dram[ni].entries.remove(name) {
                st.dram[ni].used -= e.data.len() as u64;
                found = Some((ni, e.data));
                break;
            }
            if let Some(e) = st.nvme[ni].entries.remove(name) {
                st.nvme[ni].used -= e.data.len() as u64;
                found = Some((ni, e.data));
                break;
            }
        }
        let (from_node, data) = found?;
        let size = data.len() as u64;
        // Node-to-node transfer cost (inter-node unless already there).
        let cost = if from_node == to.index() {
            0.0
        } else {
            self.net.inter_latency + size as f64 / self.net.inter_bandwidth
        };
        self.insert_dram(&mut st, to, name, data);
        Some(cost)
    }

    /// Fetch an object. Searches tiers cheapest-first, falls back to the
    /// backing store (re-populating the cache near the requester), and
    /// returns `None` only on a total miss.
    pub fn get(&self, from: RankId, name: &str) -> Option<(Bytes, CacheOutcome)> {
        let my_node = self.topo.node_of(from);
        let mut st = self.state.lock();
        st.clock += 1;
        let clock = st.clock;

        // Tier search order: local DRAM, remote DRAM, local NVMe, remote NVMe.
        let my = my_node.index();
        let node_order: Vec<usize> = std::iter::once(my)
            .chain((0..self.cfg.cache_nodes).filter(|&n| n != my))
            .filter(|&n| n < self.cfg.cache_nodes)
            .collect();

        for &ni in &node_order {
            if let Some(e) = st.dram[ni].entries.get_mut(name) {
                e.last_access = clock;
                let data = e.data.clone();
                let local = ni == my;
                let tier = if local { Tier::LocalDram } else { Tier::RemoteDram };
                let cost = self.dram_transfer(from, NodeId(ni as u32), data.len() as u64);
                let mut stats = self.stats.lock();
                if local {
                    stats.local_dram_hits += 1;
                } else {
                    stats.remote_dram_hits += 1;
                }
                self.metrics.tier_hit(tier);
                return Some((data, CacheOutcome { tier, virtual_secs: cost }));
            }
        }
        for &ni in &node_order {
            if let Some(e) = st.nvme[ni].entries.get_mut(name) {
                e.last_access = clock;
                let data = e.data.clone();
                let local = ni == my;
                let tier = if local { Tier::LocalNvme } else { Tier::RemoteNvme };
                let cost = self.nvme_transfer(from, NodeId(ni as u32), data.len() as u64);
                {
                    // Scope the stats guard: insert_dram below may need it
                    // for eviction accounting.
                    let mut stats = self.stats.lock();
                    if local {
                        stats.local_nvme_hits += 1;
                    } else {
                        stats.remote_nvme_hits += 1;
                    }
                    self.metrics.tier_hit(tier);
                }
                // Promote hot NVMe objects back to DRAM on the serving node.
                let promoted = data.clone();
                self.insert_dram(&mut st, NodeId(ni as u32), name, promoted);
                return Some((data, CacheOutcome { tier, virtual_secs: cost }));
            }
        }

        // Backing store: authoritative fallback + re-population.
        let fetched = self.backing.get(name);
        match fetched.value {
            Some(data) => {
                self.stats.lock().backing_fetches += 1;
                self.metrics.tier_hit(Tier::Backing);
                let free: Vec<u64> =
                    st.dram.iter().map(|t| self.cfg.dram_capacity.saturating_sub(t.used)).collect();
                st.placement_counter += 1;
                let counter = st.placement_counter - 1;
                let node = self.cfg.policy.place(my_node, &free, counter);
                self.insert_dram(&mut st, node, name, data.clone());
                Some((
                    data,
                    CacheOutcome { tier: Tier::Backing, virtual_secs: fetched.virtual_secs },
                ))
            }
            None => {
                self.stats.lock().total_misses += 1;
                self.metrics.misses.inc();
                None
            }
        }
    }

    /// Locality query: which cache nodes hold the object, and in which
    /// tier. Schedulers use this to co-locate computation with data (§3.2).
    pub fn locality(&self, name: &str) -> Vec<(NodeId, Tier)> {
        let st = self.state.lock();
        let mut out = Vec::new();
        for ni in 0..self.cfg.cache_nodes {
            if st.dram[ni].entries.contains_key(name) {
                out.push((NodeId(ni as u32), Tier::LocalDram));
            }
            if st.nvme[ni].entries.contains_key(name) {
                out.push((NodeId(ni as u32), Tier::LocalNvme));
            }
        }
        out
    }

    /// Metadata for a cached object, if cached anywhere.
    pub fn meta(&self, name: &str) -> Option<ObjectMeta> {
        let st = self.state.lock();
        for ni in 0..self.cfg.cache_nodes {
            if let Some(e) = st.dram[ni].entries.get(name).or_else(|| st.nvme[ni].entries.get(name))
            {
                return Some(ObjectMeta {
                    name: name.to_string(),
                    id: object_id(name),
                    size: e.data.len() as u64,
                    node: NodeId(ni as u32),
                });
            }
        }
        None
    }

    /// Simulate a cache-node failure: its DRAM and NVMe contents vanish.
    /// Authoritative copies in the backing store survive, so subsequent
    /// gets re-populate.
    pub fn fail_node(&self, node: NodeId) {
        let mut st = self.state.lock();
        let ni = node.index();
        if ni < self.cfg.cache_nodes {
            st.dram[ni] = TierState::new();
            st.nvme[ni] = TierState::new();
        }
        self.metrics.update_sizes(&st);
    }

    /// Drop an object from every cache tier (backing copy untouched).
    pub fn invalidate(&self, name: &str) {
        let mut st = self.state.lock();
        for ni in 0..self.cfg.cache_nodes {
            if let Some(e) = st.dram[ni].entries.remove(name) {
                st.dram[ni].used -= e.data.len() as u64;
            }
            if let Some(e) = st.nvme[ni].entries.remove(name) {
                st.nvme[ni].used -= e.data.len() as u64;
            }
        }
        self.metrics.update_sizes(&st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(dram: u64, nvme: u64) -> CacheManager {
        CacheManager::new(
            Topology::new(4, 2),
            NetworkModel::slingshot(),
            CacheConfig::new(2, dram, nvme),
            BackingStore::default_store(),
        )
    }

    fn payload(n: usize, tag: u8) -> Bytes {
        Bytes::from(vec![tag; n])
    }

    #[test]
    fn put_then_local_get_hits_dram() {
        let c = cache(1 << 20, 1 << 22);
        // Rank 0 lives on node 0, which is a cache node.
        c.put(RankId(0), "vina/c1", payload(1000, 1));
        let (data, out) = c.get(RankId(0), "vina/c1").unwrap();
        assert_eq!(data.len(), 1000);
        assert_eq!(out.tier, Tier::LocalDram);
        assert_eq!(c.stats().local_dram_hits, 1);
    }

    #[test]
    fn remote_rank_hits_remote_dram() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(1000, 2));
        // Rank 6 is on node 3 (not a cache node) → remote DRAM.
        let (_, out) = c.get(RankId(6), "obj").unwrap();
        assert_eq!(out.tier, Tier::RemoteDram);
        // Remote access costs more than local.
        let (_, local) = c.get(RankId(0), "obj").unwrap();
        assert!(out.virtual_secs > local.virtual_secs);
    }

    #[test]
    fn dram_pressure_spills_to_nvme() {
        // DRAM holds 2 objects of 1000; the third put evicts the LRU.
        let c = cache(2048, 1 << 20);
        c.put(RankId(0), "a", payload(1000, 1));
        c.put(RankId(0), "b", payload(1000, 2));
        c.put(RankId(0), "c", payload(1000, 3));
        assert!(c.stats().evictions_to_nvme >= 1);
        // "a" (LRU) now serves from NVMe.
        let (_, out) = c.get(RankId(0), "a").unwrap();
        assert_eq!(out.tier, Tier::LocalNvme);
    }

    #[test]
    fn nvme_hit_promotes_back_to_dram() {
        let c = cache(2048, 1 << 20);
        c.put(RankId(0), "a", payload(1000, 1));
        c.put(RankId(0), "b", payload(1000, 2));
        c.put(RankId(0), "c", payload(1000, 3)); // spills a
        let (_, first) = c.get(RankId(0), "a").unwrap();
        assert_eq!(first.tier, Tier::LocalNvme);
        let (_, second) = c.get(RankId(0), "a").unwrap();
        assert_eq!(second.tier, Tier::LocalDram, "promoted on first NVMe hit");
    }

    #[test]
    fn total_eviction_falls_back_to_backing_and_repopulates() {
        // Tiny tiers: everything cascades out.
        let c = cache(1000, 1000);
        c.put(RankId(0), "a", payload(900, 1));
        c.put(RankId(0), "b", payload(900, 2)); // a → nvme
        c.put(RankId(0), "c", payload(900, 3)); // b → nvme, a dropped
        let (data, out) = c.get(RankId(0), "a").unwrap();
        assert_eq!(out.tier, Tier::Backing);
        assert_eq!(data.len(), 900);
        // Re-populated: next access is a cache hit.
        let (_, again) = c.get(RankId(0), "a").unwrap();
        assert_ne!(again.tier, Tier::Backing);
    }

    #[test]
    fn tier_costs_are_ordered() {
        let big = 1 << 22; // 4 MiB so bandwidth terms dominate latency noise
        let c = cache(1 << 23, 1 << 24);
        c.put(RankId(0), "x", payload(big, 7));
        let (_, local_dram) = c.get(RankId(0), "x").unwrap();
        let (_, remote_dram) = c.get(RankId(7), "x").unwrap();
        assert!(local_dram.virtual_secs < remote_dram.virtual_secs);
        // Force NVMe service.
        let c2 = cache(1, 1 << 24);
        c2.put(RankId(0), "x", payload(big, 7));
        let (_, nvme) = c2.get(RankId(0), "x").unwrap();
        assert_eq!(nvme.tier, Tier::LocalNvme);
        assert!(
            remote_dram.virtual_secs < nvme.virtual_secs,
            "{} < {}",
            remote_dram.virtual_secs,
            nvme.virtual_secs
        );
        // Backing slowest.
        let c3 = cache(1, 1);
        c3.put(RankId(0), "x", payload(big, 7));
        let (_, back) = c3.get(RankId(0), "x").unwrap();
        assert_eq!(back.tier, Tier::Backing);
        assert!(nvme.virtual_secs < back.virtual_secs);
    }

    #[test]
    fn locality_reports_holders() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(100, 1));
        let loc = c.locality("obj");
        assert_eq!(loc, vec![(NodeId(0), Tier::LocalDram)]);
        assert!(c.locality("ghost").is_empty());
        let meta = c.meta("obj").unwrap();
        assert_eq!(meta.size, 100);
        assert_eq!(meta.node, NodeId(0));
        assert_eq!(meta.id, object_id("obj"));
    }

    #[test]
    fn node_failure_loses_cache_not_data() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(100, 1));
        c.fail_node(NodeId(0));
        assert!(c.locality("obj").is_empty());
        // Still retrievable via the backing store, then re-cached.
        let (_, out) = c.get(RankId(0), "obj").unwrap();
        assert_eq!(out.tier, Tier::Backing);
        assert!(!c.locality("obj").is_empty(), "re-populated");
    }

    #[test]
    fn total_miss_returns_none() {
        let c = cache(1 << 20, 1 << 22);
        assert!(c.get(RankId(0), "never-stored").is_none());
        assert_eq!(c.stats().total_misses, 1);
    }

    #[test]
    fn invalidate_drops_cached_copy_only() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(100, 1));
        c.invalidate("obj");
        assert!(c.locality("obj").is_empty());
        let (_, out) = c.get(RankId(0), "obj").unwrap();
        assert_eq!(out.tier, Tier::Backing);
    }

    #[test]
    fn oversized_object_skips_dram() {
        let c = cache(100, 1 << 20);
        c.put(RankId(0), "big", payload(5000, 1));
        let (_, out) = c.get(RankId(0), "big").unwrap();
        assert_eq!(out.tier, Tier::LocalNvme);
    }

    #[test]
    fn hit_rate_reflects_reuse() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "a", payload(10, 1));
        c.get(RankId(0), "a").unwrap();
        c.get(RankId(0), "a").unwrap();
        c.invalidate("a");
        c.get(RankId(0), "a").unwrap(); // backing fetch
        let s = c.stats();
        assert_eq!(s.cache_hits(), 2);
        assert_eq!(s.backing_fetches, 1);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn put_with_hint_overrides_policy() {
        let c = cache(1 << 20, 1 << 22);
        // Rank 0 is on node 0, but the user hints node 1.
        c.put_with_hint(RankId(0), "obj", payload(100, 1), NodeId(1));
        assert_eq!(c.locality("obj"), vec![(NodeId(1), Tier::LocalDram)]);
        // Out-of-range hints degrade to policy placement.
        c.put_with_hint(RankId(0), "obj2", payload(100, 2), NodeId(9));
        assert_eq!(c.locality("obj2"), vec![(NodeId(0), Tier::LocalDram)]);
    }

    #[test]
    fn relocate_moves_the_cached_copy() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "obj", payload(1000, 3));
        assert_eq!(c.locality("obj"), vec![(NodeId(0), Tier::LocalDram)]);
        let cost = c.relocate("obj", NodeId(1)).expect("cached object relocates");
        assert!(cost > 0.0);
        assert_eq!(c.locality("obj"), vec![(NodeId(1), Tier::LocalDram)]);
        // Data unchanged after the move.
        let (data, out) = c.get(RankId(2), "obj").unwrap(); // rank 2 = node 1
        assert_eq!(out.tier, Tier::LocalDram);
        assert_eq!(data.len(), 1000);
        // Relocating to the same node is free; unknown objects are None.
        assert_eq!(c.relocate("obj", NodeId(1)), Some(0.0));
        assert_eq!(c.relocate("ghost", NodeId(0)), None);
        assert_eq!(c.relocate("obj", NodeId(9)), None);
    }

    #[test]
    fn obs_metrics_track_tier_activity() {
        let c = cache(2048, 1 << 20);
        c.put(RankId(0), "a", payload(1000, 1));
        c.put(RankId(0), "b", payload(1000, 2));
        c.put(RankId(0), "c", payload(1000, 3)); // spills LRU ("a") to NVMe
        c.get(RankId(0), "a").unwrap(); // NVMe hit (promotes "a", spilling "b")
        c.get(RankId(0), "a").unwrap(); // DRAM hit
        c.get(RankId(6), "a").unwrap(); // remote DRAM hit
        c.get(RankId(0), "b").unwrap(); // NVMe hit
        assert!(c.get(RankId(0), "ghost").is_none());

        let snap = c.metrics().snapshot();
        assert_eq!(snap.counter("ids_cache_lookup_hits_total", "local_dram"), 1);
        assert_eq!(snap.counter("ids_cache_lookup_hits_total", "remote_dram"), 1);
        assert_eq!(snap.counter("ids_cache_lookup_hits_total", "local_nvme"), 2);
        assert_eq!(snap.counter("ids_cache_lookup_misses_total", ""), 1);
        assert!(snap.counter("ids_cache_spills_total", "") >= 1);
        assert_eq!(
            snap.counter("ids_cache_spills_total", ""),
            snap.counter("ids_cache_evictions_total", "dram")
        );
        assert!(snap.counter("ids_cache_evicted_bytes_total", "dram") >= 1000);
        assert!(snap.counter("ids_cache_inserts_total", "dram") >= 3);

        // Gauges reflect resident bytes, consistent with stats.
        let dram = snap
            .gauges
            .iter()
            .find(|(k, _)| k.name == "ids_cache_size_bytes" && k.label_value == "dram")
            .unwrap()
            .1;
        assert!(*dram > 0 && *dram <= 2048 * 2);

        // Prometheus exposition carries the tier counters.
        let text = c.metrics().render_prometheus();
        assert!(text.contains("ids_cache_lookup_hits_total{tier=\"local_dram\"} 1"));
        assert!(text.contains("ids_cache_lookup_hits_total{tier=\"local_nvme\"} 2"));
        assert!(text.contains("# TYPE ids_cache_size_bytes gauge"));
    }

    #[test]
    fn overwrite_updates_value_and_accounting() {
        let c = cache(1 << 20, 1 << 22);
        c.put(RankId(0), "k", payload(100, 1));
        c.put(RankId(0), "k", payload(200, 2));
        let (data, _) = c.get(RankId(0), "k").unwrap();
        assert_eq!(data.len(), 200);
        assert_eq!(data[0], 2);
        let meta = c.meta("k").unwrap();
        assert_eq!(meta.size, 200);
    }
}
