//! Cache inspector: a point-in-time, human- and machine-readable view
//! of the tiered store (à la an edge cache's inspector endpoint).
//!
//! [`crate::CacheManager::inspect`] assembles a [`CacheInspection`]:
//! per-node per-tier occupancy plus the spill/promote/admission/warm
//! -restart tallies. `render()` produces the text the EXPLAIN
//! `cache tiers:` block and the service debug surface print;
//! `to_json()` hand-rolls the JSON the bench dumps (no serde_json in
//! the vendored dependency set).

use crate::evict::EvictionKind;
use serde::{Deserialize, Serialize};

/// Occupancy of one tier on one node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierInspection {
    /// Cache-node index.
    pub node: usize,
    /// Tier label: "dram" or "nvme".
    pub tier: String,
    /// Configured capacity in bytes.
    pub capacity_bytes: u64,
    /// Bytes resident.
    pub occupied_bytes: u64,
    /// Resident entry count.
    pub entries: u64,
    /// Entries retained across a restart and not yet re-verified.
    pub unverified: u64,
    /// Eviction victims popped over the store's lifetime.
    pub victim_pops: u64,
}

/// A full cache-tier snapshot: occupancy plus movement counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheInspection {
    /// Eviction policy in force.
    pub eviction: EvictionKind,
    /// Per-node per-tier occupancy, DRAM rows first, node order within.
    pub tiers: Vec<TierInspection>,
    /// Tier hits: local DRAM, remote DRAM, local NVMe, remote NVMe.
    pub hits: [u64; 4],
    /// Backing-store fetches.
    pub backing_fetches: u64,
    /// Total misses (nowhere, not even backing).
    pub misses: u64,
    /// DRAM→NVMe spills.
    pub spills: u64,
    /// NVMe→DRAM promotes on reuse.
    pub promotes: u64,
    /// Spills skipped because the admission filter called the victim a
    /// one-hit wonder under NVMe pressure.
    pub admission_rejects: u64,
    /// NVMe entries retained across node restarts (warm restart).
    pub warm_retained: u64,
    /// Retained entries re-verified so far (lazy CRC check or scrub).
    pub warm_verified: u64,
}

impl CacheInspection {
    /// Cache hit rate over accesses that found the object somewhere.
    pub fn hit_rate(&self) -> f64 {
        let hits: u64 = self.hits.iter().sum();
        let total = hits + self.backing_fetches;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Total bytes resident in tiers labelled `tier`.
    pub fn occupied(&self, tier: &str) -> u64 {
        self.tiers.iter().filter(|t| t.tier == tier).map(|t| t.occupied_bytes).sum()
    }

    /// Human-readable multi-line summary (EXPLAIN / debug surface).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("eviction policy: {}\n", self.eviction.label()));
        for t in &self.tiers {
            let pct = if t.capacity_bytes == 0 {
                0.0
            } else {
                t.occupied_bytes as f64 / t.capacity_bytes as f64 * 100.0
            };
            out.push_str(&format!(
                "node {} {}: {}/{} bytes ({pct:.0}%), {} entries",
                t.node, t.tier, t.occupied_bytes, t.capacity_bytes, t.entries
            ));
            if t.unverified > 0 {
                out.push_str(&format!(", {} awaiting re-verification", t.unverified));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "hits: {} local-dram, {} remote-dram, {} local-nvme, {} remote-nvme, \
             {} backing, {} misses ({:.1}% hit rate)\n",
            self.hits[0],
            self.hits[1],
            self.hits[2],
            self.hits[3],
            self.backing_fetches,
            self.misses,
            self.hit_rate() * 100.0
        ));
        out.push_str(&format!(
            "movement: {} spills, {} promotes, {} admission rejects\n",
            self.spills, self.promotes, self.admission_rejects
        ));
        if self.warm_retained > 0 {
            out.push_str(&format!(
                "warm restart: {} entries retained, {} re-verified\n",
                self.warm_retained, self.warm_verified
            ));
        }
        out
    }

    /// Hand-rolled JSON object (stable key order) for the bench dumps.
    pub fn to_json(&self) -> String {
        let tiers: Vec<String> = self
            .tiers
            .iter()
            .map(|t| {
                format!(
                    "{{\"node\":{},\"tier\":\"{}\",\"capacity_bytes\":{},\
                     \"occupied_bytes\":{},\"entries\":{},\"unverified\":{},\
                     \"victim_pops\":{}}}",
                    t.node,
                    t.tier,
                    t.capacity_bytes,
                    t.occupied_bytes,
                    t.entries,
                    t.unverified,
                    t.victim_pops
                )
            })
            .collect();
        format!(
            "{{\"eviction\":\"{}\",\"tiers\":[{}],\"hits\":[{},{},{},{}],\
             \"backing_fetches\":{},\"misses\":{},\"spills\":{},\"promotes\":{},\
             \"admission_rejects\":{},\"warm_retained\":{},\"warm_verified\":{},\
             \"hit_rate\":{:.6}}}",
            self.eviction.label(),
            tiers.join(","),
            self.hits[0],
            self.hits[1],
            self.hits[2],
            self.hits[3],
            self.backing_fetches,
            self.misses,
            self.spills,
            self.promotes,
            self.admission_rejects,
            self.warm_retained,
            self.warm_verified,
            self.hit_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CacheInspection {
        CacheInspection {
            eviction: EvictionKind::S3Fifo,
            tiers: vec![
                TierInspection {
                    node: 0,
                    tier: "dram".into(),
                    capacity_bytes: 1000,
                    occupied_bytes: 600,
                    entries: 3,
                    unverified: 0,
                    victim_pops: 2,
                },
                TierInspection {
                    node: 0,
                    tier: "nvme".into(),
                    capacity_bytes: 4000,
                    occupied_bytes: 2000,
                    entries: 5,
                    unverified: 4,
                    victim_pops: 0,
                },
            ],
            hits: [6, 1, 2, 0],
            backing_fetches: 1,
            misses: 2,
            spills: 4,
            promotes: 2,
            admission_rejects: 1,
            warm_retained: 4,
            warm_verified: 1,
        }
    }

    #[test]
    fn render_summarizes_tiers_and_movement() {
        let text = sample().render();
        assert!(text.contains("eviction policy: s3fifo"), "{text}");
        assert!(text.contains("node 0 dram: 600/1000 bytes (60%), 3 entries"), "{text}");
        assert!(text.contains("4 awaiting re-verification"), "{text}");
        assert!(text.contains("4 spills, 2 promotes, 1 admission rejects"), "{text}");
        assert!(text.contains("warm restart: 4 entries retained, 1 re-verified"), "{text}");
    }

    #[test]
    fn hit_rate_and_occupancy_aggregate() {
        let i = sample();
        assert!((i.hit_rate() - 9.0 / 10.0).abs() < 1e-12);
        assert_eq!(i.occupied("dram"), 600);
        assert_eq!(i.occupied("nvme"), 2000);
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"eviction\":\"s3fifo\"",
            "\"occupied_bytes\":600",
            "\"spills\":4",
            "\"promotes\":2",
            "\"admission_rejects\":1",
            "\"warm_retained\":4",
            "\"hit_rate\":0.900000",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
