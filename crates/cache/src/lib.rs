//! # ids-cache — the globally shared, multi-tier, client-side cache
//!
//! Section 3 of the paper introduces a cluster-wide cache that fronts
//! persistent storage (DAOS/Lustre) with node-local DRAM and NVMe,
//! accessed over RDMA via OpenFAM, and used to stash molecular-docking
//! outputs so repeated queries skip re-simulation (Table 2: 5–15×
//! end-to-end improvement). This crate implements that design:
//!
//! * [`fam`] — an OpenFAM-style remote-memory layer: regions allocated on
//!   memory servers, descriptors, `get`/`put`/compare-and-swap, with an
//!   RDMA cost model (local DRAM ≪ remote DRAM ≪ NVMe ≪ backing store).
//! * [`backing`] — the authoritative persistent object store standing in
//!   for DAOS/Lustre; cache nodes can always re-populate from it after a
//!   failure, so losing a cache node loses no data.
//! * [`manager`] — the Cache Manager (§3.2): per-node DRAM tiers with NVMe
//!   spill, policy-driven placement, locality queries that let schedulers
//!   co-locate computation with data, per-tier hit/miss statistics, and
//!   node-failure handling.
//! * [`tier`] — the tier stores behind the [`tier::TierEngine`] trait:
//!   the single home of per-tier capacity/occupancy accounting, entry
//!   checksums, and the warm-restart verified flag.
//! * [`evict`] — eviction policies ([`evict::EvictionKind`]): LRU over an
//!   ordered recency index, scan-resistant S3-FIFO, and TinyLFU.
//! * [`admit`] — the count-min frequency sketch gating NVMe admission and
//!   the TinyLFU eviction duel.
//! * [`inspect`] — the cache inspector: per-tier occupancy and movement
//!   counters rendered into EXPLAIN and dumped as JSON by the benches.
//! * [`object`] — named cache objects addressed by name and content hash
//!   (the TR-Cache object-ID scheme the paper describes).
//! * [`policy`] — placement policies (local-first, round-robin,
//!   capacity-weighted) exercised by the ablation benches.
//! * [`typed`] — typed intermediate-solution objects: the versioned wire
//!   format the service layer uses to share per-rank plan checkpoints
//!   between clients (semantic result reuse).

pub mod admit;
pub mod backing;
pub mod error;
pub mod evict;
pub mod fam;
pub mod inspect;
pub mod manager;
pub mod object;
pub mod policy;
pub mod tier;
pub mod typed;

pub use admit::FrequencySketch;
pub use backing::{BackingStore, VerifiedRead};
pub use error::CacheError;
pub use evict::EvictionKind;
pub use fam::{FamError, FamLayer, FamRegionId};
pub use inspect::{CacheInspection, TierInspection};
pub use manager::{
    AntiEntropyReport, CacheConfig, CacheManager, CacheOutcome, CacheStats, FaultTolerance, Tier,
};
pub use object::{crc32, object_id, ObjectMeta};
pub use policy::PlacementPolicy;
pub use tier::{StoredEntry, TierEngine, TierKind, TierStore};
pub use typed::{IntermediateSolutions, TypedError, TypedSolutionSet};
