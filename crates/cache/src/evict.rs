//! Eviction policies for the tier stores (see `tier.rs`).
//!
//! Three policies are selectable via [`crate::CacheConfig::eviction`]:
//!
//! * [`EvictionKind::Lru`] — classic least-recently-used over an ordered
//!   recency index ([`OrderedRecency`]), replacing the old O(n) full-map
//!   scan per eviction with an O(log n) `BTreeSet` lookup. Victim order
//!   is *identical* to the old scan (`min_by_key((last_access, name))`),
//!   which the proptests assert.
//! * [`EvictionKind::S3Fifo`] — the S3-FIFO scan-resistant policy: a
//!   small probationary FIFO, a main FIFO, and a ghost queue of recently
//!   evicted names. One-hit wonders flow through the small queue and out;
//!   an object re-referenced while in small (or remembered by the ghost)
//!   is promoted to main, so a sequential scan cannot flush the resident
//!   hot set.
//! * [`EvictionKind::TinyLfu`] — LRU victim selection plus a frequency
//!   -sketch admission gate (see `admit.rs`): a candidate only displaces
//!   the LRU victim when its estimated frequency is strictly higher, so
//!   cold scan traffic never erodes a frequently reused resident set.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Which eviction policy a tier store runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EvictionKind {
    /// Least-recently-used (the historical default).
    #[default]
    Lru,
    /// S3-FIFO: small/main/ghost queues, scan-resistant.
    S3Fifo,
    /// TinyLFU: LRU victims gated by a count-min frequency sketch.
    TinyLfu,
}

impl EvictionKind {
    /// Stable lowercase label for metrics, JSON dumps, and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            EvictionKind::Lru => "lru",
            EvictionKind::S3Fifo => "s3fifo",
            EvictionKind::TinyLfu => "tinylfu",
        }
    }

    /// Parse a label produced by [`EvictionKind::label`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lru" => Some(EvictionKind::Lru),
            "s3fifo" => Some(EvictionKind::S3Fifo),
            "tinylfu" => Some(EvictionKind::TinyLfu),
            _ => None,
        }
    }
}

/// Ordered recency index shared by the LRU and TinyLFU policies: an
/// intrusive `(stamp, name)` set whose first element is always the next
/// victim, plus a name → stamp map for O(log n) re-stamping on access.
///
/// Victim order matches the historical full-map scan exactly: the old
/// code picked `min_by_key((last_access, name))`, and `BTreeSet`'s
/// lexicographic ordering over `(u64, String)` is that same order.
#[derive(Debug, Default)]
pub struct OrderedRecency {
    by_stamp: BTreeSet<(u64, String)>,
    stamps: HashMap<String, u64>,
}

impl OrderedRecency {
    /// Record an insert or access of `name` at logical time `stamp`.
    pub fn touch(&mut self, name: &str, stamp: u64) {
        if let Some(old) = self.stamps.insert(name.to_string(), stamp) {
            self.by_stamp.remove(&(old, name.to_string()));
        }
        self.by_stamp.insert((stamp, name.to_string()));
    }

    /// Forget `name` entirely (evicted or explicitly removed).
    pub fn remove(&mut self, name: &str) {
        if let Some(old) = self.stamps.remove(name) {
            self.by_stamp.remove(&(old, name.to_string()));
        }
    }

    /// The least-recently-used name, if any.
    pub fn victim(&self) -> Option<&str> {
        self.by_stamp.iter().next().map(|(_, n)| n.as_str())
    }

    /// Number of tracked names.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True when no names are tracked.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Drop all tracked names.
    pub fn clear(&mut self) {
        self.by_stamp.clear();
        self.stamps.clear();
    }
}

/// S3-FIFO queue state. Frequencies are capped at 3 (two bits in the
/// original design); the ghost queue is bounded to the resident
/// population (the original design sizes it to the main queue), so a
/// scan larger than the cache outruns the ghost window and its entries
/// re-enter through probation instead of resurrecting into main.
#[derive(Debug, Default)]
pub struct S3FifoState {
    small: VecDeque<String>,
    main: VecDeque<String>,
    ghost: VecDeque<String>,
    ghost_set: HashSet<String>,
    freq: HashMap<String, u8>,
}

impl S3FifoState {
    const FREQ_CAP: u8 = 3;

    /// Target size of the small probationary queue: ~10% of residents.
    fn small_target(&self) -> usize {
        ((self.small.len() + self.main.len()) / 10).max(1)
    }

    fn ghost_cap(&self) -> usize {
        (self.small.len() + self.main.len()).max(16)
    }

    fn remember_ghost(&mut self, name: String) {
        if self.ghost_set.insert(name.clone()) {
            self.ghost.push_back(name);
        }
        let cap = self.ghost_cap();
        while self.ghost.len() > cap {
            if let Some(old) = self.ghost.pop_front() {
                self.ghost_set.remove(&old);
            }
        }
    }

    fn on_insert(&mut self, name: &str) {
        self.freq.insert(name.to_string(), 0);
        if self.ghost_set.remove(name) {
            // Recently evicted and back again: skip probation.
            self.ghost.retain(|n| n != name);
            self.main.push_back(name.to_string());
        } else {
            self.small.push_back(name.to_string());
        }
    }

    fn on_access(&mut self, name: &str) {
        if let Some(f) = self.freq.get_mut(name) {
            *f = (*f + 1).min(Self::FREQ_CAP);
        }
    }

    fn on_remove(&mut self, name: &str) {
        if self.freq.remove(name).is_some() {
            self.small.retain(|n| n != name);
            self.main.retain(|n| n != name);
        }
    }

    /// Pick the next eviction victim. Small-queue victims that were
    /// re-referenced during probation graduate to main instead of being
    /// evicted; main-queue victims get [`Self::FREQ_CAP`] "second
    /// chances" (decrement and requeue) before going out.
    fn pop(&mut self) -> Option<String> {
        loop {
            if !self.small.is_empty() && self.small.len() >= self.small_target() {
                let name = self.small.pop_front()?;
                if !self.freq.contains_key(&name) {
                    continue; // stale: removed out of band
                }
                if self.freq.get(&name).copied().unwrap_or(0) > 1 {
                    self.main.push_back(name);
                    continue;
                }
                self.freq.remove(&name);
                self.remember_ghost(name.clone());
                return Some(name);
            }
            let name = self.main.pop_front().or_else(|| self.small.pop_front())?;
            if !self.freq.contains_key(&name) {
                continue;
            }
            let f = self.freq.get(&name).copied().unwrap_or(0);
            if f > 0 {
                self.freq.insert(name.clone(), f - 1);
                self.main.push_back(name);
                continue;
            }
            self.freq.remove(&name);
            self.remember_ghost(name.clone());
            return Some(name);
        }
    }

    fn clear(&mut self) {
        self.small.clear();
        self.main.clear();
        self.ghost.clear();
        self.ghost_set.clear();
        self.freq.clear();
    }
}

/// Per-tier policy state: the bookkeeping a [`EvictionKind`] needs to
/// pick victims without scanning the entry map.
#[derive(Debug)]
pub enum PolicyState {
    /// LRU and TinyLFU both select LRU victims via the ordered index;
    /// TinyLFU's admission gate lives in the cache manager (it needs the
    /// global frequency sketch).
    Recency(OrderedRecency),
    /// S3-FIFO queue state.
    S3Fifo(S3FifoState),
}

impl PolicyState {
    /// Fresh state for `kind`.
    pub fn new(kind: EvictionKind) -> Self {
        match kind {
            EvictionKind::Lru | EvictionKind::TinyLfu => {
                PolicyState::Recency(OrderedRecency::default())
            }
            EvictionKind::S3Fifo => PolicyState::S3Fifo(S3FifoState::default()),
        }
    }

    /// Record a fresh insert of `name` at logical time `stamp`.
    pub fn on_insert(&mut self, name: &str, stamp: u64) {
        match self {
            PolicyState::Recency(r) => r.touch(name, stamp),
            PolicyState::S3Fifo(s) => s.on_insert(name),
        }
    }

    /// Record an access of a resident `name` at logical time `stamp`.
    pub fn on_access(&mut self, name: &str, stamp: u64) {
        match self {
            PolicyState::Recency(r) => r.touch(name, stamp),
            PolicyState::S3Fifo(s) => s.on_access(name),
        }
    }

    /// Forget `name` (eviction, overwrite, invalidation).
    pub fn on_remove(&mut self, name: &str) {
        match self {
            PolicyState::Recency(r) => r.remove(name),
            PolicyState::S3Fifo(s) => s.on_remove(name),
        }
    }

    /// Pick and forget the next victim.
    pub fn pop_victim(&mut self) -> Option<String> {
        match self {
            PolicyState::Recency(r) => {
                let name = r.victim()?.to_string();
                r.remove(&name);
                Some(name)
            }
            PolicyState::S3Fifo(s) => s.pop(),
        }
    }

    /// Peek at the next victim without forgetting it (advisory only for
    /// S3-FIFO, exact for the recency index).
    pub fn peek_victim(&self) -> Option<&str> {
        match self {
            PolicyState::Recency(r) => r.victim(),
            PolicyState::S3Fifo(s) => {
                if !s.small.is_empty() && s.small.len() >= s.small_target() {
                    s.small.front().map(|n| n.as_str())
                } else {
                    s.main.front().or_else(|| s.small.front()).map(|n| n.as_str())
                }
            }
        }
    }

    /// Drop all state.
    pub fn clear(&mut self) {
        match self {
            PolicyState::Recency(r) => r.clear(),
            PolicyState::S3Fifo(s) => s.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_recency_matches_min_by_key_scan() {
        let mut idx = OrderedRecency::default();
        let mut naive: HashMap<String, u64> = HashMap::new();
        // Deterministic pseudo-random op sequence.
        let mut x = 0x9e3779b97f4a7c15u64;
        for step in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let name = format!("k{}", x % 17);
            if x.is_multiple_of(5) {
                idx.remove(&name);
                naive.remove(&name);
            } else {
                idx.touch(&name, step);
                naive.insert(name, step);
            }
            let expect =
                naive.iter().min_by_key(|(n, s)| (**s, (*n).clone())).map(|(n, _)| n.clone());
            assert_eq!(idx.victim().map(|s| s.to_string()), expect, "step {step}");
        }
    }

    #[test]
    fn s3fifo_protects_rereferenced_entries_from_scans() {
        let mut s = S3FifoState::default();
        // A hot object accessed repeatedly...
        s.on_insert("hot");
        s.on_access("hot");
        s.on_access("hot");
        // ...followed by a scan of one-hit wonders.
        for i in 0..20 {
            s.on_insert(&format!("scan{i}"));
        }
        // Evict 20 entries: every victim must be scan traffic.
        for _ in 0..20 {
            let v = s.pop().expect("victims available");
            assert_ne!(v, "hot", "scan must not flush the hot entry");
        }
        assert!(s.freq.contains_key("hot"), "hot survives the scan");
    }

    #[test]
    fn s3fifo_ghost_resurrections_skip_probation() {
        let mut s = S3FifoState::default();
        s.on_insert("a");
        let v = s.pop().expect("a evicts");
        assert_eq!(v, "a");
        assert!(s.ghost_set.contains("a"));
        s.on_insert("a");
        assert!(s.main.contains(&"a".to_string()), "ghost hit re-enters main");
        assert!(!s.ghost_set.contains("a"));
    }

    #[test]
    fn s3fifo_pop_terminates_when_everything_is_hot() {
        let mut s = S3FifoState::default();
        for i in 0..8 {
            let n = format!("k{i}");
            s.on_insert(&n);
            for _ in 0..5 {
                s.on_access(&n);
            }
        }
        // Even with every frequency saturated, pops terminate and drain.
        for _ in 0..8 {
            assert!(s.pop().is_some());
        }
        assert!(s.pop().is_none());
    }

    #[test]
    fn eviction_kind_labels_round_trip() {
        for kind in [EvictionKind::Lru, EvictionKind::S3Fifo, EvictionKind::TinyLfu] {
            assert_eq!(EvictionKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(EvictionKind::parse("mru"), None);
        assert_eq!(EvictionKind::default(), EvictionKind::Lru);
    }
}
