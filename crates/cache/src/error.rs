//! Unified cache-layer error type.
//!
//! Every fallible path in the cache — FAM faults, node-down fencing,
//! per-get deadlines, exhausted retries — funnels into [`CacheError`],
//! so callers handle one type and can decide between failing the query
//! and degrading gracefully (falling back to recomputation).

use crate::fam::FamError;
use ids_simrt::topology::NodeId;

/// Errors surfaced by [`crate::CacheManager`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    /// An underlying FAM operation failed (non-retryable or unretried).
    Fam(FamError),
    /// The only node that could serve the request is down and fallback
    /// to the backing store was disabled.
    NodeDown {
        /// The unavailable node.
        node: NodeId,
        /// Virtual seconds spent before giving up.
        spent_secs: f64,
    },
    /// The per-get virtual-time deadline elapsed before the object was
    /// served.
    DeadlineExceeded {
        /// The configured budget.
        deadline_secs: f64,
        /// Virtual seconds actually spent.
        spent_secs: f64,
    },
    /// Every retry attempt failed transiently.
    RetriesExhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// Virtual seconds spent across attempts and backoff waits.
        spent_secs: f64,
        /// What kept failing (e.g. the tier or op name).
        detail: String,
    },
    /// The authoritative backing copy failed its checksum (torn write or
    /// bit rot) and no healthy cached replica remained to serve or
    /// repair it. Corrupt bytes are never returned to callers.
    Corrupted {
        /// The object whose integrity check failed.
        name: String,
        /// Virtual seconds spent before the corruption was detected.
        spent_secs: f64,
    },
    /// The cache configuration is unsatisfiable for the given topology
    /// (e.g. zero cache nodes, or more cache nodes than the cluster
    /// has). Returned by [`crate::CacheManager::try_new`] before any
    /// state is built.
    InvalidConfig(String),
}

impl CacheError {
    /// Virtual seconds the failed operation consumed before erroring —
    /// callers charge this to their rank clock even though the op failed.
    pub fn spent_secs(&self) -> f64 {
        match self {
            CacheError::Fam(_) | CacheError::InvalidConfig(_) => 0.0,
            CacheError::NodeDown { spent_secs, .. }
            | CacheError::DeadlineExceeded { spent_secs, .. }
            | CacheError::RetriesExhausted { spent_secs, .. }
            | CacheError::Corrupted { spent_secs, .. } => *spent_secs,
        }
    }
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Fam(e) => write!(f, "FAM error: {e}"),
            CacheError::NodeDown { node, .. } => {
                write!(f, "cache node {} is down and backing fallback is disabled", node.0)
            }
            CacheError::DeadlineExceeded { deadline_secs, spent_secs } => {
                write!(
                    f,
                    "cache get exceeded its {deadline_secs:.6}s deadline \
                     (spent {spent_secs:.6}s)"
                )
            }
            CacheError::RetriesExhausted { attempts, detail, .. } => {
                write!(f, "retries exhausted after {attempts} attempts: {detail}")
            }
            CacheError::Corrupted { name, .. } => {
                write!(
                    f,
                    "object '{name}' failed its integrity check and no healthy \
                     replica remains"
                )
            }
            CacheError::InvalidConfig(m) => write!(f, "invalid cache configuration: {m}"),
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Fam(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FamError> for CacheError {
    fn from(e: FamError) -> Self {
        CacheError::Fam(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_are_informative() {
        let e = CacheError::DeadlineExceeded { deadline_secs: 0.5, spent_secs: 0.75 };
        assert!(e.to_string().contains("deadline"));
        let e = CacheError::RetriesExhausted {
            attempts: 4,
            spent_secs: 0.1,
            detail: "remote_dram".into(),
        };
        assert!(e.to_string().contains("4 attempts"));
        assert!(e.to_string().contains("remote_dram"));
        let e = CacheError::NodeDown { node: NodeId(2), spent_secs: 0.0 };
        assert!(e.to_string().contains("node 2"));
        let e = CacheError::InvalidConfig("more cache nodes than nodes".into());
        assert!(e.to_string().contains("invalid cache configuration"));
        assert!(e.to_string().contains("more cache nodes"));
    }

    #[test]
    fn fam_errors_wrap_with_source() {
        let fam = FamError::UnknownRegion(crate::fam::FamRegionId(7));
        let e: CacheError = fam.clone().into();
        assert_eq!(e, CacheError::Fam(fam));
        assert!(e.source().is_some(), "wrapped FAM error is the source");
        assert_eq!(e.spent_secs(), 0.0);
    }

    #[test]
    fn spent_secs_propagates() {
        let e = CacheError::RetriesExhausted { attempts: 2, spent_secs: 0.25, detail: "x".into() };
        assert_eq!(e.spent_secs(), 0.25);
    }

    #[test]
    fn spent_secs_covers_every_variant() {
        // Callers charge `spent_secs()` to their rank clock on failure;
        // a variant that forgot to carry it would silently drop virtual
        // time, so pin down all of them.
        let cases: Vec<(CacheError, f64)> = vec![
            (CacheError::Fam(FamError::UnknownRegion(crate::fam::FamRegionId(1))), 0.0),
            (CacheError::NodeDown { node: NodeId(0), spent_secs: 0.125 }, 0.125),
            (CacheError::DeadlineExceeded { deadline_secs: 1.0, spent_secs: 1.5 }, 1.5),
            (
                CacheError::RetriesExhausted { attempts: 4, spent_secs: 0.75, detail: "d".into() },
                0.75,
            ),
            (CacheError::Corrupted { name: "obj".into(), spent_secs: 0.5 }, 0.5),
            // Construction-time rejection: no virtual time was ever spent.
            (CacheError::InvalidConfig("zero cache nodes".into()), 0.0),
        ];
        for (e, want) in cases {
            assert_eq!(e.spent_secs(), want, "{e}");
        }
    }

    #[test]
    fn corrupted_display_and_source() {
        let e = CacheError::Corrupted { name: "vina/p1".into(), spent_secs: 0.1 };
        let msg = e.to_string();
        assert!(msg.contains("vina/p1"));
        assert!(msg.contains("integrity"));
        // Corruption originates in stored bytes, not a wrapped error.
        assert!(e.source().is_none());
    }

    #[test]
    fn only_fam_errors_have_a_source() {
        let errs = [
            CacheError::NodeDown { node: NodeId(1), spent_secs: 0.0 },
            CacheError::DeadlineExceeded { deadline_secs: 0.1, spent_secs: 0.2 },
            CacheError::RetriesExhausted { attempts: 1, spent_secs: 0.0, detail: String::new() },
            CacheError::Corrupted { name: String::new(), spent_secs: 0.0 },
            CacheError::InvalidConfig(String::new()),
        ];
        for e in errs {
            assert!(e.source().is_none(), "{e:?} should not chain");
        }
        let fam: CacheError = FamError::UnknownRegion(crate::fam::FamRegionId(3)).into();
        let src = fam.source().expect("FAM wraps its cause");
        assert!(src.to_string().contains('3'));
    }
}
