//! Typed cache objects for semantic result reuse.
//!
//! The service layer (ids-serve) caches *intermediate solution sets* —
//! the per-rank binding tables an executing plan holds at a checkpoint —
//! keyed by a canonical plan-fragment fingerprint. This module defines the
//! wire format those objects use inside the byte-addressed cache tiers:
//! a versioned, length-checked, little-endian encoding that round-trips
//! the per-rank partitioning exactly, so a query resumed from a cached
//! checkpoint produces byte-identical output to one that executed the
//! fragment itself.
//!
//! Decoding is total: corrupt or truncated bytes (possible under the
//! storage fault plane before checksums catch them) surface as a
//! [`TypedError`], never a panic, and callers treat them as cache misses.

use bytes::Bytes;
use std::fmt;

/// Magic prefix for intermediate-solution objects (`IDSI` little-endian).
const MAGIC: u32 = 0x4953_4449;
/// Current encoding version. Version 2 switched the row payload from
/// row-major `u64` cells to per-variable columns at the narrowest
/// sufficient width (a `u32` column costs half the bytes), matching the
/// engine's columnar `SolutionBatch` layout and making
/// [`IntermediateSolutions::encoded_len`] exact.
const VERSION: u16 = 2;
/// Hard cap on declared counts, so corrupt headers cannot trigger huge
/// allocations before the length checks run.
const MAX_DECLARED: u64 = 1 << 32;
/// Rows in a zero-variable set occupy no payload bytes, so the usual
/// "declared count fits the remaining buffer" check cannot bound them;
/// cap them outright (the engine only ever produces one such row — the
/// empty-schema unit solution).
const MAX_EMPTY_SCHEMA_ROWS: u64 = 1 << 16;

/// One column-named binding table, mirroring `ids_graph::SolutionSet` but
/// decoupled from it so the cache crate stays reusable: rows are dense
/// `u64` term ids in schema order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypedSolutionSet {
    /// Variable (column) names, in canonical fragment naming.
    pub vars: Vec<String>,
    /// Rows of dictionary-encoded term ids; every row has `vars.len()` entries.
    pub rows: Vec<Vec<u64>>,
}

/// A per-rank-partitioned set of intermediate solutions at a plan
/// checkpoint, plus the bookkeeping the engine needs to resume past it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntermediateSolutions {
    /// Fingerprint of the plan fragment that produced this state. Verified
    /// on load so a (vanishingly unlikely) key collision is detected
    /// instead of silently resuming from a foreign query's state.
    pub fingerprint: u64,
    /// Per-rank solution counts *before* the WHERE filter ran — needed by
    /// EXPLAIN's selectivity accounting when the filter stage is skipped.
    pub pre_filter_counts: Vec<u64>,
    /// One entry per rank, in rank order.
    pub sets: Vec<TypedSolutionSet>,
}

/// Why a typed object failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypedError {
    /// The buffer does not start with the expected magic/version.
    BadHeader,
    /// The buffer ended before the declared contents.
    Truncated,
    /// A declared length is implausible (corrupt header).
    LengthOverflow,
    /// A variable name was not valid UTF-8.
    BadVarName,
    /// A column carried an unknown width tag (corrupt payload).
    BadColumnTag,
    /// The object decoded, but carries a different fragment fingerprint
    /// than the caller expected (cache-key collision).
    FingerprintMismatch {
        /// Fingerprint the caller looked up.
        expected: u64,
        /// Fingerprint stored in the object.
        found: u64,
    },
}

impl fmt::Display for TypedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypedError::BadHeader => write!(f, "typed object: bad magic or version"),
            TypedError::Truncated => write!(f, "typed object: truncated payload"),
            TypedError::LengthOverflow => write!(f, "typed object: implausible declared length"),
            TypedError::BadVarName => write!(f, "typed object: non-UTF-8 variable name"),
            TypedError::BadColumnTag => write!(f, "typed object: unknown column width tag"),
            TypedError::FingerprintMismatch { expected, found } => write!(
                f,
                "typed object: fingerprint mismatch (expected {expected:#018x}, found {found:#018x})"
            ),
        }
    }
}

impl std::error::Error for TypedError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TypedError> {
        let end = self.pos.checked_add(n).ok_or(TypedError::LengthOverflow)?;
        if end > self.buf.len() {
            return Err(TypedError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, TypedError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, TypedError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, TypedError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// A declared element count, sanity-capped and checked against the
    /// bytes actually remaining (each element occupies ≥ `min_elem_bytes`).
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, TypedError> {
        let n = self.u64()?;
        if n > MAX_DECLARED {
            return Err(TypedError::LengthOverflow);
        }
        let need = (n as usize).checked_mul(min_elem_bytes).ok_or(TypedError::LengthOverflow)?;
        if self.buf.len() - self.pos < need {
            return Err(TypedError::Truncated);
        }
        Ok(n as usize)
    }
}

impl TypedSolutionSet {
    /// Wire width (4 or 8 bytes) of column `c`: 4 unless some id in the
    /// column overflows `u32`.
    fn column_width(&self, c: usize) -> u64 {
        if self.rows.iter().any(|r| r[c] > u64::from(u32::MAX)) {
            8
        } else {
            4
        }
    }

    /// Exact encoded size of this set's section of the wire format.
    fn encoded_len(&self) -> usize {
        let mut total = 2 + 8; // var count + row count
        for (c, v) in self.vars.iter().enumerate() {
            total += 2 + v.len(); // name length + bytes
            total += 1 + self.rows.len() * self.column_width(c) as usize; // tag + values
        }
        total
    }
}

impl IntermediateSolutions {
    /// Serialize to the versioned columnar wire format.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.pre_filter_counts.len() as u64).to_le_bytes());
        for &c in &self.pre_filter_counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&(self.sets.len() as u64).to_le_bytes());
        for set in &self.sets {
            out.extend_from_slice(&(set.vars.len() as u16).to_le_bytes());
            for v in &set.vars {
                out.extend_from_slice(&(v.len() as u16).to_le_bytes());
                out.extend_from_slice(v.as_bytes());
            }
            out.extend_from_slice(&(set.rows.len() as u64).to_le_bytes());
            for c in 0..set.vars.len() {
                let width = set.column_width(c);
                out.push(width as u8);
                for row in &set.rows {
                    debug_assert_eq!(row.len(), set.vars.len(), "row width must match schema");
                    if width == 4 {
                        out.extend_from_slice(&(row[c] as u32).to_le_bytes());
                    } else {
                        out.extend_from_slice(&row[c].to_le_bytes());
                    }
                }
            }
        }
        debug_assert_eq!(out.len(), self.encoded_len(), "encoded_len must be exact");
        Bytes::from(out)
    }

    /// Parse from bytes, verifying structure and the expected fragment
    /// fingerprint. Never panics on malformed input.
    pub fn decode(bytes: &[u8], expected_fingerprint: u64) -> Result<Self, TypedError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.u32()? != MAGIC || r.u16()? != VERSION {
            return Err(TypedError::BadHeader);
        }
        let fingerprint = r.u64()?;
        if fingerprint != expected_fingerprint {
            return Err(TypedError::FingerprintMismatch {
                expected: expected_fingerprint,
                found: fingerprint,
            });
        }
        let n_pre = r.count(8)?;
        let mut pre_filter_counts = Vec::with_capacity(n_pre);
        for _ in 0..n_pre {
            pre_filter_counts.push(r.u64()?);
        }
        let n_sets = r.count(2)?;
        let mut sets = Vec::with_capacity(n_sets);
        for _ in 0..n_sets {
            let n_vars = r.u16()? as usize;
            let mut vars = Vec::with_capacity(n_vars);
            for _ in 0..n_vars {
                let len = r.u16()? as usize;
                let raw = r.take(len)?;
                vars.push(
                    std::str::from_utf8(raw).map_err(|_| TypedError::BadVarName)?.to_string(),
                );
            }
            let n_rows = if n_vars == 0 {
                // Zero-width rows carry no payload bytes to length-check
                // against; bound the declared count directly.
                let n = r.u64()?;
                if n > MAX_EMPTY_SCHEMA_ROWS {
                    return Err(TypedError::LengthOverflow);
                }
                n as usize
            } else {
                // Lower bound: one tag byte per column plus 4 bytes per cell.
                r.count(n_vars * 4)?
            };
            let mut rows = vec![vec![0u64; n_vars]; n_rows];
            for c in 0..n_vars {
                let width = r.take(1)?[0];
                match width {
                    4 => {
                        for row in rows.iter_mut() {
                            row[c] = u64::from(r.u32()?);
                        }
                    }
                    8 => {
                        for row in rows.iter_mut() {
                            row[c] = r.u64()?;
                        }
                    }
                    _ => return Err(TypedError::BadColumnTag),
                }
            }
            sets.push(TypedSolutionSet { vars, rows });
        }
        Ok(Self { fingerprint, pre_filter_counts, sets })
    }

    /// Total bindings across all ranks.
    pub fn total_rows(&self) -> usize {
        self.sets.iter().map(|s| s.rows.len()).sum()
    }

    /// Exact encoded size in bytes — `encode().len()` without paying the
    /// encode. Cache-admission caps and size accounting use this, so the
    /// charged size always matches the measured serialized size.
    pub fn encoded_len(&self) -> usize {
        // Header: magic(4) + version(2) + fingerprint(8), then the
        // pre-filter counts and the set count.
        4 + 2
            + 8
            + 8
            + 8 * self.pre_filter_counts.len()
            + 8
            + self.sets.iter().map(TypedSolutionSet::encoded_len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IntermediateSolutions {
        IntermediateSolutions {
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            pre_filter_counts: vec![3, 1, 0, 7],
            sets: vec![
                TypedSolutionSet {
                    vars: vec!["c0".into(), "c1".into()],
                    rows: vec![vec![1, 2], vec![3, 4], vec![5, 6]],
                },
                TypedSolutionSet { vars: vec!["c0".into(), "c1".into()], rows: vec![] },
            ],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let obj = sample();
        let bytes = obj.encode();
        let back = IntermediateSolutions::decode(&bytes, obj.fingerprint).unwrap();
        assert_eq!(back, obj);
        assert_eq!(back.total_rows(), 3);
    }

    #[test]
    fn empty_object_round_trips() {
        let obj = IntermediateSolutions { fingerprint: 1, pre_filter_counts: vec![], sets: vec![] };
        let bytes = obj.encode();
        assert_eq!(IntermediateSolutions::decode(&bytes, 1).unwrap(), obj);
    }

    #[test]
    fn fingerprint_collision_is_detected() {
        let bytes = sample().encode();
        match IntermediateSolutions::decode(&bytes, 42) {
            Err(TypedError::FingerprintMismatch { expected: 42, found }) => {
                assert_eq!(found, 0xDEAD_BEEF_CAFE_F00D);
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn encoded_len_is_exact() {
        for obj in [
            sample(),
            IntermediateSolutions { fingerprint: 1, pre_filter_counts: vec![], sets: vec![] },
            IntermediateSolutions {
                fingerprint: 2,
                pre_filter_counts: vec![9],
                sets: vec![TypedSolutionSet {
                    vars: vec!["wide".into(), "narrow".into()],
                    rows: vec![vec![u64::MAX, 3], vec![7, 4]],
                }],
            },
        ] {
            assert_eq!(obj.encode().len(), obj.encoded_len());
        }
    }

    #[test]
    fn wide_ids_round_trip_and_narrow_columns_halve_bytes() {
        let narrow = IntermediateSolutions {
            fingerprint: 5,
            pre_filter_counts: vec![],
            sets: vec![TypedSolutionSet {
                vars: vec!["x".into()],
                rows: (0..100).map(|i| vec![i]).collect(),
            }],
        };
        let wide = IntermediateSolutions {
            fingerprint: 5,
            pre_filter_counts: vec![],
            sets: vec![TypedSolutionSet {
                vars: vec!["x".into()],
                rows: (0..100).map(|i| vec![i + (1 << 40)]).collect(),
            }],
        };
        assert_eq!(wide.encoded_len() - narrow.encoded_len(), 100 * 4);
        for obj in [narrow, wide] {
            let back = IntermediateSolutions::decode(&obj.encode(), 5).unwrap();
            assert_eq!(back, obj);
        }
    }

    #[test]
    fn empty_schema_rows_round_trip_but_absurd_counts_are_rejected() {
        // The engine's unit solution: one row with no columns.
        let obj = IntermediateSolutions {
            fingerprint: 3,
            pre_filter_counts: vec![1],
            sets: vec![TypedSolutionSet { vars: vec![], rows: vec![vec![]] }],
        };
        let bytes = obj.encode();
        assert_eq!(bytes.len(), obj.encoded_len());
        assert_eq!(IntermediateSolutions::decode(&bytes, 3).unwrap(), obj);

        // A corrupted row count for a zero-var set must not allocate.
        let mut corrupt = bytes.to_vec();
        let row_count_at = bytes.len() - 8; // last field is the u64 row count
        corrupt[row_count_at..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            IntermediateSolutions::decode(&corrupt, 3),
            Err(TypedError::LengthOverflow)
        ));
    }

    #[test]
    fn bad_column_tag_is_rejected() {
        let obj = sample();
        let bytes = obj.encode().to_vec();
        // First column tag of the first set: header(14) + pre(8 + 4*8) +
        // nsets(8) + nvars(2) + 2*(2+2 names) + nrows(8).
        let tag_at = 14 + 8 + 32 + 8 + 2 + 8 + 8;
        assert_eq!(bytes[tag_at], 4, "expected the narrow-width tag");
        let mut corrupt = bytes.clone();
        corrupt[tag_at] = 9;
        assert!(matches!(
            IntermediateSolutions::decode(&corrupt, obj.fingerprint),
            Err(TypedError::BadColumnTag)
        ));
    }

    #[test]
    fn truncation_never_panics() {
        let obj = sample();
        let bytes = obj.encode();
        for cut in 0..bytes.len() {
            let r = IntermediateSolutions::decode(&bytes[..cut], obj.fingerprint);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let obj = sample();
        let bytes = obj.encode().to_vec();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x80;
            // Any outcome is fine except a panic; most flips must error or
            // decode to *something* structurally valid.
            let _ = IntermediateSolutions::decode(&corrupt, obj.fingerprint);
        }
    }

    #[test]
    fn implausible_counts_rejected_without_allocation() {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&7u64.to_le_bytes());
        out.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd pre-count
        assert!(matches!(
            IntermediateSolutions::decode(&out, 7),
            Err(TypedError::Truncated) | Err(TypedError::LengthOverflow)
        ));
    }
}
