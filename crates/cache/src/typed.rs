//! Typed cache objects for semantic result reuse.
//!
//! The service layer (ids-serve) caches *intermediate solution sets* —
//! the per-rank binding tables an executing plan holds at a checkpoint —
//! keyed by a canonical plan-fragment fingerprint. This module defines the
//! wire format those objects use inside the byte-addressed cache tiers:
//! a versioned, length-checked, little-endian encoding that round-trips
//! the per-rank partitioning exactly, so a query resumed from a cached
//! checkpoint produces byte-identical output to one that executed the
//! fragment itself.
//!
//! Decoding is total: corrupt or truncated bytes (possible under the
//! storage fault plane before checksums catch them) surface as a
//! [`TypedError`], never a panic, and callers treat them as cache misses.

use bytes::Bytes;
use std::fmt;

/// Magic prefix for intermediate-solution objects (`IDSI` little-endian).
const MAGIC: u32 = 0x4953_4449;
/// Current encoding version.
const VERSION: u16 = 1;
/// Hard cap on declared counts, so corrupt headers cannot trigger huge
/// allocations before the length checks run.
const MAX_DECLARED: u64 = 1 << 32;

/// One column-named binding table, mirroring `ids_graph::SolutionSet` but
/// decoupled from it so the cache crate stays reusable: rows are dense
/// `u64` term ids in schema order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypedSolutionSet {
    /// Variable (column) names, in canonical fragment naming.
    pub vars: Vec<String>,
    /// Rows of dictionary-encoded term ids; every row has `vars.len()` entries.
    pub rows: Vec<Vec<u64>>,
}

/// A per-rank-partitioned set of intermediate solutions at a plan
/// checkpoint, plus the bookkeeping the engine needs to resume past it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntermediateSolutions {
    /// Fingerprint of the plan fragment that produced this state. Verified
    /// on load so a (vanishingly unlikely) key collision is detected
    /// instead of silently resuming from a foreign query's state.
    pub fingerprint: u64,
    /// Per-rank solution counts *before* the WHERE filter ran — needed by
    /// EXPLAIN's selectivity accounting when the filter stage is skipped.
    pub pre_filter_counts: Vec<u64>,
    /// One entry per rank, in rank order.
    pub sets: Vec<TypedSolutionSet>,
}

/// Why a typed object failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypedError {
    /// The buffer does not start with the expected magic/version.
    BadHeader,
    /// The buffer ended before the declared contents.
    Truncated,
    /// A declared length is implausible (corrupt header).
    LengthOverflow,
    /// A variable name was not valid UTF-8.
    BadVarName,
    /// The object decoded, but carries a different fragment fingerprint
    /// than the caller expected (cache-key collision).
    FingerprintMismatch {
        /// Fingerprint the caller looked up.
        expected: u64,
        /// Fingerprint stored in the object.
        found: u64,
    },
}

impl fmt::Display for TypedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypedError::BadHeader => write!(f, "typed object: bad magic or version"),
            TypedError::Truncated => write!(f, "typed object: truncated payload"),
            TypedError::LengthOverflow => write!(f, "typed object: implausible declared length"),
            TypedError::BadVarName => write!(f, "typed object: non-UTF-8 variable name"),
            TypedError::FingerprintMismatch { expected, found } => write!(
                f,
                "typed object: fingerprint mismatch (expected {expected:#018x}, found {found:#018x})"
            ),
        }
    }
}

impl std::error::Error for TypedError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TypedError> {
        let end = self.pos.checked_add(n).ok_or(TypedError::LengthOverflow)?;
        if end > self.buf.len() {
            return Err(TypedError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, TypedError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, TypedError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, TypedError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// A declared element count, sanity-capped and checked against the
    /// bytes actually remaining (each element occupies ≥ `min_elem_bytes`).
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, TypedError> {
        let n = self.u64()?;
        if n > MAX_DECLARED {
            return Err(TypedError::LengthOverflow);
        }
        let need = (n as usize).checked_mul(min_elem_bytes).ok_or(TypedError::LengthOverflow)?;
        if self.buf.len() - self.pos < need {
            return Err(TypedError::Truncated);
        }
        Ok(n as usize)
    }
}

impl IntermediateSolutions {
    /// Serialize to the versioned wire format.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(64 + self.byte_estimate());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.pre_filter_counts.len() as u64).to_le_bytes());
        for &c in &self.pre_filter_counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&(self.sets.len() as u64).to_le_bytes());
        for set in &self.sets {
            out.extend_from_slice(&(set.vars.len() as u16).to_le_bytes());
            for v in &set.vars {
                out.extend_from_slice(&(v.len() as u16).to_le_bytes());
                out.extend_from_slice(v.as_bytes());
            }
            out.extend_from_slice(&(set.rows.len() as u64).to_le_bytes());
            for row in &set.rows {
                debug_assert_eq!(row.len(), set.vars.len(), "row width must match schema");
                for &t in row {
                    out.extend_from_slice(&t.to_le_bytes());
                }
            }
        }
        Bytes::from(out)
    }

    /// Parse from bytes, verifying structure and the expected fragment
    /// fingerprint. Never panics on malformed input.
    pub fn decode(bytes: &[u8], expected_fingerprint: u64) -> Result<Self, TypedError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.u32()? != MAGIC || r.u16()? != VERSION {
            return Err(TypedError::BadHeader);
        }
        let fingerprint = r.u64()?;
        if fingerprint != expected_fingerprint {
            return Err(TypedError::FingerprintMismatch {
                expected: expected_fingerprint,
                found: fingerprint,
            });
        }
        let n_pre = r.count(8)?;
        let mut pre_filter_counts = Vec::with_capacity(n_pre);
        for _ in 0..n_pre {
            pre_filter_counts.push(r.u64()?);
        }
        let n_sets = r.count(2)?;
        let mut sets = Vec::with_capacity(n_sets);
        for _ in 0..n_sets {
            let n_vars = r.u16()? as usize;
            let mut vars = Vec::with_capacity(n_vars);
            for _ in 0..n_vars {
                let len = r.u16()? as usize;
                let raw = r.take(len)?;
                vars.push(
                    std::str::from_utf8(raw).map_err(|_| TypedError::BadVarName)?.to_string(),
                );
            }
            let n_rows = r.count(n_vars.max(1) * 8)?;
            let mut rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let mut row = Vec::with_capacity(n_vars);
                for _ in 0..n_vars {
                    row.push(r.u64()?);
                }
                rows.push(row);
            }
            sets.push(TypedSolutionSet { vars, rows });
        }
        Ok(Self { fingerprint, pre_filter_counts, sets })
    }

    /// Total bindings across all ranks.
    pub fn total_rows(&self) -> usize {
        self.sets.iter().map(|s| s.rows.len()).sum()
    }

    /// Rough payload size (8 bytes per binding), used for cache-admission
    /// caps before paying the encode.
    pub fn byte_estimate(&self) -> usize {
        self.sets
            .iter()
            .map(|s| {
                s.rows.len() * s.vars.len() * 8 + s.vars.iter().map(String::len).sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IntermediateSolutions {
        IntermediateSolutions {
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            pre_filter_counts: vec![3, 1, 0, 7],
            sets: vec![
                TypedSolutionSet {
                    vars: vec!["c0".into(), "c1".into()],
                    rows: vec![vec![1, 2], vec![3, 4], vec![5, 6]],
                },
                TypedSolutionSet { vars: vec!["c0".into(), "c1".into()], rows: vec![] },
            ],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let obj = sample();
        let bytes = obj.encode();
        let back = IntermediateSolutions::decode(&bytes, obj.fingerprint).unwrap();
        assert_eq!(back, obj);
        assert_eq!(back.total_rows(), 3);
    }

    #[test]
    fn empty_object_round_trips() {
        let obj = IntermediateSolutions { fingerprint: 1, pre_filter_counts: vec![], sets: vec![] };
        let bytes = obj.encode();
        assert_eq!(IntermediateSolutions::decode(&bytes, 1).unwrap(), obj);
    }

    #[test]
    fn fingerprint_collision_is_detected() {
        let bytes = sample().encode();
        match IntermediateSolutions::decode(&bytes, 42) {
            Err(TypedError::FingerprintMismatch { expected: 42, found }) => {
                assert_eq!(found, 0xDEAD_BEEF_CAFE_F00D);
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_never_panics() {
        let obj = sample();
        let bytes = obj.encode();
        for cut in 0..bytes.len() {
            let r = IntermediateSolutions::decode(&bytes[..cut], obj.fingerprint);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let obj = sample();
        let bytes = obj.encode().to_vec();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x80;
            // Any outcome is fine except a panic; most flips must error or
            // decode to *something* structurally valid.
            let _ = IntermediateSolutions::decode(&corrupt, obj.fingerprint);
        }
    }

    #[test]
    fn implausible_counts_rejected_without_allocation() {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&7u64.to_le_bytes());
        out.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd pre-count
        assert!(matches!(
            IntermediateSolutions::decode(&out, 7),
            Err(TypedError::Truncated) | Err(TypedError::LengthOverflow)
        ));
    }
}
