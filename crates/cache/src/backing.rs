//! The authoritative persistent backing store (DAOS/Lustre stand-in).
//!
//! "Authoritative copies remain in persistent backing storage (e.g.,
//! DAOS); if a cache node fails its in-memory/SSD contents are lost but
//! can be re-populated from the backing store" (§3.2). The store is a
//! durable key-value map with a parallel-filesystem-like cost model:
//! high per-op latency (metadata RPC) plus modest streaming bandwidth.

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Cost parameters for the backing store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackingCosts {
    /// Per-operation latency (metadata + RPC), seconds.
    pub op_latency: f64,
    /// Streaming bandwidth, bytes/second.
    pub bandwidth: f64,
}

impl Default for BackingCosts {
    fn default() -> Self {
        // Lustre-class: ~1 ms per op, 2 GB/s per client stream.
        Self { op_latency: 1.0e-3, bandwidth: 2.0e9 }
    }
}

/// An access result: payload (for reads) plus virtual cost.
#[derive(Debug, Clone, PartialEq)]
pub struct BackingAccess<T> {
    pub value: T,
    pub virtual_secs: f64,
}

/// The persistent object store.
pub struct BackingStore {
    costs: BackingCosts,
    objects: RwLock<HashMap<String, Bytes>>,
}

impl BackingStore {
    /// A store with the given cost model.
    pub fn new(costs: BackingCosts) -> Self {
        Self { costs, objects: RwLock::new(HashMap::new()) }
    }

    /// Lustre-like defaults.
    pub fn default_store() -> Self {
        Self::new(BackingCosts::default())
    }

    /// Persist an object (overwrites).
    pub fn put(&self, name: &str, data: Bytes) -> BackingAccess<()> {
        let cost = self.costs.op_latency + data.len() as f64 / self.costs.bandwidth;
        self.objects.write().insert(name.to_string(), data);
        BackingAccess { value: (), virtual_secs: cost }
    }

    /// Fetch an object; `None` (with the metadata-lookup cost) if absent.
    pub fn get(&self, name: &str) -> BackingAccess<Option<Bytes>> {
        let objects = self.objects.read();
        match objects.get(name) {
            Some(data) => BackingAccess {
                virtual_secs: self.costs.op_latency + data.len() as f64 / self.costs.bandwidth,
                value: Some(data.clone()),
            },
            None => BackingAccess { value: None, virtual_secs: self.costs.op_latency },
        }
    }

    /// Whether an object exists (metadata-only cost).
    pub fn contains(&self, name: &str) -> BackingAccess<bool> {
        BackingAccess {
            value: self.objects.read().contains_key(name),
            virtual_secs: self.costs.op_latency,
        }
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let bs = BackingStore::default_store();
        bs.put("vina/a", Bytes::from_static(b"pose-data"));
        let got = bs.get("vina/a");
        assert_eq!(got.value.as_deref(), Some(&b"pose-data"[..]));
        assert_eq!(bs.get("vina/missing").value, None);
    }

    #[test]
    fn costs_scale_with_size() {
        let bs = BackingStore::default_store();
        bs.put("small", Bytes::from(vec![0u8; 1 << 10]));
        bs.put("large", Bytes::from(vec![0u8; 1 << 26]));
        let small = bs.get("small").virtual_secs;
        let large = bs.get("large").virtual_secs;
        assert!(large > small * 10.0, "large {large} vs small {small}");
        // Both dominated by at least the op latency.
        assert!(small >= 1.0e-3);
    }

    #[test]
    fn contains_is_metadata_only() {
        let bs = BackingStore::default_store();
        bs.put("x", Bytes::from(vec![0u8; 1 << 26]));
        let c = bs.contains("x");
        assert!(c.value);
        assert!(c.virtual_secs < bs.get("x").virtual_secs);
    }

    #[test]
    fn overwrite_replaces() {
        let bs = BackingStore::default_store();
        bs.put("k", Bytes::from_static(b"v1"));
        bs.put("k", Bytes::from_static(b"v2"));
        assert_eq!(bs.get("k").value.as_deref(), Some(&b"v2"[..]));
        assert_eq!(bs.len(), 1);
    }
}
