//! The authoritative persistent backing store (DAOS/Lustre stand-in).
//!
//! "Authoritative copies remain in persistent backing storage (e.g.,
//! DAOS); if a cache node fails its in-memory/SSD contents are lost but
//! can be re-populated from the backing store" (§3.2). The store is a
//! durable key-value map with a parallel-filesystem-like cost model:
//! high per-op latency (metadata RPC) plus modest streaming bandwidth.
//!
//! Every object is stored alongside a CRC32 recorded at write time, so
//! a corrupted authoritative copy (simulated via [`BackingStore::corrupt`]
//! or a torn write that was not re-written) is *detected* at read time
//! rather than silently served — the cache manager then repairs it from
//! a healthy cached replica instead of propagating the damage.

use crate::object::crc32;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Cost parameters for the backing store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackingCosts {
    /// Per-operation latency (metadata + RPC), seconds.
    pub op_latency: f64,
    /// Streaming bandwidth, bytes/second.
    pub bandwidth: f64,
}

impl Default for BackingCosts {
    fn default() -> Self {
        // Lustre-class: ~1 ms per op, 2 GB/s per client stream.
        Self { op_latency: 1.0e-3, bandwidth: 2.0e9 }
    }
}

/// An access result: payload (for reads) plus virtual cost.
#[derive(Debug, Clone, PartialEq)]
pub struct BackingAccess<T> {
    pub value: T,
    pub virtual_secs: f64,
}

/// A read that was verified against the stored checksum.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedRead {
    /// The stored bytes (possibly corrupt — check `intact`).
    pub data: Bytes,
    /// True when the data matches the checksum recorded at write time.
    pub intact: bool,
}

struct Stored {
    data: Bytes,
    /// CRC32 recorded when the object was written; [`BackingStore::corrupt`]
    /// deliberately leaves this stale so reads detect the damage.
    crc: u32,
}

/// The persistent object store.
pub struct BackingStore {
    costs: BackingCosts,
    objects: RwLock<HashMap<String, Stored>>,
}

impl BackingStore {
    /// A store with the given cost model.
    pub fn new(costs: BackingCosts) -> Self {
        Self { costs, objects: RwLock::new(HashMap::new()) }
    }

    /// Lustre-like defaults.
    pub fn default_store() -> Self {
        Self::new(BackingCosts::default())
    }

    /// Persist an object (overwrites), recording its CRC32.
    pub fn put(&self, name: &str, data: Bytes) -> BackingAccess<()> {
        let cost = self.costs.op_latency + data.len() as f64 / self.costs.bandwidth;
        let crc = crc32(&data);
        self.objects.write().insert(name.to_string(), Stored { data, crc });
        BackingAccess { value: (), virtual_secs: cost }
    }

    /// Fetch an object; `None` (with the metadata-lookup cost) if absent.
    pub fn get(&self, name: &str) -> BackingAccess<Option<Bytes>> {
        let objects = self.objects.read();
        match objects.get(name) {
            Some(s) => BackingAccess {
                virtual_secs: self.costs.op_latency + s.data.len() as f64 / self.costs.bandwidth,
                value: Some(s.data.clone()),
            },
            None => BackingAccess { value: None, virtual_secs: self.costs.op_latency },
        }
    }

    /// Fetch an object *and* verify it against the stored checksum.
    /// Callers must not serve a read with `intact == false` — repair it
    /// from a healthy replica (or error) instead.
    pub fn get_checked(&self, name: &str) -> BackingAccess<Option<VerifiedRead>> {
        let objects = self.objects.read();
        match objects.get(name) {
            Some(s) => BackingAccess {
                virtual_secs: self.costs.op_latency + s.data.len() as f64 / self.costs.bandwidth,
                value: Some(VerifiedRead { data: s.data.clone(), intact: crc32(&s.data) == s.crc }),
            },
            None => BackingAccess { value: None, virtual_secs: self.costs.op_latency },
        }
    }

    /// The CRC32 recorded for an object at write time.
    pub fn checksum(&self, name: &str) -> Option<u32> {
        self.objects.read().get(name).map(|s| s.crc)
    }

    /// Metadata-cost integrity probe: does the stored payload still match
    /// its recorded checksum? `None` when the object is absent.
    pub fn verify(&self, name: &str) -> BackingAccess<Option<bool>> {
        BackingAccess {
            value: self.objects.read().get(name).map(|s| crc32(&s.data) == s.crc),
            virtual_secs: self.costs.op_latency,
        }
    }

    /// Chaos/test hook: flip one bit of the stored payload *without*
    /// updating the recorded checksum — a latent corruption that reads
    /// and scrubs must detect. Returns false when the object is absent
    /// or empty (nothing to flip).
    pub fn corrupt(&self, name: &str) -> bool {
        let mut objects = self.objects.write();
        let Some(s) = objects.get_mut(name) else { return false };
        if s.data.is_empty() {
            return false;
        }
        let mut bytes = s.data.to_vec();
        bytes[0] ^= 0x80;
        s.data = Bytes::from(bytes);
        true
    }

    /// Whether an object exists (metadata-only cost).
    pub fn contains(&self, name: &str) -> BackingAccess<bool> {
        BackingAccess {
            value: self.objects.read().contains_key(name),
            virtual_secs: self.costs.op_latency,
        }
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let bs = BackingStore::default_store();
        bs.put("vina/a", Bytes::from_static(b"pose-data"));
        let got = bs.get("vina/a");
        assert_eq!(got.value.as_deref(), Some(&b"pose-data"[..]));
        assert_eq!(bs.get("vina/missing").value, None);
    }

    #[test]
    fn costs_scale_with_size() {
        let bs = BackingStore::default_store();
        bs.put("small", Bytes::from(vec![0u8; 1 << 10]));
        bs.put("large", Bytes::from(vec![0u8; 1 << 26]));
        let small = bs.get("small").virtual_secs;
        let large = bs.get("large").virtual_secs;
        assert!(large > small * 10.0, "large {large} vs small {small}");
        // Both dominated by at least the op latency.
        assert!(small >= 1.0e-3);
    }

    #[test]
    fn contains_is_metadata_only() {
        let bs = BackingStore::default_store();
        bs.put("x", Bytes::from(vec![0u8; 1 << 26]));
        let c = bs.contains("x");
        assert!(c.value);
        assert!(c.virtual_secs < bs.get("x").virtual_secs);
    }

    #[test]
    fn overwrite_replaces() {
        let bs = BackingStore::default_store();
        bs.put("k", Bytes::from_static(b"v1"));
        bs.put("k", Bytes::from_static(b"v2"));
        assert_eq!(bs.get("k").value.as_deref(), Some(&b"v2"[..]));
        assert_eq!(bs.len(), 1);
    }

    #[test]
    fn checked_reads_verify_integrity() {
        let bs = BackingStore::default_store();
        bs.put("k", Bytes::from_static(b"payload"));
        let clean = bs.get_checked("k").value.unwrap();
        assert!(clean.intact);
        assert_eq!(&clean.data[..], b"payload");
        assert_eq!(bs.checksum("k"), Some(crc32(b"payload")));
        assert_eq!(bs.verify("k").value, Some(true));
        assert_eq!(bs.verify("ghost").value, None);
        assert_eq!(bs.get_checked("ghost").value, None);
    }

    #[test]
    fn corruption_is_detected_and_rewrite_heals() {
        let bs = BackingStore::default_store();
        bs.put("k", Bytes::from_static(b"payload"));
        assert!(bs.corrupt("k"));
        let rotted = bs.get_checked("k").value.unwrap();
        assert!(!rotted.intact, "stale checksum must flag the flipped bit");
        assert_ne!(&rotted.data[..], b"payload");
        assert_eq!(bs.verify("k").value, Some(false));
        // A fresh write (repair from a healthy replica) restores integrity.
        bs.put("k", Bytes::from_static(b"payload"));
        assert_eq!(bs.verify("k").value, Some(true));
        // Absent/empty objects can't be corrupted.
        assert!(!bs.corrupt("ghost"));
        bs.put("empty", Bytes::new());
        assert!(!bs.corrupt("empty"));
    }
}
