//! Criterion micro-benchmarks for the hot kernels under the experiments:
//! Smith–Waterman alignment (full + banded), DTBA forward pass, docking
//! pose scoring, dictionary interning, hash join, vector top-k, and cache
//! get/put.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ids_cache::{BackingStore, CacheConfig, CacheManager};
use ids_chem::sequence::ProteinSequence;
use ids_chem::smiles::parse_smiles;
use ids_graph::{ops, Dictionary, SolutionSet, Term, TermId};
use ids_models::{DockingEngine, DtbaModel, MoleculeGenerator, SmithWaterman};
use ids_simrt::rng::SplitMix64;
use ids_simrt::{NetworkModel, RankId, Topology};
use ids_vector::store::{Metric, VectorStore};
use std::hint::black_box;

fn bench_smith_waterman(c: &mut Criterion) {
    let mut rng = SplitMix64::new(1, 1);
    let a = ProteinSequence::random(412, &mut rng); // P29274-sized
    let b = a.mutate(0.1, &mut rng);
    let sw = SmithWaterman::default_model();

    let mut g = c.benchmark_group("smith_waterman");
    g.throughput(Throughput::Elements((a.len() * b.len()) as u64));
    g.bench_function("full_412x412", |bench| {
        bench.iter(|| black_box(sw.align(black_box(&a), black_box(&b))))
    });
    g.bench_function("banded_412x412_w32", |bench| {
        bench.iter(|| black_box(sw.align_banded(black_box(&a), black_box(&b), 32)))
    });
    g.finish();
}

fn bench_dtba(c: &mut Criterion) {
    let mut rng = SplitMix64::new(2, 1);
    let target = ProteinSequence::random(412, &mut rng);
    let model = DtbaModel::pretrained();
    c.bench_function("dtba_forward_412aa", |bench| {
        bench.iter(|| black_box(model.predict(black_box(&target), "CC(=O)Oc1ccccc1C(=O)O")))
    });
}

fn bench_docking_score(c: &mut Criterion) {
    let mut receptor = ids_chem::Structure3D::new();
    let mut rng = SplitMix64::new(3, 1);
    for _ in 0..400 {
        receptor.push(
            ids_chem::Element::C,
            ids_chem::Vec3::new(
                rng.next_range(-30.0, 30.0),
                rng.next_range(-30.0, 30.0),
                rng.next_range(-30.0, 30.0),
            ),
        );
    }
    let lig = parse_smiles("CC(=O)Oc1ccccc1C(=O)O").unwrap();
    let pose = DockingEngine::embed_ligand(&lig, 7);
    let engine = DockingEngine::test_engine();
    c.bench_function("docking_score_400x13", |bench| {
        bench.iter(|| black_box(engine.score_pose(black_box(&receptor), black_box(&pose), 3)))
    });
}

fn bench_dictionary(c: &mut Criterion) {
    c.bench_function("dict_encode_1k_new", |bench| {
        let mut n = 0u64;
        bench.iter_batched(
            Dictionary::new,
            |dict| {
                for i in 0..1000 {
                    n = n.wrapping_add(dict.encode(&Term::iri(format!("e:{i}"))).raw());
                }
                black_box(n)
            },
            BatchSize::SmallInput,
        )
    });
    let dict = Dictionary::new();
    for i in 0..1000 {
        dict.iri(&format!("e:{i}"));
    }
    c.bench_function("dict_encode_1k_hit", |bench| {
        bench.iter(|| {
            let mut n = 0u64;
            for i in 0..1000 {
                n = n.wrapping_add(dict.encode(&Term::iri(format!("e:{i}"))).raw());
            }
            black_box(n)
        })
    });
}

fn bench_hash_join(c: &mut Criterion) {
    let left = SolutionSet::new(
        vec!["k".into(), "l".into()],
        (0..10_000u64).map(|i| vec![TermId(i % 1000), TermId(i)]).collect(),
    );
    let right = SolutionSet::new(
        vec!["k".into(), "r".into()],
        (0..1000u64).map(|i| vec![TermId(i), TermId(i + 50_000)]).collect(),
    );
    let mut g = c.benchmark_group("join");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("hash_join_10k_x_1k", |bench| {
        bench.iter(|| black_box(ops::hash_join(black_box(&left), black_box(&right))))
    });
    g.finish();
}

fn bench_vector_search(c: &mut Criterion) {
    let mut store = VectorStore::new(64);
    let mut rng = SplitMix64::new(4, 1);
    for i in 0..50_000u64 {
        let v: Vec<f32> = (0..64).map(|_| rng.next_f64() as f32).collect();
        store.insert(i, &v);
    }
    let q: Vec<f32> = (0..64).map(|_| rng.next_f64() as f32).collect();
    let mut g = c.benchmark_group("vector");
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("topk10_cosine_50k_d64", |bench| {
        bench.iter(|| black_box(store.search(black_box(&q), 10, Metric::Cosine)))
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let topo = Topology::new(4, 8);
    let cache = CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 256 << 20, 1 << 30),
        BackingStore::default_store(),
    );
    let payload = bytes::Bytes::from(vec![1u8; 64 << 10]);
    cache.put(RankId(0), "hot", payload.clone());
    c.bench_function("cache_get_local_dram_64k", |bench| {
        bench.iter(|| black_box(cache.get(RankId(0), "hot")))
    });
    c.bench_function("cache_put_64k", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            black_box(cache.put(RankId(0), &format!("obj{}", i % 512), payload.clone()))
        })
    });
}

fn bench_molgen(c: &mut Criterion) {
    let gen = MoleculeGenerator::default_model(5);
    c.bench_function("molgen_generate", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            black_box(gen.generate(i))
        })
    });
}

criterion_group!(
    benches,
    bench_smith_waterman,
    bench_dtba,
    bench_docking_score,
    bench_dictionary,
    bench_hash_join,
    bench_vector_search,
    bench_cache,
    bench_molgen
);
criterion_main!(benches);
