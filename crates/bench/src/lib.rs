//! # ids-bench — experiment harness
//!
//! One binary per paper table/figure (see `src/bin/`) plus Criterion
//! micro-benchmarks (see `benches/`). Shared helpers live here.

pub mod ncnpr_setup;
pub mod reporting;
