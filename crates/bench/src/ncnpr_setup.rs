//! Shared NCNPR experiment setup used by the Figure 4 / Figure 5 / Table 2
//! binaries.
//!
//! ## Calibration (documented in EXPERIMENTS.md)
//!
//! The paper's runs compare ≈ 66 M UniProt sequences against the target and
//! scan a ≈ 100 B-triple graph. Our synthetic slice is 10³–10⁶× smaller, so
//! each simulated evaluation *represents* many paper-scale evaluations.
//! Virtual costs are multiplied by the representation factor:
//!
//! * `analytics_scale = 66e6 / candidate_rows` — applied to SW and pIC50
//!   (the bulk per-sequence filters);
//! * `dtba_scale` — DTBA runs on post-similarity survivors ("thousands of
//!   AI inferences" at paper scale vs ~56 here), so it gets its own, much
//!   smaller factor;
//! * `scan/join per-triple costs × (100e9 / triples)` — each stored triple
//!   represents that many paper triples.
//!
//! Docking is never scaled: candidate counts (55–1129) are matched
//! directly, and per-ligand cost is already calibrated to 31–44 s.

use ids_cache::CacheManager;
use ids_core::workflow::{install_workflow, WorkflowModels};
use ids_core::{IdsConfig, IdsInstance};
use ids_workloads::ncnpr::{build, Band, NcnprConfig, NcnprDataset};
use std::sync::Arc;

/// Paper-scale constants the calibration targets.
pub const PAPER_SEQUENCES: f64 = 66.0e6;
pub const PAPER_TRIPLES: f64 = 100.0e9;

/// A ready-to-query NCNPR instance.
pub struct NcnprBench {
    pub inst: IdsInstance,
    pub dataset: NcnprDataset,
    /// SW/pIC50 virtual-cost multiplier used.
    pub analytics_scale: f64,
}

/// Build options for the bench instance.
pub struct NcnprBenchOptions {
    /// Cluster nodes (× 32 ranks each, the paper's shape).
    pub nodes: u32,
    /// Ranks per node.
    pub ranks_per_node: u32,
    /// Extra bulk band (proteins, compounds-per-protein) supplying SW
    /// volume below every threshold; (0, 0) disables.
    pub bulk: (usize, usize),
    /// DTBA virtual-cost multiplier.
    pub dtba_scale: f64,
    /// Attach this shared cache.
    pub cache: Option<Arc<CacheManager>>,
    /// When true (default), multiply virtual costs up to paper scale
    /// (66 M sequences / 100 B triples). The Table 2 cache testbed hosts
    /// its actual small dataset, so it runs unscaled.
    pub paper_scale: bool,
    /// Root seed.
    pub seed: u64,
}

impl Default for NcnprBenchOptions {
    fn default() -> Self {
        Self {
            nodes: 64,
            ranks_per_node: 32,
            bulk: (2000, 24),
            dtba_scale: 2.0,
            cache: None,
            paper_scale: true,
            seed: 7,
        }
    }
}

/// Build the dataset + instance with paper-calibrated virtual costs.
pub fn build_ncnpr_instance(opts: NcnprBenchOptions) -> NcnprBench {
    let mut cfg = IdsConfig::cray_ex(opts.nodes, opts.seed);
    cfg.topology = ids_simrt::Topology::new(opts.nodes, opts.ranks_per_node);
    let mut inst = IdsInstance::launch(cfg);
    if let Some(cache) = opts.cache.clone() {
        inst.attach_cache(cache);
    }

    // Dataset: Table 2 bands plus the bulk SW band.
    let mut ncfg = NcnprConfig::default();
    if opts.bulk.0 > 0 {
        ncfg.bands.push(Band {
            mutation_rate: 0.62,
            // Bulk volume only needs to sit below every sweep threshold;
            // skip the (expensive) per-member rejection sampling.
            similarity_range: None,
            proteins: opts.bulk.0,
            compounds_per_protein: opts.bulk.1,
        });
    }
    ncfg.seed = opts.seed ^ 0x29274;
    let dataset = build(inst.datastore(), &ncfg);

    // Calibrate virtual costs to paper scale (or run the dataset as-is).
    let analytics_scale =
        if opts.paper_scale { PAPER_SEQUENCES / dataset.compounds.max(1) as f64 } else { 1.0 };
    let triple_scale =
        if opts.paper_scale { PAPER_TRIPLES / dataset.triples.max(1) as f64 } else { 1.0 };
    {
        let exec = inst.exec_options_mut();
        exec.scan_secs_per_triple = 2.0e-8 * triple_scale;
        exec.join_secs_per_row = 2.0e-8 * triple_scale;
    }

    let mut models = WorkflowModels::paper_models();
    models.analytics_scale = analytics_scale;
    models.dtba_scale = opts.dtba_scale;
    let target = dataset.target.clone();
    install_workflow(&mut inst, &target, models);

    NcnprBench { inst, dataset, analytics_scale }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_core::workflow::{repurposing_query, RepurposingThresholds};

    #[test]
    fn small_instance_runs_the_full_query() {
        // Tiny cluster + tiny bulk so the test stays fast.
        let bench = build_ncnpr_instance(NcnprBenchOptions {
            nodes: 2,
            ranks_per_node: 4,
            bulk: (20, 2),
            dtba_scale: 1.0,
            cache: None,
            paper_scale: true,
            seed: 3,
        });
        let mut inst = bench.inst;
        let q = repurposing_query(&RepurposingThresholds {
            sw_similarity: 0.9,
            min_pic50: 3.0,
            min_dtba: 3.0,
        });
        let out = inst.query(&q).expect("query runs");
        // The tight band's 56 compounds reach docking (±pIC50 clamp edge).
        assert!(
            (50..=57).contains(&out.solutions.len()),
            "docked candidates {}",
            out.solutions.len()
        );
        // Docking runs at paper-calibrated cost (31–44 s per ligand,
        // max-bound across ranks). At this tiny 8-rank scale the calibrated
        // SW filter legitimately dominates (it represents 66 M sequences on
        // 8 ranks); the paper-shape docking dominance is asserted by the
        // fig4 experiment at 2048+ ranks, not here.
        let docking = out.breakdown.apply_secs.get("vina_docking").copied().unwrap_or(0.0);
        assert!(docking > 30.0, "docking stage {docking}");
        assert!(out.breakdown.filter_secs > 0.0);
        assert!(out.elapsed_secs > docking);
    }
}
