//! Experiment T1 — regenerate **Table 1: Knowledge Graph Dataset
//! Characteristics**.
//!
//! Generates the seven synthetic sources at a scale factor (default 2e-7 ≈
//! 20 K triples total; override with `--scale <f>`), ingests them into the
//! 3-in-1 datastore, and prints the regenerated table alongside the
//! paper's published numbers. The *ratios* (who dominates, bytes/triple
//! per source) are scale-invariant and must match the paper.

use ids_bench::reporting::{section, table};
use ids_core::Datastore;
use ids_workloads::sources::{generate_all, SourceKind};

fn main() {
    let scale: f64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0e-7);

    section(&format!("Table 1: Knowledge Graph Dataset Characteristics (scale = {scale:e})"));

    let ds = Datastore::new(64);
    let stats = generate_all(&ds, scale, 42);
    ds.build_indexes();

    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.kind.name().to_string(),
                human_bytes(s.est_raw_bytes),
                format!("{}", s.triples),
                human_bytes(s.kind.paper_raw_bytes()),
                human_triples(s.kind.paper_triples()),
            ]
        })
        .collect();
    table(&["Dataset", "Raw Size (est)", "Triples (gen)", "Paper Raw", "Paper Triples"], &rows);

    let total_gen: u64 = stats.iter().map(|s| s.triples).sum();
    let total_paper: u64 = SourceKind::ALL.iter().map(|k| k.paper_triples()).sum();
    println!("\nGenerated triples: {total_gen} (datastore holds {})", ds.triple_count());
    println!("Paper total:       {total_paper} (>100 billion facts)");
    let uniprot_frac_gen = stats
        .iter()
        .find(|s| s.kind == SourceKind::UniProt)
        .map(|s| s.triples as f64 / total_gen as f64)
        .unwrap_or(0.0);
    let uniprot_frac_paper = SourceKind::UniProt.paper_triples() as f64 / total_paper as f64;
    println!(
        "UniProt share:     generated {:.1}% vs paper {:.1}% (shape check)",
        uniprot_frac_gen * 100.0,
        uniprot_frac_paper * 100.0
    );
}

fn human_bytes(b: u64) -> String {
    const TB: f64 = 1.0e12;
    const GB: f64 = 1.0e9;
    const MB: f64 = 1.0e6;
    const KB: f64 = 1.0e3;
    let b = b as f64;
    if b >= TB {
        format!("{:.1} TB", b / TB)
    } else if b >= GB {
        format!("{:.1} GB", b / GB)
    } else if b >= MB {
        format!("{:.1} MB", b / MB)
    } else {
        format!("{:.1} KB", b / KB)
    }
}

fn human_triples(t: u64) -> String {
    if t >= 1_000_000_000 {
        format!("{:.1} B", t as f64 / 1.0e9)
    } else {
        format!("{:.0} M", t as f64 / 1.0e6)
    }
}
