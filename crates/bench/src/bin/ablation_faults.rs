//! Experiment X5 — fault-injection ablation (robustness plane).
//!
//! Runs the NCNPR re-purposing query under deterministic fault schedules
//! and reports the **virtual-time overhead** each fault class adds over
//! the fault-free baseline, while asserting result equivalence — the
//! same contract `tests/chaos_faults.rs` enforces in CI:
//!
//! 1. **Fault-class ladder** — baseline vs node crashes, transient FAM
//!    failures, degraded links, straggler ranks, and the full chaos mix.
//! 2. **Transient-probability sweep** — how retry/backoff absorbs rising
//!    FAM failure rates until deadlines start to bite.
//! 3. **Metrics dump** — the fault/retry/degradation counters a chaos
//!    run leaves behind in the `ids-obs` snapshot.

use ids_bench::reporting::{metrics_dump, secs, section, table};
use ids_cache::{BackingStore, CacheConfig, CacheManager};
use ids_core::workflow::{
    install_workflow, repurposing_query, RepurposingThresholds, WorkflowModels,
};
use ids_core::{IdsConfig, IdsInstance, QueryOutcome};
use ids_simrt::faults::{CrashConfig, LinkConfig, StorageConfig, StragglerConfig, TransientConfig};
use ids_simrt::{FaultConfig, FaultPlane, NetworkModel, Topology};
use ids_workloads::ncnpr::{build, Band, NcnprConfig};
use std::sync::Arc;

const SEED: u64 = 3;

fn dataset_config() -> NcnprConfig {
    NcnprConfig {
        bands: vec![
            Band {
                mutation_rate: 0.0,
                similarity_range: None,
                proteins: 3,
                compounds_per_protein: 4,
            },
            Band {
                mutation_rate: 0.62,
                similarity_range: Some((0.21, 0.39)),
                proteins: 5,
                compounds_per_protein: 2,
            },
        ],
        background_proteins: 10,
        ..NcnprConfig::default()
    }
}

/// Fault windows are millisecond-scale because the test-model workflow
/// spans a few virtual milliseconds — the run then crosses several
/// windows, just as a paper-scale run crosses second-scale ones.
fn ms_chaos() -> FaultConfig {
    FaultConfig {
        crash: Some(CrashConfig { mean_uptime_secs: 2.0e-3, mean_downtime_secs: 0.5e-3 }),
        transient: Some(TransientConfig { fail_prob: 0.05 }),
        link: Some(LinkConfig {
            mean_healthy_secs: 1.0e-3,
            mean_degraded_secs: 0.4e-3,
            latency_mult: 8.0,
            bandwidth_mult: 0.25,
        }),
        straggler: Some(StragglerConfig { fraction: 0.25, slowdown: 3.0 }),
        storage: Some(StorageConfig { bit_rot_prob: 0.02, torn_write_prob: 0.01 }),
        permanent: None,
    }
}

fn launch(faults: Option<FaultConfig>) -> IdsInstance {
    launch_rf(faults, 1).0
}

fn launch_rf(faults: Option<FaultConfig>, replication: usize) -> (IdsInstance, Arc<CacheManager>) {
    let topo = Topology::new(4, 2);
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 64 << 20, 256 << 20).with_replication(replication),
        BackingStore::default_store(),
    ));
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), 11);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    inst.attach_cache(Arc::clone(&cache));
    if let Some(fc) = faults {
        inst.attach_faults(Arc::new(FaultPlane::new(
            SEED,
            fc,
            topo.nodes(),
            topo.total_ranks(),
            10.0,
        )));
    }
    let dataset = build(inst.datastore(), &dataset_config());
    let target = dataset.target.clone();
    install_workflow(&mut inst, &target, WorkflowModels::test_models());
    (inst, cache)
}

fn query() -> String {
    repurposing_query(&RepurposingThresholds { sw_similarity: 0.9, min_pic50: 3.0, min_dtba: 3.0 })
}

fn rows(inst: &IdsInstance, out: &QueryOutcome) -> Vec<String> {
    let ds = inst.datastore();
    let mut v: Vec<String> = out
        .solutions
        .rows()
        .iter()
        .map(|r| {
            format!(
                "{} {:.12}",
                ds.decode(r[1]).unwrap(),
                ds.decode(r[2]).unwrap().as_f64().unwrap()
            )
        })
        .collect();
    v.sort();
    v
}

/// Run the query twice: a cold pass that populates the cache and a warm
/// pass that hits it. The warm pass is where the FAM fault surface lives
/// (a cold run misses straight to the backing store), so overheads are
/// reported for both.
fn cold_warm(inst: &mut IdsInstance) -> (QueryOutcome, QueryOutcome) {
    let cold = inst.query(&query()).unwrap();
    inst.reset_clocks();
    let warm = inst.query(&query()).unwrap();
    (cold, warm)
}

fn main() {
    let mut base = launch(None);
    let (base_cold, base_warm) = cold_warm(&mut base);
    let base_rows = rows(&base, &base_cold);
    let (cold_base, warm_base) = (base_cold.elapsed_secs, base_warm.elapsed_secs);

    // ---- 1. fault-class ladder ---------------------------------------------
    section("X5a: virtual-time overhead per fault class (NCNPR query, seed 3)");
    let schedules: Vec<(&str, FaultConfig)> = vec![
        ("node crashes", FaultConfig::crashes_only(2.0e-3, 0.5e-3)),
        ("transient FAM (p=0.2)", FaultConfig::transient_only(0.2)),
        (
            "degraded links",
            FaultConfig::link_only(LinkConfig {
                mean_healthy_secs: 1.0e-3,
                mean_degraded_secs: 0.6e-3,
                latency_mult: 10.0,
                bandwidth_mult: 0.2,
            }),
        ),
        ("stragglers (50% @ 4x)", FaultConfig::stragglers_only(0.5, 4.0)),
        ("full chaos mix", ms_chaos()),
    ];
    let mut out_rows = vec![vec![
        "fault-free baseline".to_string(),
        secs(cold_base),
        secs(warm_base),
        "1.00x".to_string(),
        "-".to_string(),
    ]];
    let mut chaos_inst = None;
    for (label, fc) in schedules {
        let is_chaos = label == "full chaos mix";
        let mut inst = launch(Some(fc));
        let (cold, warm) = cold_warm(&mut inst);
        let equivalent = rows(&inst, &cold) == base_rows
            && rows(&inst, &warm) == base_rows
            && !cold.degraded()
            && !warm.degraded();
        out_rows.push(vec![
            label.to_string(),
            secs(cold.elapsed_secs),
            secs(warm.elapsed_secs),
            format!("{:.2}x", warm.elapsed_secs / warm_base),
            if equivalent { "identical".into() } else { "DIVERGED".into() },
        ]);
        assert!(equivalent, "{label}: fault run diverged from baseline");
        if is_chaos {
            chaos_inst = Some(inst);
        }
    }
    table(
        &["schedule", "cold secs", "warm secs", "warm overhead", "result vs baseline"],
        &out_rows,
    );

    // ---- 2. transient-probability sweep ------------------------------------
    section("X5b: transient FAM failure-probability sweep (warm cache)");
    let mut out_rows = Vec::new();
    for p in [0.0, 0.1, 0.3, 0.5, 0.8] {
        let mut inst = launch(Some(FaultConfig::transient_only(p)));
        let (cold, warm) = cold_warm(&mut inst);
        assert_eq!(rows(&inst, &cold), base_rows, "p={p}: diverged (cold)");
        assert_eq!(rows(&inst, &warm), base_rows, "p={p}: diverged (warm)");
        let snap = inst.metrics_snapshot();
        out_rows.push(vec![
            format!("{p:.1}"),
            secs(warm.elapsed_secs),
            format!("{:.2}x", warm.elapsed_secs / warm_base),
            snap.counter("ids_cache_retries_total", "").to_string(),
            snap.counter("ids_cache_deadline_timeouts_total", "").to_string(),
        ]);
    }
    table(&["fail prob", "warm secs", "overhead", "cache retries", "deadline timeouts"], &out_rows);
    println!("\nshape check: retries grow with the failure rate while results stay identical;");
    println!("the backoff cost is charged to the virtual clock, never hidden");

    // ---- 3. metrics dump ----------------------------------------------------
    let inst = chaos_inst.expect("chaos run recorded above");
    let snap = inst.metrics_snapshot();
    metrics_dump("X5c: fault/retry/degradation metrics after the full chaos run", &snap);

    // ---- 4. replication-factor ladder --------------------------------------
    section("X5d: replication factor under aggressive node crashes");
    let mut out_rows = Vec::new();
    for rf in [1usize, 2, 3] {
        // Nodes spend almost half their time down so warm reads keep
        // crossing crash windows; several warm passes accumulate the
        // failover / re-population trade-off the ladder is about.
        let (mut inst, cache) = launch_rf(Some(FaultConfig::crashes_only(1.0e-3, 0.8e-3)), rf);
        let cold = inst.query(&query()).unwrap();
        assert_eq!(rows(&inst, &cold), base_rows, "rf={rf}: diverged (cold)");
        let mut warm_secs = 0.0;
        for pass in 0..4 {
            inst.reset_clocks();
            let warm = inst.query(&query()).unwrap();
            assert_eq!(rows(&inst, &warm), base_rows, "rf={rf}: diverged (warm pass {pass})");
            warm_secs += warm.elapsed_secs;
        }
        let snap = inst.metrics_snapshot().merge(&cache.metrics().snapshot());
        out_rows.push(vec![
            format!("{rf}"),
            secs(cold.elapsed_secs),
            secs(warm_secs / 4.0),
            snap.counter("ids_cache_failover_reads_total", "").to_string(),
            snap.counter("ids_cache_repopulations_total", "").to_string(),
            snap.counter("ids_cache_repairs_total", "re_replicate").to_string(),
        ]);
    }
    table(
        &[
            "replication",
            "cold secs",
            "mean warm secs",
            "failover reads",
            "re-populations",
            "re-replications",
        ],
        &out_rows,
    );
    println!("\nshape check: extra replicas trade write amplification (cold) for crash");
    println!("absorption — failover reads replace backing re-populations as rf grows");
}
