//! Experiment X7 — columnar batched execution ablation.
//!
//! Runs the same join+FILTER-heavy NCNPR workload twice on identically
//! built instances: once with the legacy row-at-a-time cost model and
//! once with the columnar batch-at-a-time engine (the default). Three
//! invariants from the PR acceptance are asserted, not just printed:
//!
//! 1. the two modes produce **byte-identical** solution sets (same
//!    schema, same rows, same order — the columnar flag only changes the
//!    cost model, never the data plane),
//! 2. columnar execution is at least 1.5x faster in total virtual time
//!    on this eval-overhead-dominated workload,
//! 3. cache byte accounting is **exact**: the serialized checkpoint's
//!    `encoded_len()` equals `encode().len()` byte for byte (no
//!    8-bytes-per-cell estimates anywhere in the admission path).
//!
//! Results also land in `bench_results/columnar.json` (hand-rolled JSON
//! — no serde_json in the vendored set).

use ids_bench::reporting::{section, table};
use ids_cache::{IntermediateSolutions, TypedSolutionSet};
use ids_core::engine::QueryOutcome;
use ids_core::{IdsConfig, IdsInstance};
use ids_simrt::Topology;
use ids_workloads::ncnpr::{build, Band, NcnprConfig};
use std::fmt::Write as _;

const SEED: u64 = 11;

/// Join-heavy dataset: every compound→protein edge survives the FILTER,
/// so the filter stage runs over thousands of joined rows and the
/// per-row dispatch overhead — the thing batching amortizes — dominates.
fn dataset_config() -> NcnprConfig {
    NcnprConfig {
        bands: vec![
            Band {
                mutation_rate: 0.0,
                similarity_range: None,
                proteins: 200,
                compounds_per_protein: 24,
            },
            Band {
                mutation_rate: 0.5,
                similarity_range: Some((0.2, 0.4)),
                proteins: 200,
                compounds_per_protein: 24,
            },
        ],
        background_proteins: 200,
        ..NcnprConfig::default()
    }
}

/// Three patterns (two distributed joins) and a three-conjunct FILTER of
/// plain comparisons: no UDF time to drown out the per-row engine
/// overhead the columnar path amortizes.
fn workload_query() -> &'static str {
    "SELECT ?c ?p WHERE { ?c <chembl:inhibits> ?p . \
                          ?p <up:reviewed> ?r . \
                          ?p <rdf:type> <up:Protein> . \
       FILTER(?r >= 0 && ?r <= 1 && ?r != 2) }"
}

struct Run {
    mode: &'static str,
    rows: usize,
    total_virtual_secs: f64,
    batches: u64,
    mean_batch_rows: f64,
    outcome: QueryOutcome,
}

fn run_mode(columnar: bool) -> Run {
    let topo = Topology::new(4, 2);
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), SEED);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    build(inst.datastore(), &dataset_config());
    inst.exec_options_mut().columnar = columnar;

    let outcome = inst.query(workload_query()).expect("workload query runs clean");
    let snap = inst.metrics_snapshot();
    let batches = snap.counter_sum("ids_engine_batches_total");
    let occupancy = snap
        .histograms
        .iter()
        .find(|(k, _)| k.name == "ids_engine_batch_rows")
        .map(|(_, h)| h.mean())
        .unwrap_or(0.0);
    Run {
        mode: if columnar { "columnar" } else { "row" },
        rows: outcome.solutions.len(),
        total_virtual_secs: outcome.elapsed_secs,
        batches,
        mean_batch_rows: occupancy,
        outcome,
    }
}

/// The honest-accounting check: serialize the final solution set the way
/// a reuse checkpoint would and require the O(1) size computation to
/// match the real wire bytes exactly — this is the number `CacheManager`
/// caps and `put_ephemeral` limits charge against.
fn assert_exact_accounting(out: &QueryOutcome) -> (u64, u64) {
    let typed = TypedSolutionSet {
        vars: out.solutions.vars().to_vec(),
        rows: out.solutions.rows().iter().map(|r| r.iter().map(|t| t.raw()).collect()).collect(),
    };
    let obj = IntermediateSolutions {
        fingerprint: 0x1D5_C01,
        pre_filter_counts: vec![out.solutions.len() as u64],
        sets: vec![typed],
    };
    let computed = obj.encoded_len() as u64;
    let actual = obj.encode().len() as u64;
    assert_eq!(
        computed, actual,
        "encoded_len must equal the measured serialized size byte for byte"
    );
    (computed, actual)
}

fn write_json(row: &Run, col: &Run, speedup: f64, bytes: u64) -> std::io::Result<()> {
    let mut j = String::new();
    j.push_str("{\n  \"experiment\": \"ablation_columnar\",\n");
    let _ = writeln!(j, "  \"seed\": {SEED},");
    let _ = writeln!(j, "  \"query_rows\": {},", col.rows);
    j.push_str("  \"runs\": [\n");
    for (i, r) in [row, col].iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"mode\": \"{}\", \"total_virtual_secs\": {:.9}, \
             \"batches\": {}, \"mean_batch_rows\": {:.1}}}",
            r.mode, r.total_virtual_secs, r.batches, r.mean_batch_rows,
        );
        j.push_str(if i == 0 { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");
    let _ = writeln!(j, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(j, "  \"byte_identical_results\": true,");
    let _ = writeln!(j, "  \"checkpoint_bytes_exact\": {bytes}");
    j.push_str("}\n");
    std::fs::create_dir_all("bench_results")?;
    std::fs::write("bench_results/columnar.json", j)
}

fn main() {
    section("X7: columnar batched execution — row vs batch cost model");
    let row = run_mode(false);
    let col = run_mode(true);

    // 1. Byte-identical results: same schema, same rows, same order.
    assert_eq!(row.outcome.solutions.vars(), col.outcome.solutions.vars(), "schemas match");
    assert_eq!(
        row.outcome.solutions.rows(),
        col.outcome.solutions.rows(),
        "columnar execution must reproduce the row engine's rows exactly"
    );
    assert!(row.rows > 1000, "workload must be join-heavy, got {} rows", row.rows);
    assert_eq!(row.batches, 0, "row mode fires no batch counters");
    assert!(col.batches > 0, "columnar mode meters its batches");

    // 2. The virtual-time win the batch dispatch model exists to deliver.
    let speedup = row.total_virtual_secs / col.total_virtual_secs;
    assert!(
        speedup >= 1.5,
        "columnar must be >= 1.5x faster on this workload: row={:.9}s col={:.9}s ({speedup:.2}x)",
        row.total_virtual_secs,
        col.total_virtual_secs
    );

    // 3. Honest byte accounting on the serialized intermediates.
    let (bytes, _) = assert_exact_accounting(&col.outcome);

    let rows_tbl: Vec<Vec<String>> = [&row, &col]
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                r.rows.to_string(),
                format!("{:.9}s", r.total_virtual_secs),
                r.batches.to_string(),
                format!("{:.1}", r.mean_batch_rows),
            ]
        })
        .collect();
    table(&["mode", "result rows", "virtual total", "batches", "mean batch rows"], &rows_tbl);
    println!(
        "\ncolumnar speedup: {speedup:.2}x ({:.9}s -> {:.9}s), results byte-identical, \
         checkpoint accounting exact at {bytes} bytes",
        row.total_virtual_secs, col.total_virtual_secs
    );

    write_json(&row, &col, speedup, bytes).expect("write bench_results/columnar.json");
    println!("wrote bench_results/columnar.json");
}
