//! Experiment F5 — regenerate **Figure 5: NCNPR Drug Repurposing Filter
//! Times**.
//!
//! Measures the *inner FILTER* (Smith–Waterman + pIC50 + DTBA) in
//! isolation — the paper reports ≈ 27 / 18.5 / 7.7 s at 64 / 128 / 256
//! nodes — plus the DTBA per-call variance the paper highlights ("most
//! ≈ 1 s, some longer"), which is what makes throughput-based re-balancing
//! matter.
//!
//! Usage: `fig5_filter [--quick]`.

use ids_bench::ncnpr_setup::{build_ncnpr_instance, NcnprBenchOptions};
use ids_bench::reporting::{secs, section, table};
use ids_core::workflow::{repurposing_query, RepurposingThresholds};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bulk = if quick { (400, 12) } else { (2000, 24) };

    section("Figure 5: NCNPR inner FILTER times (virtual seconds)");
    println!("paper reference: FILTER ≈ 27 / 18.5 / 7.7 s at 64 / 128 / 256 nodes\n");

    // The filter-only query: same patterns and filters, no docking stage
    // (and no ?energy projection, which only the APPLY stage binds).
    let thresholds = RepurposingThresholds { sw_similarity: 0.9, min_pic50: 3.0, min_dtba: 3.0 };
    let full = repurposing_query(&thresholds);
    let filter_only = full
        .lines()
        .filter(|l| !l.contains("APPLY"))
        .map(|l| if l.starts_with("SELECT") { "SELECT ?compound ?smiles" } else { l })
        .collect::<Vec<_>>()
        .join("\n");

    let mut rows = Vec::new();
    for nodes in [64u32, 128, 256] {
        let bench =
            build_ncnpr_instance(NcnprBenchOptions { nodes, bulk, ..NcnprBenchOptions::default() });
        let mut inst = bench.inst;
        let out = inst.query(&filter_only).expect("query runs");
        rows.push(vec![
            nodes.to_string(),
            (nodes * 32).to_string(),
            secs(out.breakdown.filter_secs),
            secs(out.elapsed_secs),
            out.solutions.len().to_string(),
        ]);
    }
    table(&["nodes", "ranks", "FILTER (s)", "query total (s)", "survivors"], &rows);

    // DTBA variance: per-call virtual costs across a candidate sample.
    section("DTBA per-prediction variance (paper: most ≈ 1 s, some longer)");
    let model = ids_models::DtbaModel::pretrained();
    let mut rng = ids_simrt::rng::SplitMix64::new(0xf5, 1);
    let target = ids_chem::ProteinSequence::random(412, &mut rng);
    let gen = ids_models::MoleculeGenerator::default_model(9);
    let mut costs: Vec<f64> =
        (0..200).map(|i| model.predict(&target, &gen.generate(i).smiles).virtual_secs).collect();
    costs.sort_by(f64::total_cmp);
    let pct = |p: f64| costs[((costs.len() - 1) as f64 * p) as usize];
    table(
        &["p10", "p50", "p90", "p99", "max"],
        &[vec![
            secs(pct(0.10)),
            secs(pct(0.50)),
            secs(pct(0.90)),
            secs(pct(0.99)),
            secs(*costs.last().unwrap()),
        ]],
    );
    let tail_ratio = costs.last().unwrap() / pct(0.50);
    println!("\ntail/median ratio: {tail_ratio:.2}x (heavy tail justifies per-rank re-balancing)");
}
