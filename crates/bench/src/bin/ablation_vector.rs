//! Experiment X5 — similarity-search ablation.
//!
//! The paper's "what-could-be" query "executes millions of similarity
//! searches" (§1). This bench quantifies the exact-vs-IVF trade the
//! vector-store face offers: recall@10 and real search time per query as
//! `nprobe` sweeps, over a 100 K × 32-d corpus.

use ids_bench::reporting::{section, table};
use ids_simrt::rng::SplitMix64;
use ids_vector::store::{Metric, VectorStore};
use ids_vector::IvfIndex;
use std::time::Instant;

fn main() {
    let dim = 32;
    let n = 100_000u64;
    let n_queries = 200;
    let k = 10;

    let mut rng = SplitMix64::new(0x7ec, 1);
    let mut store = VectorStore::new(dim);
    // Clustered corpus: 64 centers with gaussian spread (realistic
    // embedding geometry; uniform corpora make IVF look artificially bad).
    let centers: Vec<Vec<f32>> = (0..64)
        .map(|_| (0..dim).map(|_| rng.next_range(-1.0, 1.0) as f32 * 10.0).collect())
        .collect();
    for i in 0..n {
        let c = &centers[(i % 64) as usize];
        let v: Vec<f32> = c.iter().map(|&x| x + rng.next_gaussian() as f32).collect();
        store.insert(i, &v);
    }
    let queries: Vec<Vec<f32>> = (0..n_queries)
        .map(|qi| {
            let c = &centers[qi % 64];
            c.iter().map(|&x| x + rng.next_gaussian() as f32).collect()
        })
        .collect();

    section(&format!("X5: exact vs IVF search, {n} x {dim}-d corpus, {n_queries} queries"));

    // Exact baseline + ground truth.
    let t0 = Instant::now();
    let truth: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| store.search(q, k, Metric::L2).into_iter().map(|h| h.id).collect())
        .collect();
    let exact_us = t0.elapsed().as_micros() as f64 / n_queries as f64;

    let build_start = Instant::now();
    let index = IvfIndex::build(&store, 64, 8, 42);
    let build_ms = build_start.elapsed().as_millis();

    let mut rows = vec![vec![
        "exact scan".to_string(),
        format!("{exact_us:.0} us"),
        "100.0%".to_string(),
        "1.0x".to_string(),
    ]];
    for nprobe in [1usize, 2, 4, 8, 16, 64] {
        let t0 = Instant::now();
        let mut hits_found = 0usize;
        for (q, t) in queries.iter().zip(&truth) {
            let got: Vec<u64> = index.search(q, k, nprobe).into_iter().map(|h| h.id).collect();
            hits_found += got.iter().filter(|id| t.contains(id)).count();
        }
        let us = t0.elapsed().as_micros() as f64 / n_queries as f64;
        let recall = hits_found as f64 / (n_queries * k) as f64;
        rows.push(vec![
            format!("IVF nprobe={nprobe}"),
            format!("{us:.0} us"),
            format!("{:.1}%", recall * 100.0),
            format!("{:.1}x", exact_us / us),
        ]);
    }
    table(&["method", "time/query (real)", "recall@10", "speedup"], &rows);
    println!("\nindex build: {build_ms} ms (64 lists, 8 k-means iterations)");
    println!("shape check: small nprobe trades recall for large speedups; full probe = exact");
}
