//! Experiment X12 — adaptive cost-based planning and mid-query
//! re-optimization ablation.
//!
//! Three datasets, each queried with the static cardinality-greedy
//! planner (`adaptive = false`) and the adaptive cost-based planner
//! (`adaptive = true`), byte-identical results required everywhere:
//!
//! 1. **Skewed** — an NDV trap. The cheapest pattern by cardinality
//!    (`?t <ingroup> ?g`, 90 rows) joins `?s <group> ?g` on a
//!    two-value variable, so the greedy heuristic walks into a
//!    90×50 = 4500-row intermediate. The cost model sees the tiny
//!    object NDV through the statistics catalog and defers that join
//!    to the end (max intermediate ≈ 120 rows). Adaptive must finish
//!    **≥ 1.3× faster** on the virtual clock.
//! 2. **Correlated** — the chaos-matrix trap (two value sets with
//!    healthy NDVs but almost no overlap). Estimates mislead *both*
//!    planners equally; the adaptive run detects the 10× divergence at
//!    the stage boundary and re-plans the remaining suffix, so it must
//!    re-plan ≥ 1 time and finish no slower than static.
//! 3. **Uniform** — no skew, no correlation: containment estimates are
//!    exact, both planners pick the same order, and adaptive must land
//!    **within 2%** of static (no adaptivity tax on good plans).
//!
//! Results land in `bench_results/adaptive.json` (hand-rolled JSON —
//! no serde_json in the vendored set).

use ids_bench::reporting::{section, table};
use ids_core::engine::QueryOutcome;
use ids_core::{IdsConfig, IdsInstance};
use ids_graph::Term;
use ids_simrt::Topology;
use std::fmt::Write as _;

const SEED: u64 = 13;

/// 4 nodes × 2 ranks: small enough that per-row join and exchange work
/// dominates the virtual clock, which is exactly what the planner's
/// intermediate sizes move.
fn instance() -> IdsInstance {
    let topo = Topology::new(4, 2);
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), SEED);
    cfg.topology = topo;
    IdsInstance::launch(cfg)
}

fn fact(inst: &IdsInstance, s: String, p: &str, o: String) {
    inst.datastore().add_fact(&Term::iri(s), &Term::iri(p), &Term::iri(o));
}

const SKEWED_QUERY: &str = "SELECT ?s ?g ?t WHERE { ?s <rdf:type> <lab> . \
     ?s <group> ?g . ?t <ingroup> ?g . ?s <link> ?t . }";

/// The NDV trap. `<ingroup>` is the cheapest pattern (270 rows) so the
/// greedy heuristic seeds with it and then joins `<group>` on `?g` —
/// a variable with only **two** distinct values — exploding to
/// 270 × 150 = 40 500 rows. The cost model prices that join at
/// `270·300/max(2,2)` and pushes `<ingroup>` last, where `?t` and `?g`
/// are both bound and the join only filters.
fn build_skewed(inst: &IdsInstance) {
    for i in 0..300 {
        fact(inst, format!("s{i}"), "rdf:type", "lab".into());
        fact(inst, format!("s{i}"), "group", format!("g{}", i % 2));
    }
    for j in 0..270 {
        fact(inst, format!("t{j}"), "ingroup", format!("g{}", j % 2));
    }
    // 360 links, subjects spanning all 300 `s`s; the ×53 stride keeps
    // `(i·53) % 270` on `i`'s parity, so the first three hundred links
    // land in the subject's own group (they survive the final join)
    // while the `+1` offset of the last sixty crosses groups (filtered
    // out).
    for i in 0..300 {
        fact(inst, format!("s{i}"), "link", format!("t{}", (i * 53) % 270));
    }
    for i in 0..60 {
        fact(inst, format!("s{i}"), "link", format!("t{}", (i * 53 + 1) % 270));
    }
    inst.datastore().build_indexes();
}

const CORRELATED_QUERY: &str =
    "SELECT ?x ?v ?y ?g ?h WHERE { ?x <a> ?v . ?y <b> ?v . ?y <c> ?g . ?x <e> ?h . }";

/// The correlation trap from `tests/chaos_adaptive.rs`: `<a>`'s objects
/// are `v0..v19`, `<b>`'s are `v18..v67` — per-column NDVs (20, 50)
/// price the join at 80 rows, but only 2 values overlap, so 8 rows come
/// out. Both planners start `[a, b, ...]`; only the adaptive run sees
/// the 10× miss at the boundary and flips the remaining suffix
/// (`<e>` before `<c>`), shrinking the third intermediate 132 → 24.
fn build_correlated(inst: &IdsInstance) {
    for i in 0..40 {
        fact(inst, format!("x{i}"), "a", format!("v{}", i / 2));
    }
    for j in 0..100 {
        fact(inst, format!("y{j}"), "b", format!("v{}", 18 + j / 2));
    }
    for y in 0..2 {
        for g in 0..33 {
            fact(inst, format!("y{y}"), "c", format!("g{}", y * 33 + g));
        }
    }
    for i in 0..40 {
        for k in 0..3 {
            fact(inst, format!("x{i}"), "e", format!("h{}", 3 * i + k));
        }
    }
    inst.datastore().build_indexes();
}

/// The uniform control: `<b>`'s objects fully cover `<a>`'s, so the
/// containment estimate is exact, and every NDV is either high or
/// shared — the heuristic order and the cost-based order coincide.
fn build_uniform(inst: &IdsInstance) {
    for i in 0..40 {
        fact(inst, format!("x{i}"), "a", format!("v{}", i / 2));
    }
    for j in 0..100 {
        fact(inst, format!("y{j}"), "b", format!("v{}", j / 2));
    }
    for y in 0..2 {
        for g in 0..33 {
            fact(inst, format!("y{y}"), "c", format!("g{}", y * 33 + g));
        }
    }
    for i in 0..40 {
        for k in 0..3 {
            fact(inst, format!("x{i}"), "e", format!("h{}", 3 * i + k));
        }
    }
    inst.datastore().build_indexes();
}

struct Run {
    mode: &'static str,
    secs: f64,
    checks: u32,
    replans: u32,
    worst_divergence: f64,
    outcome: QueryOutcome,
}

fn run(build: fn(&IdsInstance), query: &str, adaptive: bool) -> Run {
    let mut inst = instance();
    build(&inst);
    inst.exec_options_mut().adaptive = adaptive;
    let outcome = inst.query(query).expect("X12 ablation query must execute");
    Run {
        mode: if adaptive { "adaptive" } else { "static" },
        secs: outcome.elapsed_secs,
        checks: outcome.adaptive.checks,
        replans: outcome.adaptive.replans,
        worst_divergence: outcome.adaptive.worst_divergence(),
        outcome,
    }
}

fn raw_rows(o: &QueryOutcome) -> Vec<Vec<u64>> {
    o.solutions.rows().iter().map(|r| r.iter().map(|t| t.raw()).collect()).collect()
}

struct DatasetResult {
    name: &'static str,
    stat: Run,
    adap: Run,
    speedup: f64,
}

fn run_dataset(name: &'static str, build: fn(&IdsInstance), query: &str) -> DatasetResult {
    section(&format!("X12 / {name}: static heuristic vs adaptive cost-based"));
    let stat = run(build, query, false);
    let adap = run(build, query, true);

    assert!(!stat.outcome.solutions.is_empty(), "{name}: query must produce rows");
    assert_eq!(
        raw_rows(&adap.outcome),
        raw_rows(&stat.outcome),
        "{name}: adaptive rows diverged from the static plan"
    );
    assert_eq!(stat.replans, 0, "{name}: static runs must never re-plan");

    let speedup = stat.secs / adap.secs;
    let rows_tbl: Vec<Vec<String>> = [&stat, &adap]
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{:.6}s", r.secs),
                r.checks.to_string(),
                r.replans.to_string(),
                format!("x{:.1}", r.worst_divergence),
            ]
        })
        .collect();
    table(
        &["planner", "virtual total", "boundary checks", "re-plans", "worst est/actual"],
        &rows_tbl,
    );
    println!("\n{name}: adaptive speedup {speedup:.3}x, byte-identical results");
    DatasetResult { name, stat, adap, speedup }
}

fn write_json(results: &[&DatasetResult]) -> std::io::Result<()> {
    let mut j = String::new();
    j.push_str("{\n  \"experiment\": \"ablation_adaptive\",\n");
    let _ = writeln!(j, "  \"seed\": {SEED},");
    j.push_str("  \"datasets\": [\n");
    for (i, d) in results.iter().enumerate() {
        let _ = writeln!(j, "    {{\"dataset\": \"{}\",", d.name);
        j.push_str("     \"runs\": [\n");
        for (k, r) in [&d.stat, &d.adap].iter().enumerate() {
            let _ = write!(
                j,
                "       {{\"planner\": \"{}\", \"total_virtual_secs\": {:.9}, \
                 \"boundary_checks\": {}, \"replans\": {}, \"worst_divergence\": {:.3}}}",
                r.mode, r.secs, r.checks, r.replans, r.worst_divergence,
            );
            j.push_str(if k == 0 { ",\n" } else { "\n" });
        }
        j.push_str("     ],\n");
        let _ = writeln!(j, "     \"adaptive_speedup\": {:.3},", d.speedup);
        j.push_str("     \"byte_identical_results\": true}");
        j.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    std::fs::create_dir_all("bench_results")?;
    std::fs::write("bench_results/adaptive.json", j)
}

fn main() {
    let skewed = run_dataset("skewed", build_skewed, SKEWED_QUERY);
    assert!(
        skewed.speedup >= 1.3,
        "skewed: adaptive planning must beat the greedy heuristic >= 1.3x \
         (static {:.6}s, adaptive {:.6}s, {:.3}x)",
        skewed.stat.secs,
        skewed.adap.secs,
        skewed.speedup
    );

    let correlated = run_dataset("correlated", build_correlated, CORRELATED_QUERY);
    assert!(
        correlated.adap.replans >= 1,
        "correlated: the trap must force a mid-query re-plan: {:?}",
        correlated.adap.outcome.adaptive
    );
    assert!(
        correlated.adap.secs <= correlated.stat.secs * 1.001,
        "correlated: re-planning must not lose to the static plan \
         (static {:.6}s, adaptive {:.6}s)",
        correlated.stat.secs,
        correlated.adap.secs
    );

    let uniform = run_dataset("uniform", build_uniform, CORRELATED_QUERY);
    assert_eq!(uniform.adap.replans, 0, "uniform: exact estimates must not trigger re-plans");
    let drift = (uniform.adap.secs - uniform.stat.secs).abs() / uniform.stat.secs;
    assert!(
        drift <= 0.02,
        "uniform: adaptive must stay within 2% of static \
         (static {:.6}s, adaptive {:.6}s, drift {:.4})",
        uniform.stat.secs,
        uniform.adap.secs,
        drift
    );

    write_json(&[&skewed, &correlated, &uniform]).expect("write bench_results/adaptive.json");
    println!("wrote bench_results/adaptive.json");
}
