//! Experiment T2 — regenerate **Table 2: Query times for various
//! Smith–Waterman thresholds**, with and without the global cache.
//!
//! The paper sweeps the SW selectivity threshold from 0.99 down to 0.20 on
//! the 52-node cache testbed: candidate counts plateau at 56–57 down to
//! 0.50, jump to 121 at 0.40 and 1129 at 0.20; caching docking outputs
//! yields 5–15× end-to-end improvement.
//!
//! Protocol per threshold: run the query **cold** (empty cache → every
//! docking simulates and stashes), then **warm** (same query again →
//! docking served from the distributed cache). Candidate sets at lower
//! thresholds are supersets of higher ones, so the sweep itself also
//! exercises the paper's overlapping-candidate reuse.
//!
//! Usage: `table2_cache [--quick]` (quick = skip the 0.20 row).

use ids_bench::ncnpr_setup::{build_ncnpr_instance, NcnprBenchOptions};
use ids_bench::reporting::{metrics_dump, secs, section, table};
use ids_cache::{BackingStore, CacheConfig, CacheManager};
use ids_core::workflow::{repurposing_query, RepurposingThresholds};
use ids_simrt::{NetworkModel, Topology};
use std::sync::Arc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    section("Table 2: query times vs Smith-Waterman threshold (virtual seconds)");
    println!("paper reference: 56 compounds ≈ 47.5 s cold / ≈ 9 s warm; 1129 compounds");
    println!("≈ 3847 s cold / ≈ 243 s warm; speed-ups 5-15x\n");

    // Cache testbed: 4 nodes × 32 ranks (2 compute + 2 memory in spirit);
    // the cache spans 2 nodes with DRAM + NVMe tiers over a backing store.
    let nodes = 4u32;
    let ranks_per_node = 32u32;
    let topo = Topology::new(nodes, ranks_per_node);
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 512 << 20, 4 << 30),
        BackingStore::default_store(),
    ));

    let thresholds: &[f64] = if quick {
        &[0.99, 0.90, 0.80, 0.50, 0.40]
    } else {
        &[0.99, 0.90, 0.80, 0.70, 0.60, 0.50, 0.40, 0.20]
    };

    let mut rows = Vec::new();
    for &sw in thresholds {
        // Fresh instance per row, fresh cache for the cold run: each row is
        // its own cold/warm pair, as in the paper's protocol.
        let row_cache = Arc::new(CacheManager::new(
            topo,
            NetworkModel::slingshot(),
            CacheConfig::new(2, 512 << 20, 4 << 30),
            BackingStore::default_store(),
        ));
        let bench = build_ncnpr_instance(NcnprBenchOptions {
            nodes,
            ranks_per_node,
            bulk: (0, 0), // Table 2 uses the banded dataset only
            dtba_scale: 1.0,
            cache: Some(Arc::clone(&row_cache)),
            // The cache testbed hosts its actual (small) dataset; no
            // paper-scale cost multipliers (§5: "smaller scale docking
            // experiments").
            paper_scale: false,
            seed: 7,
        });
        let mut inst = bench.inst;
        let q = repurposing_query(&RepurposingThresholds {
            sw_similarity: sw,
            min_pic50: 3.0,
            min_dtba: 3.0,
        });

        let cold = inst.query(&q).expect("cold query");
        inst.reset_clocks();
        let warm = inst.query(&q).expect("warm query");

        let speedup = cold.elapsed_secs / warm.elapsed_secs.max(1e-9);
        rows.push(vec![
            format!("{sw:.2}"),
            cold.solutions.len().to_string(),
            secs(cold.elapsed_secs),
            secs(warm.elapsed_secs),
            format!("{speedup:.1}x"),
        ]);
        let stats = row_cache.stats();
        eprintln!(
            "  [threshold {sw:.2}] cache: {} hits / {} backing fetches / {} misses, hit rate {:.0}%",
            stats.cache_hits(),
            stats.backing_fetches,
            stats.total_misses,
            stats.hit_rate() * 100.0
        );
    }

    println!();
    table(
        &[
            "Selectivity",
            "Compounds",
            "query time (s) (w/out caching)",
            "query time (s) (with caching)",
            "speedup",
        ],
        &rows,
    );

    // Shared-cache reuse across the sweep (the paper's overlapping
    // candidate sets): run the whole descending sweep against ONE cache.
    section("Overlapping-candidate reuse: descending sweep over one shared cache");
    let mut sweep_rows = Vec::new();
    for &sw in thresholds {
        let bench = build_ncnpr_instance(NcnprBenchOptions {
            nodes,
            ranks_per_node,
            bulk: (0, 0),
            dtba_scale: 1.0,
            cache: Some(Arc::clone(&cache)),
            paper_scale: false,
            seed: 7,
        });
        let mut inst = bench.inst;
        let q = repurposing_query(&RepurposingThresholds {
            sw_similarity: sw,
            min_pic50: 3.0,
            min_dtba: 3.0,
        });
        let out = inst.query(&q).expect("sweep query");
        sweep_rows.push(vec![
            format!("{sw:.2}"),
            out.solutions.len().to_string(),
            secs(out.elapsed_secs),
        ]);
    }
    table(&["Selectivity", "Compounds", "query time (s)"], &sweep_rows);
    println!("\n(each row re-docks only the compounds its threshold newly admits — the");
    println!(" tight band cached at 0.99 is reused by every later query)");

    metrics_dump("ids-obs metrics (shared sweep cache)", &cache.metrics().snapshot());
}
