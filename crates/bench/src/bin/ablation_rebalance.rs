//! Experiment X1 — re-balancing ablation (§2.4.2).
//!
//! Reproduces the paper's worked example — 1.4 M intermediate solutions,
//! 900 ranks (500 @ 100 ops/s, 300 @ 200, 100 @ 300) — comparing
//! count-based and throughput-based plans analytically, then measures the
//! same effect end-to-end on the engine with a rank-heterogeneous UDF.
//!
//! Paper's claim: throughput-based balancing removes the slowest-rank
//! bottleneck (their example: 100 s vs 140 s; the printed arithmetic has a
//! factor-of-10 slip — the self-consistent numbers are 10 s vs ≈ 15.6 s,
//! the same ≈ 1.4–1.6× improvement).

use ids_bench::reporting::{secs, section, table};
use ids_core::engine::RebalanceMode;
use ids_core::{IdsConfig, IdsInstance};
use ids_graph::Term;
use ids_udf::{estimate_completion, plan_count_based, plan_throughput_based, UdfOutput, UdfValue};
use std::sync::Arc;

fn main() {
    section("X1a: the paper's Section 2.4.2 worked example (analytic)");
    let mut rates = vec![100.0; 500];
    rates.extend(vec![200.0; 300]);
    rates.extend(vec![300.0; 100]);
    let total = 1_400_000u64;

    let count_plan = plan_count_based(total, rates.len());
    let thr_plan = plan_throughput_based(total, &rates);
    let t_count = estimate_completion(&count_plan, &rates);
    let t_thr = estimate_completion(&thr_plan, &rates);
    table(
        &["strategy", "slowest-rank load", "completion (s)", "speedup"],
        &[
            vec![
                "count-based".into(),
                count_plan.targets[0].to_string(),
                secs(t_count),
                "1.0x".into(),
            ],
            vec![
                "throughput-based".into(),
                thr_plan.targets[0].to_string(),
                secs(t_thr),
                format!("{:.2}x", t_count / t_thr),
            ],
        ],
    );
    println!(
        "\nper-ratio allocations: 1x ranks -> {}, 2x -> {}, 3x -> {}",
        thr_plan.targets[0], thr_plan.targets[500], thr_plan.targets[800]
    );

    section("X1b: end-to-end on the engine (heterogeneous UDF)");
    // A UDF whose cost depends on which *node* runs it: nodes 0..N/2 are
    // 3x slower (the paper: "execution times can vary across ranks due to
    // factors such as node hardware").
    let mut rows = Vec::new();
    for (label, mode) in [
        ("none", RebalanceMode::None),
        ("count-based", RebalanceMode::CountBased),
        ("throughput-based", RebalanceMode::ThroughputBased),
    ] {
        let mut cfg = IdsConfig::laptop(32, 5);
        cfg.exec.rebalance = mode;
        cfg.exec.udf_cost_prior = 0.1;
        let mut inst = IdsInstance::launch(cfg);
        let ds = inst.datastore();
        // Skewed data: 3/4 of the items hash-cluster onto few subjects.
        for i in 0..4000 {
            let bucket = if i % 4 == 0 { i } else { i % 8 };
            ds.add_fact(
                &Term::iri(format!("item:{i}")),
                &Term::iri("in:bucket"),
                &Term::iri(format!("bucket:{bucket}")),
            );
        }
        ds.build_indexes();
        inst.registry()
            .register_static(
                "slow_check",
                Arc::new(move |_args: &[UdfValue]| {
                    // Cost keyed off the executing rank: the low half of the
                    // ranks is 3x slower, emulating the paper's "node
                    // hardware" heterogeneity. Rank profiles then diverge,
                    // which is what throughput-based balancing exploits.
                    let rank = ids_core::engine::current_rank().0;
                    let secs = if rank < 16 { 0.3 } else { 0.1 };
                    UdfOutput::new(UdfValue::Bool(true), secs)
                }),
            )
            .unwrap();

        // Warm profiling with one pass, then measure the second (profiles
        // are what §2.4.2 exchanges).
        let q = "SELECT ?i WHERE { ?i <in:bucket> ?b . FILTER(slow_check(?i)) }";
        inst.query(q).expect("warm-up");
        inst.reset_clocks();
        let out = inst.query(q).expect("measured run");
        rows.push(vec![
            label.to_string(),
            secs(out.breakdown.filter_secs),
            out.solutions.len().to_string(),
        ]);
    }
    table(&["re-balance mode", "FILTER time (s)", "rows"], &rows);
    println!("\nshape check: none > count-based >= throughput-based");
}
