//! Experiment X8 — pipelined streaming exchange ablation.
//!
//! Runs the same join-heavy NCNPR workload twice on identically built
//! 256-rank instances under the *same* straggler fault schedule: once
//! with classic BSP stage barriers and once with the pipelined
//! streaming exchange (bounded per-channel buffers, backpressure
//! charged to the virtual clock). Three invariants from the PR
//! acceptance are asserted, not just printed:
//!
//! 1. the two modes produce **byte-identical** solution sets (same
//!    schema, same rows, same order — `pipelined` only changes the
//!    virtual-time cost model, never the data plane),
//! 2. the pipelined critical path is measurably shorter: barriers
//!    sync every rank to the straggler each stage, while streaming
//!    only waits on real per-channel dependencies,
//! 3. the exchange actually streamed — batch/channel counters fired —
//!    and BSP mode fired none of them.
//!
//! Results also land in `bench_results/pipeline.json` (hand-rolled
//! JSON — no serde_json in the vendored set).

use ids_bench::reporting::{section, table};
use ids_core::engine::QueryOutcome;
use ids_core::{IdsConfig, IdsInstance};
use ids_simrt::{FaultConfig, FaultPlane, Topology};
use ids_workloads::ncnpr::{build, Band, NcnprConfig};
use std::fmt::Write as _;
use std::sync::Arc;

const SEED: u64 = 11;
const FAULT_SEED: u64 = 7;

/// A quarter of the ranks run 4x slow: the schedule BSP is worst at,
/// because every barrier drags the whole cluster down to the slowest
/// straggler even when that rank contributes few (or zero) bytes to
/// the exchange.
fn straggler_schedule() -> FaultConfig {
    FaultConfig::stragglers_only(0.25, 4.0)
}

/// Join-heavy dataset: two distributed joins move real bytes through
/// the exchange, so the pipelined win comes from overlapping transfer
/// with production and skipping barriers, not from an empty workload.
fn dataset_config() -> NcnprConfig {
    NcnprConfig {
        bands: vec![
            Band {
                mutation_rate: 0.0,
                similarity_range: None,
                proteins: 200,
                compounds_per_protein: 24,
            },
            Band {
                mutation_rate: 0.5,
                similarity_range: Some((0.2, 0.4)),
                proteins: 200,
                compounds_per_protein: 24,
            },
        ],
        background_proteins: 200,
        ..NcnprConfig::default()
    }
}

/// Three patterns (two distributed joins) and a FILTER — the
/// scan→join→FILTER pipeline shape the streaming exchange exists for.
fn workload_query() -> &'static str {
    "SELECT ?c ?p WHERE { ?c <chembl:inhibits> ?p . \
                          ?p <up:reviewed> ?r . \
                          ?p <rdf:type> <up:Protein> . \
       FILTER(?r >= 0 && ?r <= 1 && ?r != 2) }"
}

struct Run {
    mode: &'static str,
    rows: usize,
    total_virtual_secs: f64,
    exchange_batches: u64,
    exchange_channels: u64,
    stall_secs: f64,
    outcome: QueryOutcome,
}

fn run_mode(pipelined: bool) -> Run {
    let topo = Topology::cray_ex(8); // 8 nodes x 32 ranks = 256 ranks
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), SEED);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    let plane = Arc::new(FaultPlane::new(
        FAULT_SEED,
        straggler_schedule(),
        topo.nodes(),
        topo.total_ranks(),
        10.0,
    ));
    inst.attach_faults(plane);
    build(inst.datastore(), &dataset_config());
    inst.exec_options_mut().pipelined = pipelined;

    let outcome = inst.query(workload_query()).expect("workload query runs clean");
    let snap = inst.metrics_snapshot();
    let stall_secs = snap
        .histograms
        .iter()
        .filter(|(k, _)| k.name == "ids_exchange_stall_secs")
        .map(|(_, h)| h.sum)
        .fold(0.0, |a, b| a + b);
    Run {
        mode: if pipelined { "pipelined" } else { "bsp" },
        rows: outcome.solutions.len(),
        total_virtual_secs: outcome.elapsed_secs,
        exchange_batches: snap.counter_sum("ids_exchange_batches_total"),
        exchange_channels: snap.counter_sum("ids_exchange_channels_total"),
        stall_secs,
        outcome,
    }
}

fn write_json(bsp: &Run, pipe: &Run, speedup: f64) -> std::io::Result<()> {
    let mut j = String::new();
    j.push_str("{\n  \"experiment\": \"ablation_pipeline\",\n");
    let _ = writeln!(j, "  \"seed\": {SEED},");
    let _ = writeln!(j, "  \"fault_seed\": {FAULT_SEED},");
    j.push_str("  \"faults\": \"stragglers fraction=0.25 slowdown=4.0\",\n");
    j.push_str("  \"ranks\": 256,\n");
    let _ = writeln!(j, "  \"query_rows\": {},", pipe.rows);
    j.push_str("  \"runs\": [\n");
    for (i, r) in [bsp, pipe].iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"mode\": \"{}\", \"total_virtual_secs\": {:.9}, \
             \"exchange_batches\": {}, \"exchange_channels\": {}, \
             \"stall_secs\": {:.9}}}",
            r.mode, r.total_virtual_secs, r.exchange_batches, r.exchange_channels, r.stall_secs,
        );
        j.push_str(if i == 0 { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");
    let _ = writeln!(j, "  \"speedup\": {speedup:.3},");
    j.push_str("  \"byte_identical_results\": true\n}\n");
    std::fs::create_dir_all("bench_results")?;
    std::fs::write("bench_results/pipeline.json", j)
}

fn main() {
    section("X8: pipelined streaming exchange — BSP barriers vs bounded channels");
    let bsp = run_mode(false);
    let pipe = run_mode(true);

    // 1. Byte-identical results: same schema, same rows, same order.
    assert_eq!(bsp.outcome.solutions.vars(), pipe.outcome.solutions.vars(), "schemas match");
    assert_eq!(
        bsp.outcome.solutions.rows(),
        pipe.outcome.solutions.rows(),
        "the pipelined exchange must reproduce the BSP engine's rows exactly"
    );
    assert!(bsp.rows > 1000, "workload must be join-heavy, got {} rows", bsp.rows);

    // 2. The exchange streamed in pipelined mode and only there.
    assert_eq!(bsp.exchange_batches, 0, "BSP mode fires no exchange counters");
    assert!(pipe.exchange_batches > 0, "pipelined mode meters its streamed batches");
    assert!(pipe.exchange_channels > 0, "pipelined mode meters its active channels");

    // 3. The critical-path win streaming exists to deliver: under a
    //    straggler schedule at 256 ranks the barrier-free path must be
    //    measurably shorter.
    let speedup = bsp.total_virtual_secs / pipe.total_virtual_secs;
    assert!(
        speedup >= 1.05,
        "pipelined must beat BSP under stragglers: bsp={:.9}s pipe={:.9}s ({speedup:.3}x)",
        bsp.total_virtual_secs,
        pipe.total_virtual_secs
    );

    let rows_tbl: Vec<Vec<String>> = [&bsp, &pipe]
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                r.rows.to_string(),
                format!("{:.9}s", r.total_virtual_secs),
                r.exchange_batches.to_string(),
                r.exchange_channels.to_string(),
                format!("{:.9}s", r.stall_secs),
            ]
        })
        .collect();
    table(
        &["mode", "result rows", "virtual total", "exch batches", "channels", "stall secs"],
        &rows_tbl,
    );
    println!(
        "\npipelined speedup under stragglers: {speedup:.3}x ({:.9}s -> {:.9}s), \
         results byte-identical",
        bsp.total_virtual_secs, pipe.total_virtual_secs
    );

    write_json(&bsp, &pipe, speedup).expect("write bench_results/pipeline.json");
    println!("wrote bench_results/pipeline.json");
}
