//! Experiment X9 — mid-query recovery and speculative re-execution
//! ablation.
//!
//! Two fault scenarios at two scales (64 and 256 ranks), every run
//! byte-identical at the data plane:
//!
//! 1. **Permanent node loss** mid-query, at a checkpoint boundary taken
//!    from a fault-free probe run. Two strategies face the same kill:
//!    *fail-and-restart* (no durable checkpoints — the recovery plane
//!    retires the dead ranks, re-plans, and re-runs the query from
//!    scratch) vs *checkpoint-resume* (typed intermediates in the
//!    replicated cache — roll back only to the last completed
//!    boundary). Resume must beat restart on the virtual clock.
//! 2. **Stragglers** (25 % of ranks at 3.5×) with and without
//!    speculative re-execution. A hedged duplicate on a fast rank
//!    bounds each stage near the median finish, so speculation must
//!    recover **at least half** of the straggler-induced critical-path
//!    loss: `(T_spec − T_ff) ≤ 0.5 × (T_straggler − T_ff)`.
//!
//! Results land in `bench_results/recovery.json` (hand-rolled JSON —
//! no serde_json in the vendored set).

use ids_bench::reporting::{section, table};
use ids_cache::{BackingStore, CacheConfig, CacheManager};
use ids_core::engine::QueryOutcome;
use ids_core::workflow::{
    install_workflow, repurposing_query, RepurposingThresholds, WorkflowModels,
};
use ids_core::{IdsConfig, IdsInstance};
use ids_models::docking::DockingEngine;
use ids_simrt::{FaultConfig, FaultPlane, NetworkModel, NodeId, Topology};
use ids_workloads::ncnpr::{build, Band, NcnprConfig};
use std::fmt::Write as _;
use std::sync::Arc;

const SEED: u64 = 11;
const FAULT_SEED: u64 = 7;

/// A quarter of the ranks at 3.5×: enough lag to trip the hedging
/// threshold every stage without drowning the baseline.
fn straggler_schedule() -> FaultConfig {
    FaultConfig::stragglers_only(0.25, 3.5)
}

/// Small candidate set, real analytic models: the UDF FILTER stage
/// carries the virtual-time bulk (scaled ×200), which is exactly the
/// stage speculation hedges — and the stage whose loss stragglers
/// inflate.
fn dataset_config() -> NcnprConfig {
    NcnprConfig {
        bands: vec![
            Band {
                mutation_rate: 0.0,
                similarity_range: None,
                proteins: 6,
                compounds_per_protein: 8,
            },
            Band {
                mutation_rate: 0.62,
                similarity_range: Some((0.21, 0.39)),
                proteins: 24,
                compounds_per_protein: 6,
            },
        ],
        background_proteins: 40,
        ..NcnprConfig::default()
    }
}

fn models() -> WorkflowModels {
    let mut m = WorkflowModels::paper_models();
    // Light docking (48 survivors; the docking cost is not under test)
    // and a bulk-analytics multiplier that puts the FILTER stage on the
    // critical path.
    m.docking = DockingEngine::test_engine();
    m.analytics_scale = 200.0;
    m
}

fn query() -> String {
    repurposing_query(&RepurposingThresholds { sw_similarity: 0.9, min_pic50: 3.0, min_dtba: 3.0 })
}

#[derive(Clone, Copy)]
struct Variant {
    /// Durable recovery checkpoints (attach the replicated cache).
    checkpoints: bool,
    /// Speculative re-execution of stragglers.
    speculation: bool,
    /// Permanent kill `(node, at_secs)`.
    kill: Option<(u32, f64)>,
    /// Straggler dilation on.
    stragglers: bool,
}

struct Run {
    label: &'static str,
    total_virtual_secs: f64,
    rollbacks: u32,
    restarts: u32,
    spec_launched: u64,
    spec_wins: u64,
    spec_saved_secs: f64,
    outcome: QueryOutcome,
}

fn run(nodes: u32, label: &'static str, v: Variant) -> Run {
    let topo = Topology::cray_ex(nodes);
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), SEED);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    let cache = v.checkpoints.then(|| {
        Arc::new(CacheManager::new(
            topo,
            NetworkModel::slingshot(),
            CacheConfig::new(topo.nodes() as usize, 64 << 20, 256 << 20).with_replication(2),
            BackingStore::default_store(),
        ))
    });
    if let Some(cache) = cache {
        inst.attach_cache(cache);
    }
    let faults = if v.stragglers { straggler_schedule() } else { FaultConfig::none() };
    let mut plane = FaultPlane::new(FAULT_SEED, faults, topo.nodes(), topo.total_ranks(), 10.0);
    if let Some((node, at)) = v.kill {
        plane.schedule_permanent_kill(NodeId(node), at);
    }
    inst.attach_faults(Arc::new(plane));
    let dataset = build(inst.datastore(), &dataset_config());
    let target = dataset.target.clone();
    install_workflow(&mut inst, &target, models());
    let opts = inst.exec_options_mut();
    opts.recovery = true;
    opts.speculation = v.speculation;

    let outcome = inst.query(&query()).expect("X9 workload query survives its fault schedule");
    Run {
        label,
        total_virtual_secs: outcome.elapsed_secs,
        rollbacks: outcome.recovery.rollbacks,
        restarts: outcome.recovery.restarts,
        spec_launched: outcome.recovery.spec_launched,
        spec_wins: outcome.recovery.spec_wins,
        spec_saved_secs: outcome.recovery.spec_saved_secs,
        outcome,
    }
}

fn raw_rows(o: &QueryOutcome) -> Vec<Vec<u64>> {
    o.solutions.rows().iter().map(|r| r.iter().map(|t| t.raw()).collect()).collect()
}

struct ScaleResult {
    ranks: u32,
    runs: Vec<Run>,
    resume_speedup: f64,
    straggler_loss: f64,
    spec_loss: f64,
}

fn run_scale(nodes: u32) -> ScaleResult {
    let ranks = nodes * 32;
    section(&format!("X9 @ {ranks} ranks: restart vs resume vs +speculation"));

    // Fault-free probe: the byte-identity reference, the straggler
    // baseline T_ff, and the checkpoint boundary schedule the kill aims
    // at.
    let probe = run(
        nodes,
        "fault-free",
        Variant { checkpoints: true, speculation: false, kill: None, stragglers: false },
    );
    let expected = raw_rows(&probe.outcome);
    assert!(!expected.is_empty(), "workload must produce rows");
    let boundaries = &probe.outcome.recovery.checkpoint_times;
    assert!(boundaries.len() >= 2, "probe stored too few checkpoints: {boundaries:?}");
    // Kill just after a mid-query boundary: late enough that real work
    // is lost, early enough that real work remains.
    let (_, mid_t) = boundaries[boundaries.len() / 2];
    let kill = Some((1u32, mid_t + 1e-9));

    let restart = run(
        nodes,
        "kill+restart",
        Variant { checkpoints: false, speculation: false, kill, stragglers: false },
    );
    let resume = run(
        nodes,
        "kill+resume",
        Variant { checkpoints: true, speculation: false, kill, stragglers: false },
    );
    let straggler = run(
        nodes,
        "stragglers",
        Variant { checkpoints: true, speculation: false, kill: None, stragglers: true },
    );
    let spec = run(
        nodes,
        "stragglers+speculation",
        Variant { checkpoints: true, speculation: true, kill: None, stragglers: true },
    );

    // Byte identity across every strategy.
    for r in [&restart, &resume, &straggler, &spec] {
        assert_eq!(
            raw_rows(&r.outcome),
            expected,
            "{ranks} ranks / {}: rows diverged from the fault-free baseline",
            r.label
        );
    }

    // The kill really interrupted both kill runs, with the intended
    // strategy: restart fell back to scratch, resume did not.
    assert!(restart.rollbacks >= 1 && restart.restarts >= 1, "restart strategy not exercised");
    assert!(resume.rollbacks >= 1 && resume.restarts == 0, "resume strategy not exercised");

    // Checkpoint-resume beats fail-and-restart under the same kill.
    let resume_speedup = restart.total_virtual_secs / resume.total_virtual_secs;
    assert!(
        resume.total_virtual_secs < restart.total_virtual_secs,
        "{ranks} ranks: resume ({:.6}s) must beat restart ({:.6}s)",
        resume.total_virtual_secs,
        restart.total_virtual_secs
    );

    // Speculation recovers at least half of the straggler loss.
    assert!(spec.spec_launched >= 1 && spec.spec_wins >= 1, "no hedges won: speculation inert");
    let straggler_loss = straggler.total_virtual_secs - probe.total_virtual_secs;
    let spec_loss = spec.total_virtual_secs - probe.total_virtual_secs;
    assert!(straggler_loss > 0.0, "stragglers must cost virtual time");
    assert!(
        spec_loss <= 0.5 * straggler_loss,
        "{ranks} ranks: speculation must recover >= half the straggler loss \
         (loss with: {spec_loss:.6}s, without: {straggler_loss:.6}s)"
    );

    let rows_tbl: Vec<Vec<String>> = [&probe, &restart, &resume, &straggler, &spec]
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{:.6}s", r.total_virtual_secs),
                r.rollbacks.to_string(),
                r.restarts.to_string(),
                r.spec_wins.to_string(),
                format!("{:.6}s", r.spec_saved_secs),
            ]
        })
        .collect();
    table(
        &["strategy", "virtual total", "rollbacks", "restarts", "spec wins", "spec saved"],
        &rows_tbl,
    );
    println!(
        "\n{ranks} ranks: resume beats restart {resume_speedup:.3}x; speculation keeps \
         {spec_loss:.6}s of a {straggler_loss:.6}s straggler loss"
    );

    ScaleResult {
        ranks,
        runs: vec![probe, restart, resume, straggler, spec],
        resume_speedup,
        straggler_loss,
        spec_loss,
    }
}

fn write_json(scales: &[ScaleResult]) -> std::io::Result<()> {
    let mut j = String::new();
    j.push_str("{\n  \"experiment\": \"ablation_recovery\",\n");
    let _ = writeln!(j, "  \"seed\": {SEED},");
    let _ = writeln!(j, "  \"fault_seed\": {FAULT_SEED},");
    j.push_str(
        "  \"faults\": \"permanent node kill at a checkpoint boundary; \
                stragglers fraction=0.25 slowdown=3.5\",\n",
    );
    j.push_str("  \"scales\": [\n");
    for (i, s) in scales.iter().enumerate() {
        let _ = writeln!(j, "    {{\"ranks\": {},", s.ranks);
        j.push_str("     \"runs\": [\n");
        for (k, r) in s.runs.iter().enumerate() {
            let _ = write!(
                j,
                "       {{\"strategy\": \"{}\", \"total_virtual_secs\": {:.9}, \
                 \"rollbacks\": {}, \"restarts\": {}, \"spec_launched\": {}, \
                 \"spec_wins\": {}, \"spec_saved_secs\": {:.9}}}",
                r.label,
                r.total_virtual_secs,
                r.rollbacks,
                r.restarts,
                r.spec_launched,
                r.spec_wins,
                r.spec_saved_secs,
            );
            j.push_str(if k + 1 < s.runs.len() { ",\n" } else { "\n" });
        }
        j.push_str("     ],\n");
        let _ = writeln!(j, "     \"resume_speedup\": {:.3},", s.resume_speedup);
        let _ = writeln!(j, "     \"straggler_loss_secs\": {:.9},", s.straggler_loss);
        let _ = writeln!(j, "     \"speculation_loss_secs\": {:.9},", s.spec_loss);
        j.push_str("     \"byte_identical_results\": true}");
        j.push_str(if i + 1 < scales.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    std::fs::create_dir_all("bench_results")?;
    std::fs::write("bench_results/recovery.json", j)
}

fn main() {
    let scales = vec![run_scale(2), run_scale(8)];
    write_json(&scales).expect("write bench_results/recovery.json");
    println!("wrote bench_results/recovery.json");
}
