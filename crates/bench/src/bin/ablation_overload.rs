//! Experiment X10 — overload survivability (serving plane under
//! production traffic).
//!
//! Drives open-loop Poisson×Zipf traffic from ≥1 000 simulated tenants
//! (striped over the three SLO classes) at 0.25× (uncontended), 1×, 2×,
//! and 4× of the measured service capacity, with class-aware WDRR
//! scheduling, hysteresis load shedding, and elastic scale-out enabled.
//! Per cell it reports per-class p50/p99/p999 virtual latency, goodput,
//! and refusal counts, plus the elasticity decisions taken.
//!
//! Acceptance invariants are asserted, not just printed: under 4×
//! overload the Interactive class must keep its p99 latency within 2× of
//! the uncontended baseline and its goodput no worse than baseline, while
//! the BestEffort class is shed (and Interactive is never shed).
//!
//! Results land in `bench_results/overload.json` (hand-rolled JSON — no
//! serde_json in the vendored set).

use ids_bench::reporting::{section, table};
use ids_cache::{BackingStore, CacheConfig, CacheManager};
use ids_core::{IdsConfig, IdsInstance};
use ids_graph::Term;
use ids_serve::{
    ElasticityConfig, QueryService, ScaleDecision, ServeConfig, ServeError, ShedConfig, SloClass,
    TenantConfig,
};
use ids_simrt::{NetworkModel, Topology};
use ids_workloads::client::drive_open_loop;
use ids_workloads::traffic::{class_of, generate, TrafficConfig};
use std::fmt::Write as _;
use std::sync::Arc;

const SEED: u64 = 7;
const TENANTS: usize = 1000;
const ARRIVALS: usize = 2000;
/// Unmeasured arrivals driven first at the same rate, so the controllers
/// (shed hysteresis, elastic fleet size) reach steady state before the
/// measured window opens — standard ramp-up exclusion.
const WARMUP_ARRIVALS: usize = 800;
const LOADS: [f64; 4] = [0.25, 1.0, 2.0, 4.0];

fn query_pool() -> Vec<String> {
    vec![
        "SELECT ?p WHERE { ?p <rdf:type> <up:Protein> . }".to_string(),
        "SELECT ?c ?p WHERE { ?c <inhibits> ?p . ?p <rdf:type> <up:Protein> . }".to_string(),
    ]
}

/// An 8-node topology with half the nodes parked: the elasticity
/// controller may grow into the reserve under sustained pressure.
fn launch() -> IdsInstance {
    let topo = Topology::new(8, 1);
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 64 << 20, 256 << 20).with_replication(2),
        BackingStore::default_store(),
    ));
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), SEED);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    inst.attach_cache(cache);
    let ds = inst.datastore();
    for i in 0..200 {
        ds.add_fact(&Term::iri(format!("p:{i}")), &Term::iri("rdf:type"), &Term::iri("up:Protein"));
        ds.add_fact(
            &Term::iri(format!("c:{i}")),
            &Term::iri("inhibits"),
            &Term::iri(format!("p:{}", i % 17)),
        );
    }
    ds.build_indexes();
    inst
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        quantum_secs: 1.0e-5,
        reuse: false, // keep per-query cost stable so "4x capacity" means 4x work
        max_in_flight: 16,
        // WDRR interleaving makes latency scale with admitted queue depth
        // (every backlogged tenant gets at least a progress-floor slice
        // per round), so protecting Interactive p99 means shedding early:
        // the lower classes start being refused at shallow occupancy,
        // well before the queue is deep enough to hurt the tail.
        shed: ShedConfig {
            best_effort_enter: 0.125,
            best_effort_exit: 0.03,
            batch_enter: 0.1875,
            batch_exit: 0.0625,
        },
        elasticity: Some(ElasticityConfig {
            min_nodes: 4,
            max_nodes: 8,
            scale_out_queue_per_rank: 0.5,
            // Negative threshold = scale-in disabled: the fleet only
            // ratchets up during a cell, so transient lulls never yank
            // capacity back and put reconfiguration churn in the tail.
            scale_in_queue_per_rank: -1.0,
            sustain_rounds: 3,
            cooldown_rounds: 3,
            ..ElasticityConfig::default()
        }),
        ..ServeConfig::default()
    }
}

/// Measured fair-weather numbers: throughput from a closed-loop batch
/// probe, and solo per-query p99 latency from a sequential probe. All
/// offered-load multipliers and the Interactive deadline derive from
/// these.
fn calibrate() -> (f64, f64) {
    let mut svc = QueryService::new(launch(), serve_config());
    svc.register_tenant(TenantConfig::new("probe").with_max_queued(64));
    let s = svc.open_session("probe").expect("fresh tenant");
    let pool = query_pool();
    // Solo latency: one query in the system at a time.
    let mut solo = Vec::new();
    for q in 0..16 {
        svc.submit(s, &pool[q % pool.len()]).expect("probe admission");
        let done = svc.run_until_idle();
        assert_eq!(done.len(), 1);
        solo.push(done[0].latency_secs);
    }
    solo.sort_by(f64::total_cmp);
    let solo_p99 = percentile(&solo, 0.99);
    // Throughput: saturating waves under max_in_flight.
    let t0 = svc.instance().cluster().elapsed();
    let waves = 4;
    let per_wave = 12; // stays under max_in_flight so nothing is refused
    for _ in 0..waves {
        for q in 0..per_wave {
            svc.submit(s, &pool[q % pool.len()]).expect("probe admission");
        }
        let done = svc.run_until_idle();
        assert_eq!(done.len(), per_wave);
    }
    let qps = (waves * per_wave) as f64 / (svc.instance().cluster().elapsed() - t0);
    (qps, solo_p99)
}

#[derive(Default, Clone)]
struct ClassStats {
    completed: usize,
    shed: usize,
    overloaded: usize,
    deadline_aborts: usize,
    latencies: Vec<f64>,
}

struct Cell {
    load: f64,
    offered_qps: f64,
    span_secs: f64,
    scale_outs: usize,
    scale_ins: usize,
    final_nodes: usize,
    by_class: [ClassStats; 3],
}

fn class_idx(c: SloClass) -> usize {
    match c {
        SloClass::Interactive => 0,
        SloClass::Batch => 1,
        SloClass::BestEffort => 2,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn run_cell(load: f64, capacity_qps: f64, interactive_deadline_secs: f64) -> Cell {
    let offered_qps = load * capacity_qps;
    let tcfg = TrafficConfig {
        tenants: TENANTS,
        arrivals: ARRIVALS,
        mean_interarrival_secs: 1.0 / offered_qps,
        seed: SEED,
        ..TrafficConfig::default()
    };
    let arrivals = generate(&tcfg);
    let warmup =
        generate(&TrafficConfig { arrivals: WARMUP_ARRIVALS, seed: SEED ^ 0x5157, ..tcfg });
    let mut svc = QueryService::new(launch(), serve_config());
    let mut sessions = Vec::with_capacity(TENANTS);
    for t in 0..TENANTS {
        let name = format!("t{t:04}");
        let class = class_of(&tcfg, t);
        // Interactive tenants get a shallow per-tenant queue: a human
        // session's latency is dominated by its own backlog, so admitted
        // queries stay fast and the excess is per-tenant backpressure
        // (`Overloaded`, with a retry hint) instead of a deep FIFO.
        let max_queued = if class == SloClass::Interactive { 1 } else { 8 };
        // On top of the 4x class multiplier, interactive tenants carry a
        // higher base weight so a human query rides through an admitted
        // batch backlog instead of round-robining with it, plus a latency
        // SLO: a query that cannot finish inside its deadline is aborted
        // rather than served uselessly late.
        let weight = if class == SloClass::Interactive { 8 } else { 1 };
        let mut tc = TenantConfig::new(&name)
            .with_class(class)
            .with_weight(weight)
            .with_max_queued(max_queued);
        if class == SloClass::Interactive {
            tc = tc.with_deadline(interactive_deadline_secs);
        }
        svc.register_tenant(tc);
        sessions.push(svc.open_session(&name).expect("fresh tenant"));
    }
    let pool = query_pool();
    // Ramp-up exclusion: the warm-up schedule is driven at the same rate
    // but its completions and refusals are discarded.
    let warm_span = drive_open_loop(&mut svc, &warmup, &sessions, &pool).finished_at_secs;
    let report = drive_open_loop(&mut svc, &arrivals, &sessions, &pool);

    let mut by_class: [ClassStats; 3] = Default::default();
    for c in &report.completed {
        let s = &mut by_class[class_idx(c.class)];
        match &c.result {
            Ok(_) => {
                s.completed += 1;
                s.latencies.push(c.latency_secs);
            }
            Err(ServeError::DeadlineExceeded { .. }) => s.deadline_aborts += 1,
            Err(other) => panic!("admitted query failed: {other}"),
        }
    }
    for r in &report.refused {
        let idx = class_idx(class_of(&tcfg, r.tenant));
        match &r.error {
            ServeError::Shed { class, .. } => {
                assert_eq!(class_idx(*class), idx, "shed class matches the tenant's class");
                by_class[idx].shed += 1;
            }
            ServeError::Overloaded(_) => by_class[idx].overloaded += 1,
            other => panic!("unexpected refusal under overload: {other}"),
        }
    }
    for s in &mut by_class {
        s.latencies.sort_by(f64::total_cmp);
    }
    let scale_outs =
        svc.scale_events().iter().filter(|e| matches!(e.decision, ScaleDecision::Out)).count();
    let scale_ins =
        svc.scale_events().iter().filter(|e| matches!(e.decision, ScaleDecision::In)).count();
    Cell {
        load,
        offered_qps,
        span_secs: report.finished_at_secs - warm_span,
        scale_outs,
        scale_ins,
        final_nodes: svc.active_nodes() as usize,
        by_class,
    }
}

fn write_json(capacity_qps: f64, cells: &[Cell]) -> std::io::Result<()> {
    let mut j = String::new();
    j.push_str("{\n  \"experiment\": \"ablation_overload\",\n");
    let _ = writeln!(j, "  \"seed\": {SEED},");
    let _ = writeln!(j, "  \"tenants\": {TENANTS},");
    let _ = writeln!(j, "  \"arrivals\": {ARRIVALS},");
    let _ = writeln!(j, "  \"capacity_qps\": {capacity_qps:.3},");
    j.push_str("  \"runs\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"load\": {}, \"offered_qps\": {:.3}, \"span_secs\": {:.9}, \
             \"scale_outs\": {}, \"scale_ins\": {}, \"final_nodes\": {}, \"classes\": {{",
            c.load, c.offered_qps, c.span_secs, c.scale_outs, c.scale_ins, c.final_nodes
        );
        for (k, class) in SloClass::ALL.iter().enumerate() {
            let s = &c.by_class[k];
            let _ = write!(
                j,
                "\"{}\": {{\"completed\": {}, \"shed\": {}, \"overloaded\": {}, \
                 \"deadline_aborts\": {}, \
                 \"goodput_qps\": {:.3}, \"p50_secs\": {:.9}, \"p99_secs\": {:.9}, \
                 \"p999_secs\": {:.9}}}{}",
                class.label(),
                s.completed,
                s.shed,
                s.overloaded,
                s.deadline_aborts,
                s.completed as f64 / c.span_secs,
                percentile(&s.latencies, 0.50),
                percentile(&s.latencies, 0.99),
                percentile(&s.latencies, 0.999),
                if k + 1 < SloClass::ALL.len() { ", " } else { "" },
            );
        }
        j.push_str("}}");
        j.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    std::fs::create_dir_all("bench_results")?;
    std::fs::write("bench_results/overload.json", j)
}

fn main() {
    section("X10: overload survivability — SLO classes x offered load");
    let (capacity_qps, solo_p99) = calibrate();
    // The Interactive latency SLO: finish within 1.5x the solo p99 or
    // abort. Under overload the deadline (not unbounded queueing) bounds
    // the served tail.
    let deadline = 1.5 * solo_p99;
    println!(
        "calibrated fair-weather capacity: {capacity_qps:.1} q/vsec, \
         solo p99 {solo_p99:.6}s, interactive deadline {deadline:.6}s\n"
    );

    let cells: Vec<Cell> = LOADS.iter().map(|&l| run_cell(l, capacity_qps, deadline)).collect();

    let mut rows = Vec::new();
    for c in &cells {
        for (k, class) in SloClass::ALL.iter().enumerate() {
            let s = &c.by_class[k];
            rows.push(vec![
                format!("{:.2}x", c.load),
                class.label().to_string(),
                s.completed.to_string(),
                s.shed.to_string(),
                s.overloaded.to_string(),
                s.deadline_aborts.to_string(),
                format!("{:.1}", s.completed as f64 / c.span_secs),
                format!("{:.6}s", percentile(&s.latencies, 0.50)),
                format!("{:.6}s", percentile(&s.latencies, 0.99)),
                format!("{:.6}s", percentile(&s.latencies, 0.999)),
            ]);
        }
    }
    table(
        &["load", "class", "done", "shed", "overld", "dl_abrt", "goodput", "p50", "p99", "p999"],
        &rows,
    );
    for c in &cells {
        println!(
            "load {:.2}x: {} scale-outs, {} scale-ins, {} nodes at end",
            c.load, c.scale_outs, c.scale_ins, c.final_nodes
        );
    }

    // Acceptance: Interactive survives 4x overload within 2x of the
    // uncontended baseline, paid for by shedding BestEffort.
    let base = &cells[0];
    let hot = cells.iter().find(|c| c.load == 4.0).unwrap();
    let b_i = &base.by_class[0];
    let h_i = &hot.by_class[0];
    let (bp99, hp99) = (percentile(&b_i.latencies, 0.99), percentile(&h_i.latencies, 0.99));
    assert!(
        hp99 <= 2.0 * bp99,
        "Interactive p99 under 4x overload must stay within 2x of baseline: {hp99} vs {bp99}"
    );
    let (b_good, h_good) =
        (b_i.completed as f64 / base.span_secs, h_i.completed as f64 / hot.span_secs);
    assert!(
        h_good >= b_good,
        "Interactive goodput must not fall below the uncontended baseline: {h_good} vs {b_good}"
    );
    assert!(hot.by_class[2].shed > 0, "4x overload must shed BestEffort traffic");
    assert_eq!(h_i.shed, 0, "Interactive is never shed");
    println!(
        "\n4x overload: Interactive p99 {:.6}s (baseline {:.6}s), goodput {:.1} q/vsec \
         (baseline {:.1}), {} BestEffort + {} Batch queries shed",
        hp99, bp99, h_good, b_good, hot.by_class[2].shed, hot.by_class[1].shed
    );

    write_json(capacity_qps, &cells).expect("write bench_results/overload.json");
    println!("wrote bench_results/overload.json");
}
