//! Experiment F4a/F4b — regenerate **Figure 4: NCNPR Drug Repurposing
//! Query scaling** (end-to-end latency and per-stage breakdown).
//!
//! Runs the full re-purposing query (SW + pIC50 + DTBA filters, then
//! docking) on 64 / 128 / 256 simulated nodes × 32 ranks (2048 / 4096 /
//! 8192 ranks) and prints, per node count:
//!
//! * end-to-end virtual latency (paper: 86 / 72 / 62 s),
//! * the per-stage breakdown: scan/join/merge, FILTER, docking (paper:
//!   docking dominates at ≈ 43 s and does not scale; the rest shrinks),
//! * latency excluding docking (paper: ≈ 43 / 29 / 19 s).
//!
//! Shape targets, not absolute matches: docking is the dominant,
//! scale-invariant cost; everything else improves with node count;
//! scan/join gains flatten as ranks out-run the data.
//!
//! Usage: `fig4_scaling [--quick]` (quick = smaller bulk band).

use ids_bench::ncnpr_setup::{build_ncnpr_instance, NcnprBenchOptions};
use ids_bench::reporting::{metrics_dump, secs, section, table};
use ids_core::workflow::{repurposing_query, RepurposingThresholds};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bulk = if quick { (400, 12) } else { (2000, 24) };

    section("Figure 4: NCNPR drug re-purposing query scaling (virtual seconds)");
    println!("paper reference: end-to-end 86 / 72 / 62 s at 64 / 128 / 256 nodes;");
    println!("docking ≈ constant and dominant; excluding docking ≈ 43 / 29 / 19 s\n");

    let thresholds = RepurposingThresholds { sw_similarity: 0.9, min_pic50: 3.0, min_dtba: 3.0 };
    let query = repurposing_query(&thresholds);

    let mut rows = Vec::new();
    let mut breakdown_rows = Vec::new();
    let mut last_snapshot = None;
    for nodes in [64u32, 128, 256] {
        let bench =
            build_ncnpr_instance(NcnprBenchOptions { nodes, bulk, ..NcnprBenchOptions::default() });
        let mut inst = bench.inst;
        // Warm the profiler so re-balancing/reordering have data, as a
        // long-running instance would (the paper's profiles accumulate
        // "through the lifetime of a running IDS instance").
        let out = inst.query(&query).expect("query runs");

        let docking = out.breakdown.apply_secs.get("vina_docking").copied().unwrap_or(0.0);
        rows.push(vec![
            nodes.to_string(),
            (nodes * 32).to_string(),
            out.solutions.len().to_string(),
            secs(out.elapsed_secs),
            secs(docking),
            secs(out.elapsed_secs - docking),
        ]);
        breakdown_rows.push(vec![
            nodes.to_string(),
            secs(out.breakdown.scan_secs),
            secs(out.breakdown.join_secs),
            secs(out.breakdown.rebalance_secs),
            secs(out.breakdown.filter_secs),
            secs(docking),
            secs(out.breakdown.gather_secs),
        ]);
        last_snapshot = Some(inst.metrics_snapshot());
    }

    println!("Figure 4(a): end-to-end scaling");
    table(&["nodes", "ranks", "docked", "total (s)", "docking (s)", "excl. docking (s)"], &rows);

    println!("\nFigure 4(b): per-stage breakdown (virtual seconds)");
    table(
        &["nodes", "scan", "join/merge", "re-balance", "FILTER", "docking", "gather"],
        &breakdown_rows,
    );

    println!("\nShape checks (paper):");
    println!("  - docking roughly constant across node counts, dominant at 256 nodes");
    println!("  - non-docking time decreases with node count");
    println!("  - scan/join gains flatten as shards empty out (ranks exhaust work)");

    if let Some(snap) = last_snapshot {
        metrics_dump("ids-obs metrics (256-node run)", &snap);
    }
}
