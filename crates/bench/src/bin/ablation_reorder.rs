//! Experiment X2 — FILTER expression-reordering ablation (§2.4.3).
//!
//! The NCNPR chain in user order is docking-expensive-first (the worst
//! case); the planner reorders to cheap-selective-first. This bench runs a
//! 3-UDF chain in (a) user order with reordering disabled and (b) planner
//! order, and reports evaluation counts per UDF and FILTER time.
//!
//! Expected shape: planner order slashes expensive-UDF invocations by the
//! cheap filters' rejection rate, cutting FILTER time by ~the cost ratio.

use ids_bench::reporting::{secs, section, table};
use ids_core::{IdsConfig, IdsInstance};
use ids_graph::Term;
use ids_udf::{UdfOutput, UdfValue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn build_instance(reorder: bool) -> (IdsInstance, Arc<AtomicU64>, Arc<AtomicU64>, Arc<AtomicU64>) {
    let mut cfg = IdsConfig::laptop(16, 11);
    cfg.exec.reorder_conjuncts = reorder;
    // Priors reflect the model-repository kinds so the first run already
    // benefits (profiles make later runs better still).
    cfg.exec.udf_cost_prior = 1.0;
    let inst = IdsInstance::launch(cfg);
    let ds = inst.datastore();
    for i in 0..2000i64 {
        ds.add_fact(&Term::iri(format!("c:{i}")), &Term::iri("score"), &Term::Int(i % 100));
    }
    ds.build_indexes();

    let cheap_calls = Arc::new(AtomicU64::new(0));
    let mid_calls = Arc::new(AtomicU64::new(0));
    let costly_calls = Arc::new(AtomicU64::new(0));

    // cheap_selective: 1 ms, rejects 90%.
    let c = Arc::clone(&cheap_calls);
    inst.registry()
        .register_static(
            "cheap_selective",
            Arc::new(move |args: &[UdfValue]| {
                c.fetch_add(1, Ordering::Relaxed);
                let v = args[0].as_f64().unwrap_or(0.0);
                UdfOutput::new(UdfValue::Bool(v % 100.0 < 10.0), 0.001)
            }),
        )
        .unwrap();
    // mid_weak: 0.5 s, rejects 20%.
    let m = Arc::clone(&mid_calls);
    inst.registry()
        .register_static(
            "mid_weak",
            Arc::new(move |args: &[UdfValue]| {
                m.fetch_add(1, Ordering::Relaxed);
                let v = args[0].as_f64().unwrap_or(0.0);
                UdfOutput::new(UdfValue::Bool(v % 10.0 < 8.0), 0.5)
            }),
        )
        .unwrap();
    // costly_weak: 35 s (simulation-class), rejects 10%.
    let x = Arc::clone(&costly_calls);
    inst.registry()
        .register_static(
            "costly_weak",
            Arc::new(move |args: &[UdfValue]| {
                x.fetch_add(1, Ordering::Relaxed);
                let v = args[0].as_f64().unwrap_or(0.0);
                UdfOutput::new(UdfValue::Bool(v % 100.0 < 90.0), 35.0)
            }),
        )
        .unwrap();

    (inst, cheap_calls, mid_calls, costly_calls)
}

fn main() {
    section("X2: FILTER conjunct reordering ablation (2000 rows, 16 ranks)");
    // User order: worst-first (expensive, weak filters first).
    let query = "SELECT ?c WHERE { ?c <score> ?s . \
                 FILTER(costly_weak(?s) && mid_weak(?s) && cheap_selective(?s)) }";

    let mut rows = Vec::new();
    for (label, reorder) in
        [("user order (reorder off)", false), ("planner order (reorder on)", true)]
    {
        let (mut inst, cheap, mid, costly) = build_instance(reorder);
        // Two passes: pass 1 builds profiles, pass 2 is the measured run
        // (the paper's profiles persist across queries).
        inst.query(query).expect("profiling pass");
        let c0 = (
            cheap.load(Ordering::Relaxed),
            mid.load(Ordering::Relaxed),
            costly.load(Ordering::Relaxed),
        );
        inst.reset_clocks();
        let out = inst.query(query).expect("measured pass");
        let calls = (
            cheap.load(Ordering::Relaxed) - c0.0,
            mid.load(Ordering::Relaxed) - c0.1,
            costly.load(Ordering::Relaxed) - c0.2,
        );
        rows.push(vec![
            label.to_string(),
            secs(out.breakdown.filter_secs),
            calls.0.to_string(),
            calls.1.to_string(),
            calls.2.to_string(),
            out.solutions.len().to_string(),
        ]);
    }
    table(
        &["configuration", "FILTER (s)", "cheap calls", "mid calls", "costly calls", "rows out"],
        &rows,
    );
    println!("\nshape check: planner order runs the 35 s UDF on ~10% of rows instead of 100%,");
    println!("matching Section 2.4.3 (ascending cost, higher rejection first on ties)");
}
