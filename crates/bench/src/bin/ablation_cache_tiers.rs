//! Experiment X3 — cache-tier and placement-policy ablation (§3).
//!
//! Three sweeps over the global shared cache:
//!
//! 1. **Tier ladder** — serve the same object from local DRAM, remote
//!    DRAM, local NVMe, remote NVMe, and the backing store; print the
//!    latency ladder the multi-tier design rests on.
//! 2. **Capacity pressure** — shrink DRAM so a docking-output working set
//!    spills, and measure hit-rate and mean access cost per configuration.
//! 3. **Placement policies** — local-first vs round-robin vs
//!    capacity-weighted under a node-skewed access pattern.
//!
//! Plus experiment X11 (PR 9) — the tiered-store subsystem:
//!
//! 4. **Working-set sweep × eviction policy** — working sets of 1×/2×/4×/8×
//!    DRAM against LRU, S3-FIFO, and TinyLFU. Misses recompute (~1 virtual
//!    second of docking), so the reuse speedup over a cacheless run measures
//!    how well each policy keeps the hot set resident. Scan-resistant
//!    policies must hold a ≥5× speedup at 4× DRAM while LRU (the negative
//!    control) thrashes below it.
//! 5. **Warm restart** — crash and recover one of the two cache nodes, run
//!    one anti-entropy pass, and require the post-crash hit rate to recover
//!    to ≥80% of the pre-crash rate off the retained NVMe tier.
//!
//! Results land in `bench_results/tiers.json`.

use bytes::Bytes;
use ids_bench::reporting::{section, table};
use ids_cache::{BackingStore, CacheConfig, CacheManager, EvictionKind, PlacementPolicy, Tier};
use ids_simrt::{NetworkModel, NodeId, RankId, Topology};
use std::fmt::Write as _;

fn micro(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.2} s")
    } else if v >= 1e-3 {
        format!("{:.1} ms", v * 1e3)
    } else {
        format!("{:.1} us", v * 1e6)
    }
}

fn main() {
    let topo = Topology::new(4, 8);
    let obj = Bytes::from(vec![7u8; 256 << 10]); // a 256 KiB docking output

    // ---- 1. tier ladder ----------------------------------------------------
    section("X3a: tier latency ladder (256 KiB docking output)");
    let mut rows = Vec::new();

    // Local DRAM.
    let c = CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 64 << 20, 1 << 30),
        BackingStore::default_store(),
    );
    c.put(RankId(0), "obj", obj.clone());
    let (_, o) = c.get(RankId(0), "obj").unwrap().unwrap();
    assert_eq!(o.tier, Tier::LocalDram);
    rows.push(vec!["local DRAM".into(), micro(o.virtual_secs)]);

    // Remote DRAM (rank on a non-cache node).
    let (_, o) = c.get(RankId(31), "obj").unwrap().unwrap();
    assert_eq!(o.tier, Tier::RemoteDram);
    rows.push(vec!["remote DRAM (RDMA)".into(), micro(o.virtual_secs)]);

    // Local NVMe (DRAM too small).
    let c = CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 1, 1 << 30),
        BackingStore::default_store(),
    );
    c.put(RankId(0), "obj", obj.clone());
    let (_, o) = c.get(RankId(0), "obj").unwrap().unwrap();
    assert_eq!(o.tier, Tier::LocalNvme);
    rows.push(vec!["local NVMe".into(), micro(o.virtual_secs)]);

    // Remote NVMe.
    let c = CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 1, 1 << 30),
        BackingStore::default_store(),
    );
    c.put(RankId(8), "obj", obj.clone()); // rank 8 = node 1
    let (_, o) = c.get(RankId(31), "obj").unwrap().unwrap();
    assert_eq!(o.tier, Tier::RemoteNvme);
    rows.push(vec!["remote NVMe".into(), micro(o.virtual_secs)]);

    // Backing store.
    let c = CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 1, 1),
        BackingStore::default_store(),
    );
    c.put(RankId(0), "obj", obj.clone());
    let (_, o) = c.get(RankId(0), "obj").unwrap().unwrap();
    assert_eq!(o.tier, Tier::Backing);
    rows.push(vec!["backing store (Lustre-class)".into(), micro(o.virtual_secs)]);
    table(&["tier", "access latency"], &rows);

    // ---- 2. capacity pressure ----------------------------------------------
    section("X3b: DRAM capacity sweep (zipf-ish working set of 200 x 256 KiB)");
    let names: Vec<String> = (0..200).map(|i| format!("vina/{i}")).collect();
    let mut rows = Vec::new();
    for (label, dram) in [
        ("all-DRAM (64 MiB)", 64u64 << 20),
        ("half-DRAM (16 MiB)", 16 << 20),
        ("tiny-DRAM (4 MiB)", 4 << 20),
        ("no-DRAM (NVMe only)", 1),
    ] {
        let c = CacheManager::new(
            topo,
            NetworkModel::slingshot(),
            CacheConfig::new(2, dram, 1 << 30),
            BackingStore::default_store(),
        );
        for n in &names {
            c.put(RankId(0), n, obj.clone());
        }
        c.reset_stats();
        // Skewed access: object i accessed ~200/(i+1) times.
        let mut total_cost = 0.0;
        let mut accesses = 0u64;
        for (i, n) in names.iter().enumerate() {
            let reps = (200 / (i + 1)).max(1);
            for _ in 0..reps {
                let (_, o) = c.get(RankId(0), n).unwrap().unwrap();
                total_cost += o.virtual_secs;
                accesses += 1;
            }
        }
        let s = c.stats();
        rows.push(vec![
            label.to_string(),
            format!("{:.0}%", s.hit_rate() * 100.0),
            s.local_dram_hits.to_string(),
            (s.local_nvme_hits + s.remote_nvme_hits).to_string(),
            s.backing_fetches.to_string(),
            micro(total_cost / accesses as f64),
        ]);
    }
    table(
        &["configuration", "cache hit rate", "DRAM hits", "NVMe hits", "backing", "mean access"],
        &rows,
    );

    // ---- 3. placement policies ----------------------------------------------
    section("X3c: placement policy under node-0-heavy access");
    let mut rows = Vec::new();
    for (label, policy) in [
        ("local-first", PlacementPolicy::LocalFirst),
        ("round-robin", PlacementPolicy::RoundRobin),
        ("capacity-weighted", PlacementPolicy::CapacityWeighted),
    ] {
        let mut cfg = CacheConfig::new(2, 64 << 20, 1 << 30);
        cfg.policy = policy;
        let c =
            CacheManager::new(topo, NetworkModel::slingshot(), cfg, BackingStore::default_store());
        // Producer/consumer both live on node 0.
        for n in names.iter().take(100) {
            c.put(RankId(0), n, obj.clone());
        }
        c.reset_stats();
        let mut total_cost = 0.0;
        for n in names.iter().take(100) {
            let (_, o) = c.get(RankId(0), n).unwrap().unwrap();
            total_cost += o.virtual_secs;
        }
        let s = c.stats();
        rows.push(vec![
            label.to_string(),
            s.local_dram_hits.to_string(),
            s.remote_dram_hits.to_string(),
            micro(total_cost / 100.0),
        ]);
    }
    table(&["policy", "local hits", "remote hits", "mean access"], &rows);
    println!("\nshape check: local-first wins when computation stays where data was produced;");
    println!("the locality API lets schedulers recreate that advantage for other policies");

    // ---- 4. X11: working-set sweep x eviction policy -----------------------
    // 2 cache nodes x 4 MiB DRAM = 8 MiB DRAM total (32 x 256 KiB objects);
    // the NVMe tier is provisioned as a narrow spill buffer (DRAM/4) so the
    // sweep isolates eviction-policy behaviour rather than NVMe capacity.
    // Objects are ephemeral docking outputs (no backing copy), so a full
    // eviction really costs a recompute — the speedup over a cacheless run
    // is pure reuse. The workload is the classic scan-resistance mix: a hot
    // set re-docked constantly, interleaved with cold what-if scans over the
    // rest of the working set.
    section("X11: working-set sweep x eviction policy (8 MiB DRAM, 2 MiB NVMe spill buffer)");
    let topo2 = Topology::new(2, 4);
    let dram_node: u64 = 4 << 20;
    let dram_total = dram_node * topo2.nodes() as u64;
    let payload = Bytes::from(vec![3u8; OBJ_BYTES]);
    let policies = [EvictionKind::Lru, EvictionKind::S3Fifo, EvictionKind::TinyLfu];
    let mut rows = Vec::new();
    let mut cells: Vec<(EvictionKind, u64, f64, f64)> = Vec::new();
    for mult in [1u64, 2, 4, 8] {
        let n = (mult * dram_total) as usize / OBJ_BYTES;
        for ev in policies {
            let c = CacheManager::new(
                topo2,
                NetworkModel::slingshot(),
                CacheConfig::new(2, dram_node, dram_node / 4).with_eviction(ev),
                BackingStore::default_store(),
            );
            // Produce the working set, then two warm-up passes to reach a
            // steady-state residency mix before measuring two more.
            for i in 0..n {
                c.put_ephemeral(RankId((i % 8) as u32), &format!("ws/{i}"), payload.clone());
            }
            for _ in 0..2 {
                tier_pass(&c, n, &payload);
            }
            c.reset_stats();
            let (mut cost, mut accesses) = (0.0, 0u64);
            for _ in 0..2 {
                let (p_cost, p_accesses) = tier_pass(&c, n, &payload);
                cost += p_cost;
                accesses += p_accesses;
            }
            // A cacheless run recomputes every access.
            let speedup = (accesses as f64 * RECOMPUTE_SECS) / cost;
            let s = c.stats();
            let hit_rate = s.cache_hits() as f64 / (s.cache_hits() + s.total_misses) as f64;
            rows.push(vec![
                format!("{}x DRAM ({n} objects)", mult),
                ev.label().to_string(),
                format!("{:.0}%", hit_rate * 100.0),
                format!("{speedup:.1}x"),
            ]);
            cells.push((ev, mult, hit_rate, speedup));
        }
    }
    table(&["working set", "eviction", "hit rate", "reuse speedup"], &rows);

    // Acceptance: at 4x DRAM the scan-resistant policies keep a >=5x reuse
    // speedup; LRU (recency only, no scan resistance, no admission duel)
    // thrashes below it — the negative control.
    let speedup_at = |ev: EvictionKind, mult: u64| {
        cells
            .iter()
            .find(|(e, m, _, _)| *e == ev && *m == mult)
            .map(|(_, _, _, s)| *s)
            .expect("cell swept")
    };
    let lru4 = speedup_at(EvictionKind::Lru, 4);
    let s3f4 = speedup_at(EvictionKind::S3Fifo, 4);
    let tlfu4 = speedup_at(EvictionKind::TinyLfu, 4);
    assert!(s3f4 >= 5.0, "S3-FIFO must keep a >=5x reuse speedup at 4x DRAM (got {s3f4:.1}x)");
    assert!(tlfu4 >= 5.0, "TinyLFU must keep a >=5x reuse speedup at 4x DRAM (got {tlfu4:.1}x)");
    assert!(
        lru4 < 5.0 && lru4 < s3f4 && lru4 < tlfu4,
        "LRU is the negative control: it must thrash at 4x DRAM \
         (got {lru4:.1}x vs s3fifo {s3f4:.1}x / tinylfu {tlfu4:.1}x)"
    );
    println!("\nshape check: scan-resistant policies hold the hot set at 4x DRAM");
    println!("(s3fifo {s3f4:.1}x, tinylfu {tlfu4:.1}x) while lru thrashes ({lru4:.1}x)");

    // ---- 5. X11b: warm restart after a node crash --------------------------
    section("X11b: warm restart — NVMe tier survives a node recovery");
    let c = CacheManager::new(
        topo2,
        NetworkModel::slingshot(),
        CacheConfig::new(2, dram_node, 4 * dram_node).with_eviction(EvictionKind::S3Fifo),
        BackingStore::default_store(),
    );
    let n = (2 * dram_total) as usize / OBJ_BYTES; // 2x DRAM, fits in NVMe
    for i in 0..n {
        c.put_ephemeral(RankId((i % 8) as u32), &format!("ws/{i}"), payload.clone());
    }
    for _ in 0..2 {
        tier_pass(&c, n, &payload);
    }
    c.reset_stats();
    tier_pass(&c, n, &payload);
    let pre = hit_rate_of(&c);
    // Crash one of the two nodes and bring it back: DRAM lost, NVMe
    // retained (unverified), then one anti-entropy pass re-verifies the
    // retained entries and restores replication.
    c.fail_node(NodeId(0));
    c.recover_node(NodeId(0));
    let retained = c.stats().warm_restart_retained;
    c.anti_entropy();
    c.reset_stats();
    tier_pass(&c, n, &payload);
    let post = hit_rate_of(&c);
    let recovery = post / pre;
    let inspection = c.inspect();
    table(
        &["phase", "hit rate"],
        &[
            vec!["pre-crash".into(), format!("{:.1}%", pre * 100.0)],
            vec!["post-recovery (+1 anti-entropy pass)".into(), format!("{:.1}%", post * 100.0)],
        ],
    );
    println!(
        "\nwarm restart retained {retained} nvme entries; hit rate recovered to \
         {:.0}% of pre-crash",
        recovery * 100.0
    );
    assert!(retained > 0, "the crash must have found a populated NVMe tier to retain");
    assert!(
        recovery >= 0.8,
        "warm restart must recover >=80% of the pre-crash hit rate within one \
         anti-entropy pass (pre {pre:.3}, post {post:.3})"
    );

    write_json(&cells, pre, post, retained, &inspection.to_json())
        .expect("write bench_results/tiers.json");
    println!("\nresults written to bench_results/tiers.json");
}

/// 256 KiB: the docking-output object size used throughout X3/X11.
const OBJ_BYTES: usize = 256 << 10;

/// Virtual cost of recomputing a docking output on a cache miss.
const RECOMPUTE_SECS: f64 = 1.0;

/// The hot set: 24 objects (6 MiB), comfortably inside the 8 MiB DRAM
/// plane and inside S3-FIFO's main queue / TinyLFU's protected residency.
const HOT: usize = 24;

/// Hot re-dockings per sub-round.
const HOT_REPS: usize = 10;

/// Cold what-if objects scanned between hot bursts — sized to overrun
/// DRAM plus the NVMe spill buffer, so a recency-only policy evicts the
/// entire hot set on every chunk while scan-resistant policies shed the
/// scan instead.
const CHUNK: usize = 48;

/// One access pass over a working set of `n` objects: alternating
/// sub-rounds of a hot burst (the first [`HOT`] objects, [`HOT_REPS`]
/// rounds) and a cold-scan chunk, partitioned so the pass covers each
/// cold object exactly once — the one-touch what-if scan that eviction
/// policies must not let displace the hot set. A miss recomputes the
/// docking output and re-stashes it ephemerally. Returns (virtual cost,
/// accesses).
fn tier_pass(c: &CacheManager, n: usize, payload: &Bytes) -> (f64, u64) {
    let hot = HOT.min(n - 1);
    let scan = n - hot;
    let sub_rounds = scan.div_ceil(CHUNK).max(1);
    let mut cost = 0.0;
    let mut accesses = 0u64;
    let mut access = |i: usize| {
        let name = format!("ws/{i}");
        let rank = RankId((i % 8) as u32);
        accesses += 1;
        match c.get(rank, &name).expect("no fault plane attached") {
            Some((_, o)) => cost += o.virtual_secs,
            None => cost += RECOMPUTE_SECS + c.put_ephemeral(rank, &name, payload.clone()),
        }
    };
    for r in 0..sub_rounds {
        for _ in 0..HOT_REPS {
            for i in 0..hot {
                access(i);
            }
        }
        // Even partition of the cold set across the sub-rounds.
        for i in (r * scan / sub_rounds)..((r + 1) * scan / sub_rounds) {
            access(hot + i);
        }
    }
    (cost, accesses)
}

/// Hit rate over every lookup, counting true misses (an ephemeral object
/// fully evicted has no backing copy, so `CacheStats::hit_rate` alone
/// would ignore exactly the misses this experiment is about).
fn hit_rate_of(c: &CacheManager) -> f64 {
    let s = c.stats();
    s.cache_hits() as f64 / (s.cache_hits() + s.total_misses) as f64
}

/// Hand-rolled JSON dump (no serde_json in the vendored set).
fn write_json(
    cells: &[(EvictionKind, u64, f64, f64)],
    pre: f64,
    post: f64,
    retained: u64,
    inspection_json: &str,
) -> std::io::Result<()> {
    let mut j = String::new();
    j.push_str("{\n  \"experiment\": \"ablation_cache_tiers\",\n");
    j.push_str("  \"object_bytes\": 262144,\n  \"dram_total_bytes\": 8388608,\n");
    j.push_str("  \"sweep\": [\n");
    for (i, (ev, mult, hit_rate, speedup)) in cells.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"eviction\": \"{}\", \"working_set_x_dram\": {mult}, \
             \"hit_rate\": {hit_rate:.6}, \"reuse_speedup\": {speedup:.3}}}",
            ev.label(),
        );
        j.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    j.push_str("  ],\n");
    let _ = writeln!(
        j,
        "  \"warm_restart\": {{\"pre_hit_rate\": {pre:.6}, \"post_hit_rate\": {post:.6}, \
         \"recovered_fraction\": {:.6}, \"nvme_entries_retained\": {retained}}},",
        post / pre
    );
    let _ = writeln!(j, "  \"final_inspection\": {inspection_json}");
    j.push_str("}\n");
    std::fs::create_dir_all("bench_results")?;
    std::fs::write("bench_results/tiers.json", j)
}
