//! Experiment X3 — cache-tier and placement-policy ablation (§3).
//!
//! Three sweeps over the global shared cache:
//!
//! 1. **Tier ladder** — serve the same object from local DRAM, remote
//!    DRAM, local NVMe, remote NVMe, and the backing store; print the
//!    latency ladder the multi-tier design rests on.
//! 2. **Capacity pressure** — shrink DRAM so a docking-output working set
//!    spills, and measure hit-rate and mean access cost per configuration.
//! 3. **Placement policies** — local-first vs round-robin vs
//!    capacity-weighted under a node-skewed access pattern.

use bytes::Bytes;
use ids_bench::reporting::{section, table};
use ids_cache::{BackingStore, CacheConfig, CacheManager, PlacementPolicy, Tier};
use ids_simrt::{NetworkModel, RankId, Topology};

fn micro(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.2} s")
    } else if v >= 1e-3 {
        format!("{:.1} ms", v * 1e3)
    } else {
        format!("{:.1} us", v * 1e6)
    }
}

fn main() {
    let topo = Topology::new(4, 8);
    let obj = Bytes::from(vec![7u8; 256 << 10]); // a 256 KiB docking output

    // ---- 1. tier ladder ----------------------------------------------------
    section("X3a: tier latency ladder (256 KiB docking output)");
    let mut rows = Vec::new();

    // Local DRAM.
    let c = CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 64 << 20, 1 << 30),
        BackingStore::default_store(),
    );
    c.put(RankId(0), "obj", obj.clone());
    let (_, o) = c.get(RankId(0), "obj").unwrap().unwrap();
    assert_eq!(o.tier, Tier::LocalDram);
    rows.push(vec!["local DRAM".into(), micro(o.virtual_secs)]);

    // Remote DRAM (rank on a non-cache node).
    let (_, o) = c.get(RankId(31), "obj").unwrap().unwrap();
    assert_eq!(o.tier, Tier::RemoteDram);
    rows.push(vec!["remote DRAM (RDMA)".into(), micro(o.virtual_secs)]);

    // Local NVMe (DRAM too small).
    let c = CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 1, 1 << 30),
        BackingStore::default_store(),
    );
    c.put(RankId(0), "obj", obj.clone());
    let (_, o) = c.get(RankId(0), "obj").unwrap().unwrap();
    assert_eq!(o.tier, Tier::LocalNvme);
    rows.push(vec!["local NVMe".into(), micro(o.virtual_secs)]);

    // Remote NVMe.
    let c = CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 1, 1 << 30),
        BackingStore::default_store(),
    );
    c.put(RankId(8), "obj", obj.clone()); // rank 8 = node 1
    let (_, o) = c.get(RankId(31), "obj").unwrap().unwrap();
    assert_eq!(o.tier, Tier::RemoteNvme);
    rows.push(vec!["remote NVMe".into(), micro(o.virtual_secs)]);

    // Backing store.
    let c = CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 1, 1),
        BackingStore::default_store(),
    );
    c.put(RankId(0), "obj", obj.clone());
    let (_, o) = c.get(RankId(0), "obj").unwrap().unwrap();
    assert_eq!(o.tier, Tier::Backing);
    rows.push(vec!["backing store (Lustre-class)".into(), micro(o.virtual_secs)]);
    table(&["tier", "access latency"], &rows);

    // ---- 2. capacity pressure ----------------------------------------------
    section("X3b: DRAM capacity sweep (zipf-ish working set of 200 x 256 KiB)");
    let names: Vec<String> = (0..200).map(|i| format!("vina/{i}")).collect();
    let mut rows = Vec::new();
    for (label, dram) in [
        ("all-DRAM (64 MiB)", 64u64 << 20),
        ("half-DRAM (16 MiB)", 16 << 20),
        ("tiny-DRAM (4 MiB)", 4 << 20),
        ("no-DRAM (NVMe only)", 1),
    ] {
        let c = CacheManager::new(
            topo,
            NetworkModel::slingshot(),
            CacheConfig::new(2, dram, 1 << 30),
            BackingStore::default_store(),
        );
        for n in &names {
            c.put(RankId(0), n, obj.clone());
        }
        c.reset_stats();
        // Skewed access: object i accessed ~200/(i+1) times.
        let mut total_cost = 0.0;
        let mut accesses = 0u64;
        for (i, n) in names.iter().enumerate() {
            let reps = (200 / (i + 1)).max(1);
            for _ in 0..reps {
                let (_, o) = c.get(RankId(0), n).unwrap().unwrap();
                total_cost += o.virtual_secs;
                accesses += 1;
            }
        }
        let s = c.stats();
        rows.push(vec![
            label.to_string(),
            format!("{:.0}%", s.hit_rate() * 100.0),
            s.local_dram_hits.to_string(),
            (s.local_nvme_hits + s.remote_nvme_hits).to_string(),
            s.backing_fetches.to_string(),
            micro(total_cost / accesses as f64),
        ]);
    }
    table(
        &["configuration", "cache hit rate", "DRAM hits", "NVMe hits", "backing", "mean access"],
        &rows,
    );

    // ---- 3. placement policies ----------------------------------------------
    section("X3c: placement policy under node-0-heavy access");
    let mut rows = Vec::new();
    for (label, policy) in [
        ("local-first", PlacementPolicy::LocalFirst),
        ("round-robin", PlacementPolicy::RoundRobin),
        ("capacity-weighted", PlacementPolicy::CapacityWeighted),
    ] {
        let mut cfg = CacheConfig::new(2, 64 << 20, 1 << 30);
        cfg.policy = policy;
        let c =
            CacheManager::new(topo, NetworkModel::slingshot(), cfg, BackingStore::default_store());
        // Producer/consumer both live on node 0.
        for n in names.iter().take(100) {
            c.put(RankId(0), n, obj.clone());
        }
        c.reset_stats();
        let mut total_cost = 0.0;
        for n in names.iter().take(100) {
            let (_, o) = c.get(RankId(0), n).unwrap().unwrap();
            total_cost += o.virtual_secs;
        }
        let s = c.stats();
        rows.push(vec![
            label.to_string(),
            s.local_dram_hits.to_string(),
            s.remote_dram_hits.to_string(),
            micro(total_cost / 100.0),
        ]);
    }
    table(&["policy", "local hits", "remote hits", "mean access"], &rows);
    println!("\nshape check: local-first wins when computation stays where data was produced;");
    println!("the locality API lets schedulers recreate that advantage for other policies");
}
