//! Experiment X4 — locality-aware scheduling (§8 next steps).
//!
//! "With our cache's ability to answer questions about data locality,
//! custom scheduling algorithms can be developed that place IDS's MPI
//! ranks on compute nodes closer to the data they require."
//!
//! Workload: 64 docking-output objects cached across 4 nodes; a consumer
//! phase reads each object 50 times. Three schedules:
//!
//! 1. **locality-blind** — consumers assigned round-robin, wherever;
//! 2. **locality-aware** — the scheduler queries `CacheManager::locality`
//!    and routes each consumer to a rank on the holding node;
//! 3. **relocate-then-run** — the data is first `relocate`d to the
//!    consumer's node (amortized when reuse is high).

use bytes::Bytes;
use ids_bench::reporting::{section, table};
use ids_cache::{BackingStore, CacheConfig, CacheManager};
use ids_simrt::{NetworkModel, NodeId, RankId, Topology};

fn micro(v: f64) -> String {
    if v >= 1e-3 {
        format!("{:.2} ms", v * 1e3)
    } else {
        format!("{:.1} us", v * 1e6)
    }
}

fn main() {
    let topo = Topology::new(4, 8);
    let obj = Bytes::from(vec![9u8; 256 << 10]);
    let n_objects = 64u32;
    let reads_per_object = 50u32;

    let build = || {
        let c = CacheManager::new(
            topo,
            NetworkModel::slingshot(),
            CacheConfig::new(4, 64 << 20, 1 << 30),
            BackingStore::default_store(),
        );
        // Producers scattered across all 4 nodes (rank i on node i/8).
        for i in 0..n_objects {
            c.put(RankId(i % 32), &format!("vina/{i}"), obj.clone());
        }
        c
    };

    section("X4: locality-aware scheduling over the global cache");
    let mut rows = Vec::new();

    // 1. Locality-blind: consumer rank chosen round-robin.
    let c = build();
    let mut cost = 0.0;
    for i in 0..n_objects {
        for r in 0..reads_per_object {
            let rank = RankId((i * 7 + r * 3) % 32);
            cost += c.get(rank, &format!("vina/{i}")).unwrap().unwrap().1.virtual_secs;
        }
    }
    let blind = cost / (n_objects * reads_per_object) as f64;
    rows.push(vec!["locality-blind".into(), micro(blind), "1.0x".into()]);

    // 2. Locality-aware: schedule the consumer onto the holding node.
    let c = build();
    let mut cost = 0.0;
    for i in 0..n_objects {
        let name = format!("vina/{i}");
        let holder: NodeId = c.locality(&name).first().map(|&(n, _)| n).unwrap_or(NodeId(0));
        let rank = RankId(holder.0 * 8); // first rank on the holding node
        for _ in 0..reads_per_object {
            cost += c.get(rank, &name).unwrap().unwrap().1.virtual_secs;
        }
    }
    let aware = cost / (n_objects * reads_per_object) as f64;
    rows.push(vec!["locality-aware".into(), micro(aware), format!("{:.1}x", blind / aware)]);

    // 3. Relocate-then-run: consumers stay put, data moves to them once.
    let c = build();
    let mut cost = 0.0;
    for i in 0..n_objects {
        let name = format!("vina/{i}");
        let consumer_node = NodeId(i % 4);
        cost += c.relocate(&name, consumer_node).unwrap_or(0.0);
        let rank = RankId(consumer_node.0 * 8);
        for _ in 0..reads_per_object {
            cost += c.get(rank, &name).unwrap().unwrap().1.virtual_secs;
        }
    }
    let relocated = cost / (n_objects * reads_per_object) as f64;
    rows.push(vec![
        "relocate-then-run".into(),
        micro(relocated),
        format!("{:.1}x", blind / relocated),
    ]);

    table(&["schedule", "mean access (amortized)", "speedup"], &rows);
    println!("\nshape check: locality-aware ≈ relocate-then-run ≪ locality-blind —");
    println!("the paper's hypothesized 'significant savings in communication latency'");
}
