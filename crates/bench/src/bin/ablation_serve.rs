//! Experiment X6 — multi-tenant service ablation (serving plane).
//!
//! Sweeps concurrent client count × semantic-reuse on/off over an
//! overlapping NCNPR workload served by `ids-serve` and reports, per
//! cell: total virtual time, throughput (queries per virtual second),
//! p50/p99 virtual latency, and the plan-fragment reuse hit rate.
//!
//! Two invariants from the PR acceptance are asserted, not just
//! printed: at 16 clients, reuse-on must (a) hit the fingerprint cache
//! at least once and (b) finish the workload in less total virtual time
//! than reuse-off.
//!
//! Results also land in `bench_results/serve.json` (hand-rolled JSON —
//! no serde_json in the vendored set).

use ids_bench::reporting::{section, table};
use ids_cache::{BackingStore, CacheConfig, CacheManager};
use ids_core::workflow::{
    install_workflow, repurposing_query, RepurposingThresholds, WorkflowModels,
};
use ids_core::{IdsConfig, IdsInstance};
use ids_serve::{QueryService, ServeConfig, TenantConfig};
use ids_simrt::{NetworkModel, Topology};
use ids_workloads::ncnpr::{build, Band, NcnprConfig};
use std::fmt::Write as _;
use std::sync::Arc;

const SEED: u64 = 7;
const CLIENTS_AXIS: [usize; 4] = [1, 4, 16, 64];
const QUERIES_PER_CLIENT: usize = 4;

/// Bench-scale dataset: large enough that recomputing a plan fragment
/// costs far more than the ~1 ms backing-store write a checkpoint pays,
/// so the reuse trade-off is measured in the regime the paper targets
/// (the unit-test configs are deliberately tiny and sit below it).
fn dataset_config() -> NcnprConfig {
    NcnprConfig {
        bands: vec![
            Band {
                mutation_rate: 0.0,
                similarity_range: None,
                proteins: 12,
                compounds_per_protein: 6,
            },
            Band {
                mutation_rate: 0.62,
                similarity_range: Some((0.21, 0.39)),
                proteins: 24,
                compounds_per_protein: 4,
            },
        ],
        background_proteins: 400,
        ..NcnprConfig::default()
    }
}

fn launch() -> IdsInstance {
    let topo = Topology::new(4, 2);
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 64 << 20, 256 << 20).with_replication(2),
        BackingStore::default_store(),
    ));
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), 11);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    inst.attach_cache(cache);
    let dataset = build(inst.datastore(), &dataset_config());
    let target = dataset.target.clone();
    install_workflow(&mut inst, &target, WorkflowModels::test_models());
    inst
}

/// The overlapping workload: two repurposing variants that share a BGP
/// (different FILTER thresholds) plus an α-renamed pair of scans. Every
/// client cycles through all four, so any two clients overlap on every
/// checkpointed fragment.
fn query_pool() -> Vec<String> {
    vec![
        repurposing_query(&RepurposingThresholds {
            sw_similarity: 0.9,
            min_pic50: 3.0,
            min_dtba: 3.0,
        }),
        repurposing_query(&RepurposingThresholds {
            sw_similarity: 0.9,
            min_pic50: 3.5,
            min_dtba: 3.0,
        }),
        "SELECT ?p WHERE { ?p <rdf:type> <up:Protein> . }".to_string(),
        "SELECT ?q WHERE { ?q <rdf:type> <up:Protein> . }".to_string(),
    ]
}

struct Cell {
    clients: usize,
    reuse: bool,
    queries: usize,
    total_virtual_secs: f64,
    throughput_qps: f64,
    p50_latency_secs: f64,
    p99_latency_secs: f64,
    reuse_hits: u64,
    reuse_probes: u64,
    trace_hash: u64,
}

impl Cell {
    fn hit_rate(&self) -> f64 {
        if self.reuse_probes == 0 {
            0.0
        } else {
            self.reuse_hits as f64 / self.reuse_probes as f64
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn run_cell(clients: usize, reuse: bool) -> Cell {
    let inst = launch();
    let mut svc = QueryService::new(
        inst,
        ServeConfig {
            quantum_secs: 1.0e-5,
            reuse,
            max_in_flight: usize::MAX,
            ..ServeConfig::default()
        },
    );
    let pool = query_pool();
    let mut sessions = Vec::new();
    for i in 0..clients {
        let tenant = format!("client{i:03}");
        // Mild weight skew so WDRR has something to arbitrate.
        svc.register_tenant(
            TenantConfig::new(tenant.clone())
                .with_weight(1 + (i % 3) as u32)
                .with_max_queued(QUERIES_PER_CLIENT),
        );
        sessions.push(svc.open_session(&tenant).expect("fresh tenant"));
    }
    // Interleave submissions round-robin so clients contend for slices.
    for q in 0..QUERIES_PER_CLIENT {
        for (i, session) in sessions.iter().enumerate() {
            let text = &pool[(i + q) % pool.len()];
            svc.submit(*session, text).expect("admission under bound");
        }
    }
    let done = svc.run_until_idle();
    assert_eq!(done.len(), clients * QUERIES_PER_CLIENT, "all queries complete");
    let mut latencies: Vec<f64> = done
        .iter()
        .map(|c| {
            assert!(c.result.is_ok(), "no query may fail: {:?}", c.result);
            c.latency_secs
        })
        .collect();
    latencies.sort_by(f64::total_cmp);
    let total = svc.instance().cluster().elapsed();
    let snap = svc.instance().metrics_snapshot();
    let hits = snap.counter_sum("ids_reuse_hits_total");
    let probes = hits + snap.counter_sum("ids_reuse_misses_total");
    Cell {
        clients,
        reuse,
        queries: done.len(),
        total_virtual_secs: total,
        throughput_qps: done.len() as f64 / total,
        p50_latency_secs: percentile(&latencies, 0.50),
        p99_latency_secs: percentile(&latencies, 0.99),
        reuse_hits: hits,
        reuse_probes: probes,
        trace_hash: svc.trace_hash(),
    }
}

fn write_json(cells: &[Cell]) -> std::io::Result<()> {
    let mut j = String::new();
    j.push_str("{\n  \"experiment\": \"ablation_serve\",\n");
    let _ = writeln!(j, "  \"seed\": {SEED},");
    let _ = writeln!(j, "  \"queries_per_client\": {QUERIES_PER_CLIENT},");
    j.push_str("  \"runs\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"clients\": {}, \"reuse\": {}, \"queries\": {}, \
             \"total_virtual_secs\": {:.9}, \"throughput_qps\": {:.3}, \
             \"p50_latency_secs\": {:.9}, \"p99_latency_secs\": {:.9}, \
             \"reuse_hits\": {}, \"reuse_probes\": {}, \"hit_rate\": {:.4}, \
             \"trace_hash\": \"{:#018x}\"}}",
            c.clients,
            c.reuse,
            c.queries,
            c.total_virtual_secs,
            c.throughput_qps,
            c.p50_latency_secs,
            c.p99_latency_secs,
            c.reuse_hits,
            c.reuse_probes,
            c.hit_rate(),
            c.trace_hash,
        );
        j.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    std::fs::create_dir_all("bench_results")?;
    std::fs::write("bench_results/serve.json", j)
}

fn main() {
    section("X6: multi-tenant service — clients x semantic reuse");
    let mut cells = Vec::new();
    for &clients in &CLIENTS_AXIS {
        for reuse in [false, true] {
            cells.push(run_cell(clients, reuse));
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.clients.to_string(),
                if c.reuse { "on" } else { "off" }.to_string(),
                c.queries.to_string(),
                format!("{:.6}s", c.total_virtual_secs),
                format!("{:.1}", c.throughput_qps),
                format!("{:.6}s", c.p50_latency_secs),
                format!("{:.6}s", c.p99_latency_secs),
                format!("{:.1}%", 100.0 * c.hit_rate()),
            ]
        })
        .collect();
    table(
        &["clients", "reuse", "queries", "virtual total", "qps", "p50", "p99", "hit rate"],
        &rows,
    );

    // Acceptance checks at the 16-client cell.
    let off16 = cells.iter().find(|c| c.clients == 16 && !c.reuse).unwrap();
    let on16 = cells.iter().find(|c| c.clients == 16 && c.reuse).unwrap();
    assert!(on16.reuse_hits > 0, "overlapping workload must hit the fingerprint cache");
    assert!(
        on16.total_virtual_secs < off16.total_virtual_secs,
        "reuse must cut total virtual time at 16 clients: on={} off={}",
        on16.total_virtual_secs,
        off16.total_virtual_secs
    );
    println!(
        "\n16 clients: reuse cut total virtual time {:.6}s -> {:.6}s ({:.1}% saved) \
         with {}/{} checkpoint probes hitting ({:.1}%)",
        off16.total_virtual_secs,
        on16.total_virtual_secs,
        100.0 * (1.0 - on16.total_virtual_secs / off16.total_virtual_secs),
        on16.reuse_hits,
        on16.reuse_probes,
        100.0 * on16.hit_rate(),
    );

    write_json(&cells).expect("write bench_results/serve.json");
    println!("wrote bench_results/serve.json");
}
