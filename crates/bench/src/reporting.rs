//! Table/figure rendering helpers shared by the experiment binaries.

use ids_obs::{MetricKey, MetricsSnapshot};

/// Per-rank UDF profile series (`udf="r<N>/<name>"`) are one line *per
/// rank*: at paper scale (8192 ranks) they would swamp the report. The
/// merged (`udf="<name>"`) series carry the totals, so the dump keeps
/// those and summarizes the per-rank series with one count line.
fn is_per_rank(key: &MetricKey) -> bool {
    key.label_key == "udf"
        && key.label_value.split_once('/').is_some_and(|(rank, _)| {
            rank.strip_prefix('r').is_some_and(|n| n.parse::<u32>().is_ok())
        })
}

/// Dump an `ids-obs` snapshot after an experiment's report: counters and
/// gauges as `name{labels} value` lines, histograms as count/mean. Keeps
/// experiment outputs self-describing without scraping an endpoint.
pub fn metrics_dump(title: &str, snapshot: &MetricsSnapshot) {
    section(title);
    if snapshot.is_empty() {
        println!("(no metrics recorded)");
        return;
    }
    let mut per_rank = 0usize;
    for (key, v) in &snapshot.counters {
        if is_per_rank(key) {
            per_rank += 1;
        } else {
            println!("{} {v}", key.render());
        }
    }
    for (key, v) in &snapshot.gauges {
        if is_per_rank(key) {
            per_rank += 1;
        } else {
            println!("{} {v}", key.render());
        }
    }
    for (key, h) in &snapshot.histograms {
        println!("{} count={} mean={:.6} max={:.6}", key.render(), h.count, h.mean(), h.max);
    }
    if per_rank > 0 {
        println!("({per_rank} per-rank udf series suppressed; merged totals shown above)");
    }
}

/// Print a boxed section header so experiment output is easy to scan.
pub fn section(title: &str) {
    let bar = "=".repeat(title.len() + 4);
    println!("\n{bar}\n| {title} |\n{bar}");
}

/// Render a simple aligned table: a header row plus data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format seconds with sensible precision for table cells.
pub fn secs(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.1}")
    } else if t >= 1.0 {
        format!("{t:.2}")
    } else {
        format!("{t:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_formats_by_magnitude() {
        assert_eq!(secs(123.456), "123.5");
        assert_eq!(secs(8.5), "8.50");
        assert_eq!(secs(0.01234), "0.0123");
    }
}
