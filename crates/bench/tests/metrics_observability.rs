//! End-to-end observability: after a cached NCNPR re-purposing query, the
//! instance's Prometheus exposition must carry the cache tier counters,
//! the engine operator timings, and the planner series — and EXPLAIN must
//! surface the live snapshot.

use ids_bench::ncnpr_setup::{build_ncnpr_instance, NcnprBenchOptions};
use ids_cache::{BackingStore, CacheConfig, CacheManager};
use ids_core::workflow::{repurposing_query, RepurposingThresholds};
use ids_simrt::{NetworkModel, Topology};
use std::sync::Arc;

fn cached_bench() -> ids_bench::ncnpr_setup::NcnprBench {
    let nodes = 2u32;
    let ranks_per_node = 4u32;
    let cache = Arc::new(CacheManager::new(
        Topology::new(nodes, ranks_per_node),
        NetworkModel::slingshot(),
        CacheConfig::new(1, 64 << 20, 512 << 20),
        BackingStore::default_store(),
    ));
    build_ncnpr_instance(NcnprBenchOptions {
        nodes,
        ranks_per_node,
        bulk: (0, 0),
        dtba_scale: 1.0,
        cache: Some(cache),
        paper_scale: false,
        seed: 11,
    })
}

#[test]
fn prometheus_exposition_covers_cached_ncnpr_query() {
    let mut inst = cached_bench().inst;
    let q = repurposing_query(&RepurposingThresholds {
        sw_similarity: 0.9,
        min_pic50: 3.0,
        min_dtba: 3.0,
    });

    // Cold run fills the cache with docking results; warm run hits it.
    inst.query(&q).expect("cold query");
    inst.reset_clocks();
    inst.query(&q).expect("warm query");

    let cache_stats = inst.cache().unwrap().stats();
    assert!(cache_stats.cache_hits() > 0, "warm run must hit the cache");

    let text = inst.render_prometheus();
    // Cache tier counters flow through the merged exposition.
    assert!(
        text.contains("ids_cache_lookup_hits_total{tier="),
        "cache tier counters missing:\n{text}"
    );
    assert!(text.contains("ids_cache_inserts_total{tier=\"dram\"}"), "{text}");
    assert!(text.contains("# TYPE ids_cache_size_bytes gauge"), "{text}");
    // Engine and planner series from the instance's own registry.
    assert!(text.contains("ids_engine_queries_total 2"), "{text}");
    assert!(text.contains("ids_engine_stage_secs_bucket{stage=\"scan\""), "{text}");
    assert!(text.contains("ids_engine_stage_secs_count{stage=\"apply\"}"), "{text}");
    assert!(text.contains("ids_planner_plans_total 2"), "{text}");
    // UDF profiles exported as gauges (merged + per-rank).
    assert!(text.contains("ids_udf_profile_calls{udf=\"sw_similarity\"}"), "{text}");

    // The snapshot agrees with the cache's own accounting.
    let snap = inst.metrics_snapshot();
    let tier_hits: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.name == "ids_cache_lookup_hits_total" && k.label_value != "backing")
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(tier_hits, cache_stats.cache_hits());
}

#[test]
fn explain_reports_live_metrics_after_queries() {
    let mut inst = cached_bench().inst;
    let q = repurposing_query(&RepurposingThresholds {
        sw_similarity: 0.9,
        min_pic50: 3.0,
        min_dtba: 3.0,
    });

    // Before any execution there are no operator timings (the attached
    // cache pre-registers zeroed counters, so the snapshot itself is not
    // structurally empty — the fully-empty placeholder is unit-tested in
    // ids-core).
    let before = inst.explain(&q).expect("explain");
    assert!(before.contains("(no operator timings yet)"), "{before}");

    inst.query(&q).expect("query");
    let after = inst.explain(&q).expect("explain");
    assert!(after.contains("metrics (live, virtual time)"), "{after}");
    assert!(after.contains("scan :"), "operator timings missing:\n{after}");
    assert!(after.contains("cache:"), "cache hit ratio missing:\n{after}");
    assert!(after.contains("expected chain cost:"), "{after}");
    // Span log recorded the stages with virtual timestamps.
    let spans = inst.metrics().spans().snapshot();
    assert!(spans.iter().any(|s| s.name == "scan"));
    assert!(spans.iter().any(|s| s.name == "query"));
    assert!(spans.iter().all(|s| s.end_secs >= s.start_secs));
}
