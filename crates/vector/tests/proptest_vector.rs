//! Property-based tests for the vector search paths under adversarial
//! float inputs: NaN, ±inf, and signed zeros must never panic the
//! comparator-driven code (`sort_by`, bounded top-k heap) and must keep
//! search fully deterministic.
//!
//! Before the `total_cmp` sweep these were real failure modes: a NaN
//! score made `partial_cmp(..).unwrap_or(Equal)` orderings
//! inconsistent, which `sort_unstable_by` is allowed to punish
//! arbitrarily.

use ids_vector::store::Metric;
use ids_vector::{IvfIndex, VectorStore};
use proptest::prelude::*;

const DIM: usize = 4;

/// Decode one (tag, magnitude) pair into a possibly-pathological f32.
fn decode(tag: u8, mag: f64) -> f32 {
    match tag % 5 {
        0 => mag as f32,
        1 => f32::NAN,
        2 => f32::INFINITY,
        3 => f32::NEG_INFINITY,
        _ => 0.0 * mag.signum() as f32, // ±0.0
    }
}

/// Build a DIM-dimensional corpus from a flat list of encoded cells.
fn corpus_from(cells: &[(u8, f64)]) -> VectorStore {
    let mut s = VectorStore::new(DIM);
    for (i, chunk) in cells.chunks_exact(DIM).enumerate() {
        let v: Vec<f32> = chunk.iter().map(|&(t, m)| decode(t, m)).collect();
        s.insert(i as u64, &v);
    }
    s
}

fn ids(hits: &[ids_vector::SearchHit]) -> Vec<u64> {
    hits.iter().map(|h| h.id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Exact search never panics and is deterministic, whatever float
    /// garbage the corpus or query contains.
    #[test]
    fn exact_search_total_and_deterministic(
        cells in proptest::collection::vec((0u8..=4, -100.0f64..100.0), DIM..DIM * 24),
        qcells in proptest::collection::vec((0u8..=4, -100.0f64..100.0), DIM..DIM + 1),
        k in 0usize..12,
    ) {
        let s = corpus_from(&cells);
        let q: Vec<f32> = qcells.iter().map(|&(t, m)| decode(t, m)).collect();
        let a = s.search(&q, k, Metric::L2);
        let b = s.search(&q, k, Metric::L2);
        prop_assert_eq!(ids(&a), ids(&b), "exact search must be deterministic");
        prop_assert_eq!(a.len(), k.min(s.len()), "top-k is exactly min(k, n)");
        // NaN-last total order: once a NaN score appears, no non-NaN
        // score may follow it.
        let first_nan = a.iter().position(|h| h.score.is_nan()).unwrap_or(a.len());
        prop_assert!(a[first_nan..].iter().all(|h| h.score.is_nan()), "NaN hits sort last");
        // The non-NaN prefix is descending by score.
        for w in a[..first_nan].windows(2) {
            prop_assert!(w[0].score >= w[1].score, "finite prefix must be best-first");
        }
    }

    /// IVF build + search never panics and is deterministic under the
    /// same adversarial inputs (k-means over NaN/inf vectors produces
    /// NaN centroids and NaN cell distances — all must stay ordered).
    #[test]
    fn ivf_search_total_and_deterministic(
        cells in proptest::collection::vec((0u8..=4, -100.0f64..100.0), DIM..DIM * 24),
        qcells in proptest::collection::vec((0u8..=4, -100.0f64..100.0), DIM..DIM + 1),
        nlist in 1usize..6,
        nprobe in 1usize..8,
        k in 0usize..12,
    ) {
        let s = corpus_from(&cells);
        let q: Vec<f32> = qcells.iter().map(|&(t, m)| decode(t, m)).collect();
        let idx = IvfIndex::build(&s, nlist, 4, 42);
        let a = idx.search(&q, k, nprobe);
        let b = idx.search(&q, k, nprobe);
        prop_assert_eq!(ids(&a), ids(&b), "IVF search must be deterministic");
        prop_assert!(a.len() <= k, "never more than k hits");
        // Rebuilding from the same corpus and seed is also bit-stable.
        let idx2 = IvfIndex::build(&s, nlist, 4, 42);
        prop_assert_eq!(ids(&idx2.search(&q, k, nprobe)), ids(&a), "build is deterministic");
    }

    /// On finite inputs the bounded top-k heap agrees with exact search
    /// when every cell is probed — the heap optimization must not change
    /// results.
    #[test]
    fn full_probe_heap_matches_exact_on_finite_inputs(
        mags in proptest::collection::vec(-100.0f64..100.0, DIM * 2..DIM * 32),
        qmags in proptest::collection::vec(-100.0f64..100.0, DIM..DIM + 1),
        nlist in 1usize..6,
        k in 1usize..10,
    ) {
        let mut s = VectorStore::new(DIM);
        for (i, chunk) in mags.chunks_exact(DIM).enumerate() {
            let v: Vec<f32> = chunk.iter().map(|&m| m as f32).collect();
            s.insert(i as u64, &v);
        }
        let q: Vec<f32> = qmags.iter().map(|&m| m as f32).collect();
        let idx = IvfIndex::build(&s, nlist, 4, 7);
        let exact = s.search(&q, k, Metric::L2);
        let ivf = idx.search(&q, k, idx.nlist());
        prop_assert_eq!(ids(&ivf), ids(&exact), "full probe must equal exact top-k");
    }
}

#[test]
fn o1_get_survives_duplicate_ids_and_lookups_match_first_insertion() {
    let mut s = VectorStore::new(2);
    s.insert(7, &[1.0, 2.0]);
    s.insert(7, &[9.0, 9.0]); // duplicate id: first insertion wins for get()
    s.insert(8, &[3.0, 4.0]);
    assert_eq!(s.get(7), Some(&[1.0f32, 2.0][..]));
    assert_eq!(s.get(8), Some(&[3.0f32, 4.0][..]));
    assert_eq!(s.get(9), None);
}
