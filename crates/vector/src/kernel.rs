//! Dense-vector similarity kernels.
//!
//! Plain-loop implementations the compiler auto-vectorizes; the guides'
//! advice for hot numeric kernels is to keep the inner loop branch-free and
//! index-check-free (iterator zips) rather than hand-rolling intrinsics.

/// Dot product.
///
/// # Panics
/// Panics (debug) on dimension mismatch.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared L2 distance (cheaper than rooted; order-preserving).
#[inline]
pub fn l2_squared(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance.
#[inline]
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    l2_squared(a, b).sqrt()
}

/// Cosine similarity in `[-1, 1]`; zero vectors yield 0.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let d = dot(a, b);
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (d / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// Normalize to unit length in place (zero vectors are left untouched).
pub fn normalize(v: &mut [f32]) {
    let n = dot(v, v).sqrt();
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn l2_of_identical_is_zero() {
        let v = [0.5, -1.5, 2.0];
        assert_eq!(l2_distance(&v, &v), 0.0);
        assert!((l2_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_bounds_and_cases() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn normalize_makes_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((dot(&v, &v) - 1.0).abs() < 1e-6);
        // Zero vector untouched.
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 1.0, 0.5];
        let scaled: Vec<f32> = b.iter().map(|x| x * 7.5).collect();
        assert!((cosine(&a, &b) - cosine(&a, &scaled)).abs() < 1e-6);
    }
}
