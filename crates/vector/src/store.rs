//! The flat vector store with exact parallel top-k search.
//!
//! Vectors live in one contiguous `Vec<f32>` (row-major, fixed dimension) —
//! cache-friendly linear scans, no per-vector allocation. Search
//! parallelizes across rayon workers and merges per-worker heaps.

use crate::kernel::{cosine, l2_squared};
use ids_obs::{Counter, MetricsRegistry};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Distance/similarity metric for search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Cosine similarity (higher = closer).
    Cosine,
    /// Euclidean distance (lower = closer).
    L2,
}

/// A search result: external id plus score (always "higher is better";
/// L2 scores are negated distances).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    pub id: u64,
    pub score: f32,
}

/// Pre-resolved exact-scan counters, attached on demand.
struct StoreMetrics {
    searches: Counter,
    scanned: Counter,
}

/// Fixed-dimension vector store.
pub struct VectorStore {
    dim: usize,
    ids: Vec<u64>,
    data: Vec<f32>,
    /// id → internal index of its *first* insertion, for O(1) [`Self::get`].
    index: HashMap<u64, usize>,
    metrics: Option<StoreMetrics>,
}

impl VectorStore {
    /// An empty store of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self { dim, ids: Vec::new(), data: Vec::new(), index: HashMap::new(), metrics: None }
    }

    /// Attach an `ids-obs` registry: every subsequent exact search bumps
    /// `ids_vector_exact_searches_total` and
    /// `ids_vector_exact_scanned_total` (vectors scored).
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(StoreMetrics {
            searches: registry.counter("ids_vector_exact_searches_total"),
            scanned: registry.counter("ids_vector_exact_scanned_total"),
        });
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Insert a vector under an external id.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn insert(&mut self, id: u64, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "dimension mismatch");
        self.index.entry(id).or_insert(self.ids.len());
        self.ids.push(id);
        self.data.extend_from_slice(vector);
    }

    /// The vector stored at internal index `i`.
    #[inline]
    pub fn vector_at(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// External id of the vector at internal index `i` (insertion order).
    #[inline]
    pub fn id_at(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Look up a vector by external id — O(1) via the id→index map (the
    /// engine's similarity joins resolve per-binding embeddings here). If
    /// an id was inserted twice, the first insertion wins.
    pub fn get(&self, id: u64) -> Option<&[f32]> {
        self.index.get(&id).map(|&i| self.vector_at(i))
    }

    /// Exact top-k nearest vectors to `query` under `metric`, best first.
    pub fn search(&self, query: &[f32], k: usize, metric: Metric) -> Vec<SearchHit> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        if let Some(m) = &self.metrics {
            m.searches.inc();
            m.scanned.add(self.len() as u64);
        }
        // Parallel chunked scan; each chunk keeps its own top-k, merged at
        // the end (cheaper than a shared concurrent heap).
        let chunk = (self.len() / rayon::current_num_threads().max(1)).max(1024);
        let mut hits: Vec<SearchHit> = (0..self.len())
            .into_par_iter()
            .chunks(chunk)
            .map(|idxs| {
                let mut local: Vec<SearchHit> = idxs
                    .into_iter()
                    .map(|i| {
                        let v = self.vector_at(i);
                        let score = match metric {
                            Metric::Cosine => cosine(query, v),
                            Metric::L2 => -l2_squared(query, v),
                        };
                        SearchHit { id: self.ids[i], score }
                    })
                    .collect();
                keep_top_k(&mut local, k);
                local
            })
            .flatten()
            .collect();
        keep_top_k(&mut hits, k);
        hits
    }
}

/// Total order on hits: descending score with **NaN scores sorting last**,
/// ties broken by ascending id. Non-NaN scores compare via
/// [`f32::total_cmp`], so the order is total and antisymmetric even for
/// ±inf / ±0.0 / NaN embeddings — top-k selection stays deterministic
/// across runs and ranks (a `partial_cmp(..).unwrap_or(Equal)` comparator
/// is not a strict weak order once a NaN appears, and `sort_unstable_by`
/// may then return different prefixes per run).
pub(crate) fn hit_order(a: &SearchHit, b: &SearchHit) -> Ordering {
    match (a.score.is_nan(), b.score.is_nan()) {
        (false, false) => b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)),
        (true, true) => a.id.cmp(&b.id),
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
    }
}

/// Truncate `hits` to the `k` best under [`hit_order`].
fn keep_top_k(hits: &mut Vec<SearchHit>, k: usize) {
    hits.sort_unstable_by(hit_order);
    hits.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_axes() -> VectorStore {
        let mut s = VectorStore::new(4);
        for i in 0..4 {
            let mut v = vec![0.0f32; 4];
            v[i] = 1.0;
            s.insert(i as u64, &v);
        }
        s
    }

    #[test]
    fn nearest_axis_wins_cosine() {
        let s = unit_axes();
        let hits = s.search(&[0.9, 0.1, 0.0, 0.0], 2, Metric::Cosine);
        assert_eq!(hits[0].id, 0);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn l2_finds_exact_match_first() {
        let s = unit_axes();
        let hits = s.search(&[0.0, 0.0, 1.0, 0.0], 1, Metric::L2);
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[0].score, 0.0, "negated distance of exact match");
    }

    #[test]
    fn k_larger_than_store_returns_all() {
        let s = unit_axes();
        assert_eq!(s.search(&[1.0, 0.0, 0.0, 0.0], 100, Metric::Cosine).len(), 4);
    }

    #[test]
    fn k_zero_and_empty_store() {
        let s = unit_axes();
        assert!(s.search(&[1.0, 0.0, 0.0, 0.0], 0, Metric::Cosine).is_empty());
        let empty = VectorStore::new(4);
        assert!(empty.search(&[1.0, 0.0, 0.0, 0.0], 3, Metric::Cosine).is_empty());
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let mut s = VectorStore::new(2);
        // Three identical vectors.
        for id in [30u64, 10, 20] {
            s.insert(id, &[1.0, 0.0]);
        }
        let hits = s.search(&[1.0, 0.0], 3, Metric::Cosine);
        let ids: Vec<u64> = hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![10, 20, 30]);
    }

    #[test]
    fn parallel_scan_matches_serial_on_large_store() {
        // 20k random-ish vectors; top-1 must be the planted near-duplicate.
        let mut s = VectorStore::new(8);
        for i in 0..20_000u64 {
            let v: Vec<f32> = (0..8).map(|d| ((i * 31 + d * 7) % 97) as f32 / 97.0).collect();
            s.insert(i, &v);
        }
        // Plant one vector that is unique in the corpus.
        s.insert(20_000, &[9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0]);
        let probe: Vec<f32> = s.get(20_000).unwrap().to_vec();
        let hits = s.search(&probe, 5, Metric::L2);
        assert_eq!(hits[0].id, 20_000);
        assert_eq!(hits.len(), 5);
        // Scores are non-increasing.
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_rejected() {
        let mut s = VectorStore::new(3);
        s.insert(0, &[1.0, 2.0]);
    }
}
