//! IVF (inverted-file) approximate nearest-neighbour index.
//!
//! The paper's "what-could-be" query executes *millions* of similarity
//! searches (§1); exact scans don't survive that at interactive latency.
//! IVF is the classic fix: k-means the corpus into `nlist` cells, then at
//! query time probe only the `nprobe` cells whose centroids are closest.
//! Recall/latency trades off via `nprobe` — the ablation bench sweeps it.

use crate::kernel::l2_squared;
use crate::store::{hit_order, SearchHit, VectorStore};
use ids_obs::{Counter, MetricsRegistry};
use ids_simrt::rng::SplitMix64;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Pre-resolved search counters, attached on demand.
struct IvfMetrics {
    searches: Counter,
    probes: Counter,
    candidates: Counter,
}

/// An IVF index over an externally owned corpus.
pub struct IvfIndex {
    dim: usize,
    centroids: Vec<Vec<f32>>,
    /// Per-cell member lists: (external id, vector).
    cells: Vec<Vec<(u64, Vec<f32>)>>,
    metrics: Option<IvfMetrics>,
}

impl IvfIndex {
    /// Build an index with `nlist` cells via Lloyd's k-means (`iters`
    /// rounds, seeded initialization).
    ///
    /// # Panics
    /// Panics if the corpus is empty or `nlist == 0`.
    pub fn build(corpus: &VectorStore, nlist: usize, iters: usize, seed: u64) -> Self {
        assert!(nlist > 0, "need at least one cell");
        assert!(!corpus.is_empty(), "cannot index an empty corpus");
        let dim = corpus.dim();
        let n = corpus.len();
        let nlist = nlist.min(n);
        let mut rng = SplitMix64::new(seed, 0x1BF);

        // Init: sample distinct corpus points as seeds.
        let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(nlist);
        let mut taken = std::collections::HashSet::new();
        while centroids.len() < nlist {
            let i = rng.next_below(n as u64) as usize;
            if taken.insert(i) {
                centroids.push(corpus.vector_at(i).to_vec());
            }
        }

        let mut assignment = vec![0usize; n];
        for _ in 0..iters {
            // Assign.
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = nearest_centroid(corpus.vector_at(i), &centroids);
            }
            // Update.
            let mut sums = vec![vec![0f32; dim]; nlist];
            let mut counts = vec![0usize; nlist];
            for (i, &c) in assignment.iter().enumerate() {
                counts[c] += 1;
                for (s, v) in sums[c].iter_mut().zip(corpus.vector_at(i)) {
                    *s += v;
                }
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    for s in sums[c].iter_mut() {
                        *s /= counts[c] as f32;
                    }
                    centroids[c] = std::mem::take(&mut sums[c]);
                }
                // Empty cells keep their previous centroid.
            }
        }

        // Final assignment into cells.
        let mut cells: Vec<Vec<(u64, Vec<f32>)>> = vec![Vec::new(); nlist];
        for i in 0..n {
            let c = nearest_centroid(corpus.vector_at(i), &centroids);
            cells[c].push((corpus.id_at(i), corpus.vector_at(i).to_vec()));
        }

        Self { dim, centroids, cells, metrics: None }
    }

    /// Attach an `ids-obs` registry: every subsequent search bumps
    /// `ids_vector_searches_total`, `ids_vector_probes_total` (cells
    /// visited), and `ids_vector_candidates_total` (vectors scored).
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(IvfMetrics {
            searches: registry.counter("ids_vector_searches_total"),
            probes: registry.counter("ids_vector_probes_total"),
            candidates: registry.counter("ids_vector_candidates_total"),
        });
    }

    /// Number of cells.
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    /// Search the `nprobe` nearest cells for the top-k closest vectors
    /// (L2). Results best-first.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<SearchHit> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if k == 0 {
            return Vec::new();
        }
        let nprobe = nprobe.clamp(1, self.centroids.len());
        // Rank cells by centroid distance: ascending, NaN distances probed
        // last, cell index as the deterministic tie-break.
        let mut order: Vec<(usize, f32)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(c, cent)| (c, l2_squared(query, cent)))
            .collect();
        order.sort_unstable_by(|a, b| match (a.1.is_nan(), b.1.is_nan()) {
            (false, false) => a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)),
            (true, true) => a.0.cmp(&b.0),
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
        });

        // Bounded top-k: a k-sized heap whose root is the *worst* retained
        // hit, instead of materializing and fully sorting every candidate
        // from all probed cells.
        let mut heap: BinaryHeap<HeapHit> = BinaryHeap::with_capacity(k + 1);
        let mut scored = 0u64;
        for &(c, _) in order.iter().take(nprobe) {
            for (id, v) in &self.cells[c] {
                scored += 1;
                let hit = SearchHit { id: *id, score: -l2_squared(query, v) };
                if heap.len() < k {
                    heap.push(HeapHit(hit));
                } else if hit_order(&hit, &heap.peek().expect("heap is non-empty").0)
                    == Ordering::Less
                {
                    heap.pop();
                    heap.push(HeapHit(hit));
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.searches.inc();
            m.probes.add(nprobe as u64);
            m.candidates.add(scored);
        }
        let mut hits: Vec<SearchHit> = heap.into_iter().map(|h| h.0).collect();
        hits.sort_unstable_by(hit_order);
        hits
    }
}

/// Heap adapter: max-heap element whose "greatest" value is the *worst*
/// hit under [`hit_order`] (NaN-last descending score, id tie-break).
struct HeapHit(SearchHit);

impl PartialEq for HeapHit {
    fn eq(&self, other: &Self) -> bool {
        hit_order(&self.0, &other.0) == Ordering::Equal
    }
}

impl Eq for HeapHit {}

impl PartialOrd for HeapHit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapHit {
    fn cmp(&self, other: &Self) -> Ordering {
        hit_order(&self.0, &other.0)
    }
}

#[inline]
fn nearest_centroid(v: &[f32], centroids: &[Vec<f32>]) -> usize {
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for (c, cent) in centroids.iter().enumerate() {
        let d = l2_squared(v, cent);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Metric;

    fn corpus_with_clusters() -> VectorStore {
        // Three well-separated gaussian-ish blobs in 4-D.
        let mut s = VectorStore::new(4);
        let mut rng = SplitMix64::new(99, 1);
        let centers = [[0.0f32, 0.0, 0.0, 0.0], [10.0, 10.0, 0.0, 0.0], [0.0, 0.0, 10.0, 10.0]];
        let mut id = 0u64;
        for c in &centers {
            for _ in 0..300 {
                let v: Vec<f32> = c.iter().map(|&x| x + rng.next_gaussian() as f32 * 0.5).collect();
                s.insert(id, &v);
                id += 1;
            }
        }
        s
    }

    #[test]
    fn ivf_recovers_cluster_members() {
        let corpus = corpus_with_clusters();
        let idx = IvfIndex::build(&corpus, 3, 10, 7);
        // Probe near cluster 1's center.
        let hits = idx.search(&[10.0, 10.0, 0.0, 0.0], 10, 1);
        assert_eq!(hits.len(), 10);
        for h in &hits {
            assert!((300..600).contains(&h.id), "hit {} outside cluster 1", h.id);
        }
    }

    #[test]
    fn more_probes_monotonically_improve_or_match_results() {
        let corpus = corpus_with_clusters();
        let idx = IvfIndex::build(&corpus, 8, 8, 3);
        let q = [5.0f32, 5.0, 5.0, 5.0]; // ambiguous point between clusters
        let best_1 = idx.search(&q, 1, 1)[0].score;
        let best_all = idx.search(&q, 1, 8)[0].score;
        assert!(best_all >= best_1, "full probe {best_all} vs 1-probe {best_1}");
    }

    #[test]
    fn full_probe_matches_exact_search() {
        let corpus = corpus_with_clusters();
        let idx = IvfIndex::build(&corpus, 6, 8, 5);
        let q = [9.5f32, 10.5, 0.2, -0.3];
        let exact = corpus.search(&q, 5, Metric::L2);
        let ivf = idx.search(&q, 5, 6);
        let exact_ids: Vec<u64> = exact.iter().map(|h| h.id).collect();
        let ivf_ids: Vec<u64> = ivf.iter().map(|h| h.id).collect();
        assert_eq!(exact_ids, ivf_ids);
    }

    #[test]
    fn probe_metrics_count_searches_and_cells() {
        let corpus = corpus_with_clusters();
        let mut idx = IvfIndex::build(&corpus, 8, 8, 3);
        let reg = MetricsRegistry::new();
        idx.attach_metrics(&reg);
        idx.search(&[0.0, 0.0, 0.0, 0.0], 5, 2);
        idx.search(&[10.0, 10.0, 0.0, 0.0], 5, 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("ids_vector_searches_total", ""), 2);
        assert_eq!(snap.counter("ids_vector_probes_total", ""), 5);
        assert!(snap.counter("ids_vector_candidates_total", "") > 0);
    }

    #[test]
    fn nlist_capped_by_corpus_size() {
        let mut s = VectorStore::new(2);
        s.insert(0, &[0.0, 0.0]);
        s.insert(1, &[1.0, 1.0]);
        let idx = IvfIndex::build(&s, 50, 3, 1);
        assert!(idx.nlist() <= 2);
        let hits = idx.search(&[0.1, 0.1], 2, 50);
        assert_eq!(hits[0].id, 0);
    }
}
