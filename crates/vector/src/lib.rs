//! # ids-vector — the vector store
//!
//! The IDS datastore "functions as a 3-in-1 feature store, vector store,
//! and knowledge graph host" and offers "linear-algebraic methods" as
//! first-class query operators (§1). This crate is the vector-store third:
//!
//! * [`kernel`] — dense-vector similarity kernels (dot, cosine, Euclidean).
//! * [`store`] — a flat vector store with exact parallel top-k search,
//!   sharded across ranks like the triple store.
//! * [`ivf`] — an IVF (inverted-file) approximate index: k-means centroids
//!   with probe-limited search, for the "millions of similarity searches"
//!   scale the paper's what-could-be query runs.

pub mod ivf;
pub mod kernel;
pub mod store;

pub use ivf::IvfIndex;
pub use kernel::{cosine, dot, l2_distance, normalize};
pub use store::{SearchHit, VectorStore};
