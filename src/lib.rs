//! # ids — umbrella crate for the Intelligent Data Search framework
//!
//! Re-exports every IDS subsystem under one roof so examples, integration
//! tests, and downstream users can depend on a single crate. See the
//! individual crates for detailed documentation:
//!
//! * [`simrt`] — virtual cluster runtime (ranks, clocks, collectives)
//! * [`chem`] — protein / small-molecule substrate
//! * [`models`] — the model repository (Smith–Waterman, DTBA, docking, …)
//! * [`graph`] — partitioned in-memory triple store
//! * [`vector`] — vector store and similarity search
//! * [`feature`] — feature store
//! * [`udf`] — UDF registry, profiling, reordering, re-balancing
//! * [`cache`] — global shared client-side cache
//! * [`core`] — the IDS engine: datastore, IQL, planner, workflows
//! * [`obs`] — metrics registry, virtual-clock spans, Prometheus exposition
//! * [`serve`] — multi-tenant query service: sessions, admission control,
//!   fair-share scheduling, semantic result reuse
//! * [`workloads`] — synthetic Table-1-shaped dataset generators

pub use ids_cache as cache;
pub use ids_chem as chem;
pub use ids_core as core;
pub use ids_feature as feature;
pub use ids_graph as graph;
pub use ids_models as models;
pub use ids_obs as obs;
pub use ids_serve as serve;
pub use ids_simrt as simrt;
pub use ids_udf as udf;
pub use ids_vector as vector;
pub use ids_workloads as workloads;

/// Crate version of the umbrella package.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
