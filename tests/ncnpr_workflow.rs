//! Integration: the NCNPR drug-re-purposing workflow, spanning
//! ids-workloads, ids-core, ids-models, and ids-cache.

use ids::cache::{BackingStore, CacheConfig, CacheManager};
use ids::core::workflow::{
    docking_object_name, install_workflow, repurposing_query, RepurposingThresholds, WorkflowModels,
};
use ids::core::{IdsConfig, IdsInstance};
use ids::simrt::{NetworkModel, Topology};
use ids::workloads::ncnpr::{build, Band, NcnprConfig};
use std::sync::Arc;

fn small_config() -> NcnprConfig {
    NcnprConfig {
        bands: vec![
            Band {
                mutation_rate: 0.0,
                similarity_range: None,
                proteins: 3,
                compounds_per_protein: 4,
            },
            Band {
                mutation_rate: 0.62,
                similarity_range: Some((0.21, 0.39)),
                proteins: 5,
                compounds_per_protein: 2,
            },
        ],
        background_proteins: 10,
        ..NcnprConfig::default()
    }
}

fn launch(topo: Topology, cache: Option<Arc<CacheManager>>) -> IdsInstance {
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), 11);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    if let Some(c) = cache {
        inst.attach_cache(c);
    }
    let dataset = build(inst.datastore(), &small_config());
    let target = dataset.target.clone();
    install_workflow(&mut inst, &target, WorkflowModels::test_models());
    inst
}

fn query(sw: f64) -> String {
    repurposing_query(&RepurposingThresholds { sw_similarity: sw, min_pic50: 3.0, min_dtba: 3.0 })
}

#[test]
fn tight_threshold_selects_only_the_near_identical_band() {
    let mut inst = launch(Topology::new(1, 4), None);
    let out = inst.query(&query(0.9)).unwrap();
    assert_eq!(out.solutions.len(), 12, "3 proteins x 4 compounds");
    // Every output row carries a finite docking energy.
    let ds = inst.datastore();
    for row in out.solutions.rows() {
        let energy = ds.decode(row[2]).unwrap().as_f64().unwrap();
        assert!(energy.is_finite());
    }
}

#[test]
fn loose_threshold_adds_the_low_band() {
    let mut inst = launch(Topology::new(1, 4), None);
    let out = inst.query(&query(0.2)).unwrap();
    assert_eq!(out.solutions.len(), 12 + 10, "both bands");
}

#[test]
fn background_proteins_never_reach_docking() {
    // Background proteins are unreviewed — the reviewed pattern excludes
    // them regardless of threshold.
    let mut inst = launch(Topology::new(1, 4), None);
    let out = inst.query(&query(0.0)).unwrap();
    assert_eq!(out.solutions.len(), 22, "bands only, never the background");
}

#[test]
fn cached_and_uncached_runs_agree_exactly() {
    // Determinism contract: a cache hit must be indistinguishable from
    // re-execution.
    let topo = Topology::new(2, 2);
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 64 << 20, 256 << 20),
        BackingStore::default_store(),
    ));
    let mut cached = launch(topo, Some(Arc::clone(&cache)));
    let cold = cached.query(&query(0.9)).unwrap();
    cached.reset_clocks();
    let warm = cached.query(&query(0.9)).unwrap();

    let mut uncached_inst = launch(topo, None);
    let plain = uncached_inst.query(&query(0.9)).unwrap();

    let extract = |o: &ids::core::QueryOutcome, inst: &IdsInstance| -> Vec<(String, String)> {
        let ds = inst.datastore();
        let mut v: Vec<(String, String)> = o
            .solutions
            .rows()
            .iter()
            .map(|r| {
                (
                    ds.decode(r[1]).unwrap().to_string(),
                    format!("{:.12}", ds.decode(r[2]).unwrap().as_f64().unwrap()),
                )
            })
            .collect();
        v.sort();
        v
    };
    let a = extract(&cold, &cached);
    let b = extract(&warm, &cached);
    let c = extract(&plain, &uncached_inst);
    assert_eq!(a, b, "cache hit == fresh simulation");
    assert_eq!(a, c, "cached instance == uncached instance");
    // And the warm run must be faster in virtual time.
    assert!(warm.elapsed_secs < cold.elapsed_secs / 2.0);
}

#[test]
fn docking_outputs_are_stashed_under_stable_names() {
    let topo = Topology::new(1, 4);
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(1, 64 << 20, 256 << 20),
        BackingStore::default_store(),
    ));
    let mut inst = launch(topo, Some(Arc::clone(&cache)));
    let out = inst.query(&query(0.9)).unwrap();
    // Each docked compound's object is findable by its derived name.
    let ds = inst.datastore();
    for row in out.solutions.rows() {
        let smiles = ds.decode(row[1]).unwrap().as_str().unwrap().to_string();
        let name = docking_object_name("P29274", &smiles);
        assert!(
            !cache.locality(&name).is_empty(),
            "docking output for {smiles} cached under {name}"
        );
    }
}

#[test]
fn udf_profilers_see_the_whole_chain() {
    let mut inst = launch(Topology::new(1, 4), None);
    inst.query(&query(0.9)).unwrap();
    let total = |name: &str| -> u64 {
        inst.profilers().iter().filter_map(|p| p.get(name)).map(|p| p.calls).sum()
    };
    // pIC50 is cheapest, so the reordered chain runs it on every candidate
    // row; SW runs on survivors of nothing (it's also early); docking runs
    // once per final candidate.
    assert!(total("pic50") > 0);
    assert!(total("sw_similarity") > 0);
    assert!(total("dtba") > 0);
    assert_eq!(total("vina_docking"), 12);
    // Rejections were attributed (the 0.9 threshold rejects the low band).
    let rejections: u64 =
        inst.profilers().iter().filter_map(|p| p.get("sw_similarity")).map(|p| p.rejections).sum();
    assert!(rejections >= 10, "low-band candidates rejected by SW, got {rejections}");
}
