//! Property-based tests over the cost-based join planner (DESIGN.md §5l):
//! every produced order is a valid permutation, the exhaustive DP never
//! loses to the greedy fallback within its width, connected queries never
//! pick up cross products, and re-planned suffixes stay well-formed.

use ids::core::cost::{
    choose_order, order_cost, order_patterns_dp, order_patterns_greedy_cost, replan_suffix,
    DP_MAX_PATTERNS,
};
use ids::core::planner::PhysicalPattern;
use ids::graph::TriplePattern;
use proptest::prelude::*;

/// Small shared variable pool so generated patterns actually join.
const VARS: [&str; 4] = ["a", "b", "c", "d"];

/// One position's variable slot: `0..VARS.len()` picks a pool variable,
/// `VARS.len()` leaves the position ground (~20% of draws).
fn slot(i: usize) -> Option<String> {
    VARS.get(i).map(|v| v.to_string())
}

fn arb_pattern() -> impl Strategy<Value = PhysicalPattern> {
    (0usize..=VARS.len(), 0usize..=VARS.len(), 1usize..5_000, 0.01f64..1.0, 0.01f64..1.0).prop_map(
        |(vs, vo, card, fs, fo)| PhysicalPattern {
            pattern: TriplePattern::new(None, None, None),
            var_s: slot(vs),
            var_p: None,
            var_o: slot(vo),
            impossible: false,
            est_cardinality: card,
            ndv_s: (fs * card as f64).max(1.0),
            ndv_p: 1.0,
            ndv_o: (fo * card as f64).max(1.0),
        },
    )
}

fn arb_patterns(max: usize) -> impl Strategy<Value = Vec<PhysicalPattern>> {
    proptest::collection::vec(arb_pattern(), 1..max + 1)
}

fn vars(p: &PhysicalPattern) -> Vec<&str> {
    [p.var_s.as_deref(), p.var_p.as_deref(), p.var_o.as_deref()].into_iter().flatten().collect()
}

fn share_var(a: &PhysicalPattern, b: &PhysicalPattern) -> bool {
    vars(a).iter().any(|v| vars(b).contains(v))
}

/// Whether the variable-sharing graph over `patterns` is connected
/// (a single pattern counts as connected).
fn join_graph_connected(patterns: &[PhysicalPattern]) -> bool {
    let n = patterns.len();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(i) = stack.pop() {
        for j in 0..n {
            if !seen[j] && share_var(&patterns[i], &patterns[j]) {
                seen[j] = true;
                stack.push(j);
            }
        }
    }
    seen.into_iter().all(|s| s)
}

#[track_caller]
fn assert_permutation(order: &[usize], lo: usize, hi: usize) {
    let mut sorted = order.to_vec();
    sorted.sort_unstable();
    assert_eq!(sorted, (lo..hi).collect::<Vec<_>>(), "not a permutation: {order:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every order the planner can produce — DP, greedy, or the
    /// width-dispatching `choose_order` — is a valid permutation.
    #[test]
    fn orders_are_permutations(patterns in arb_patterns(10)) {
        let n = patterns.len();
        assert_permutation(&choose_order(&patterns), 0, n);
        if let Some(dp) = order_patterns_dp(&patterns) {
            assert_permutation(&dp, 0, n);
        }
        let all: Vec<usize> = (0..n).collect();
        assert_permutation(&order_patterns_greedy_cost(&patterns, &all, None), 0, n);
    }

    /// The exhaustive DP never costs more than the greedy heuristic inside
    /// its width: greedy's order is itself a legal connected-first order,
    /// so the DP must find it (or something cheaper).
    #[test]
    fn dp_never_loses_to_greedy(patterns in arb_patterns(DP_MAX_PATTERNS)) {
        let dp = order_patterns_dp(&patterns).expect("within DP width");
        let all: Vec<usize> = (0..patterns.len()).collect();
        let greedy = order_patterns_greedy_cost(&patterns, &all, None);
        let (dp_cost, _) = order_cost(&patterns, &dp, None);
        let (greedy_cost, _) = order_cost(&patterns, &greedy, None);
        prop_assert!(
            dp_cost <= greedy_cost,
            "dp {dp_cost} > greedy {greedy_cost} (dp {dp:?}, greedy {greedy:?})"
        );
    }

    /// When the join graph is connected, both DP and greedy keep every
    /// step connected to the already-bound prefix — no cross products.
    #[test]
    fn connected_inputs_get_connected_orders(patterns in arb_patterns(DP_MAX_PATTERNS)) {
        if !join_graph_connected(&patterns) {
            return; // skip disconnected draws: no connected order exists
        }
        let all: Vec<usize> = (0..patterns.len()).collect();
        for order in [
            order_patterns_dp(&patterns).expect("within DP width"),
            order_patterns_greedy_cost(&patterns, &all, None),
        ] {
            for (step, &i) in order.iter().enumerate().skip(1) {
                let connected =
                    order[..step].iter().any(|&j| share_var(&patterns[i], &patterns[j]));
                prop_assert!(connected, "step {step} of {order:?} introduces a cross product");
            }
        }
    }

    /// Re-planned suffixes are permutations of exactly the remaining
    /// indices, with finite non-negative row estimates per step.
    #[test]
    fn replan_suffix_is_well_formed(
        patterns in arb_patterns(DP_MAX_PATTERNS),
        prefix_frac in 0.0f64..1.0,
        observed in 0u64..100_000,
    ) {
        let prefix_len = ((patterns.len() as f64) * prefix_frac) as usize;
        let (order, rows) = replan_suffix(&patterns, prefix_len, observed);
        assert_permutation(&order, prefix_len, patterns.len());
        prop_assert_eq!(rows.len(), order.len());
        for r in rows {
            prop_assert!(r.is_finite() && r >= 0.0, "bad row estimate {r}");
        }
    }
}
