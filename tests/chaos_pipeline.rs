//! Pipelined/BSP parity under chaos: the `pipelined` execution option
//! replaces whole-stage barriers with streamed, bounded exchange
//! channels — but like `columnar` it selects a virtual-time *cost
//! model*, never a data plane. The streamed repartition drains sources
//! in rank order and channels in FIFO order, so whatever
//! straggler/crash schedule the chaos matrix throws at the cluster,
//! the pipelined engine returns **byte-identical** `QueryOutcome` rows
//! to the barriered BSP engine.
//!
//! Fault-free, equality is exact (same rows, same order, same term
//! ids). Under faults the two modes accrue different virtual times —
//! that is the point of the pipeline — so fault windows can intersect
//! stages differently; rows are compared as sorted decoded multisets,
//! the same tolerance `chaos_columnar.rs` grants dilated clocks.

use ids::cache::{BackingStore, CacheConfig, CacheManager};
use ids::core::workflow::{
    install_workflow, repurposing_query, RepurposingThresholds, WorkflowModels,
};
use ids::core::{IdsConfig, IdsInstance, QueryOutcome};
use ids::simrt::{FaultConfig, FaultPlane, NetworkModel, Topology};
use ids::workloads::ncnpr::{build, Band, NcnprConfig};
use std::sync::Arc;

/// The CI seed matrix (ci.sh runs one seed per job via `CHAOS_SEED`).
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => (1..=8).collect(),
    }
}

/// Stragglers and crashes only: the two fault classes the streamed
/// exchange interacts with directly (per-channel delays instead of
/// whole-stage barriers). Transient/link/storage faults are covered by
/// `chaos_columnar.rs` and `chaos_faults.rs`.
fn pipeline_chaos() -> FaultConfig {
    use ids::simrt::faults::{CrashConfig, StragglerConfig};
    FaultConfig {
        crash: Some(CrashConfig { mean_uptime_secs: 2.0e-3, mean_downtime_secs: 0.5e-3 }),
        transient: None,
        link: None,
        straggler: Some(StragglerConfig { fraction: 0.25, slowdown: 4.0 }),
        storage: None,
        permanent: None,
    }
}

fn small_config() -> NcnprConfig {
    NcnprConfig {
        bands: vec![
            Band {
                mutation_rate: 0.0,
                similarity_range: None,
                proteins: 3,
                compounds_per_protein: 4,
            },
            Band {
                mutation_rate: 0.62,
                similarity_range: Some((0.21, 0.39)),
                proteins: 5,
                compounds_per_protein: 2,
            },
        ],
        background_proteins: 10,
        ..NcnprConfig::default()
    }
}

/// Launch one instance with the full NCNPR workflow installed and the
/// exchange mode pinned; identical to the `chaos_columnar.rs` harness
/// except the switch is `pipelined` instead of `columnar`.
fn launch(topo: Topology, faults: Option<(u64, FaultConfig)>, pipelined: bool) -> IdsInstance {
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 64 << 20, 256 << 20),
        BackingStore::default_store(),
    ));
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), 11);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    inst.attach_cache(cache);
    if let Some((seed, fc)) = faults {
        let plane = Arc::new(FaultPlane::new(seed, fc, topo.nodes(), topo.total_ranks(), 10.0));
        inst.attach_faults(plane);
    }
    let dataset = build(inst.datastore(), &small_config());
    let target = dataset.target.clone();
    install_workflow(&mut inst, &target, WorkflowModels::test_models());
    inst.exec_options_mut().pipelined = pipelined;
    apply_pipeline_axis(&mut inst);
    inst
}

/// The `CHAOS_PIPELINE` CI axis: `default` leaves the exchange knobs
/// alone; `tight` shrinks batches and channel buffers so the
/// backpressure stall path runs under every fault schedule. Byte
/// identity must hold on every axis value — the knobs only move
/// virtual time.
fn apply_pipeline_axis(inst: &mut IdsInstance) {
    match std::env::var("CHAOS_PIPELINE").as_deref() {
        Err(_) | Ok("default") | Ok("") => {}
        Ok("tight") => {
            let opts = inst.exec_options_mut();
            opts.exchange_batch_bytes = 1 << 12;
            opts.exchange_channel_capacity = 2;
        }
        Ok(other) => panic!("unknown CHAOS_PIPELINE axis {other:?} (want default|tight)"),
    }
}

fn query() -> String {
    repurposing_query(&RepurposingThresholds { sw_similarity: 0.9, min_pic50: 3.0, min_dtba: 3.0 })
}

/// Raw term-id rows — the strictest equality there is.
fn raw_rows(o: &QueryOutcome) -> Vec<Vec<u64>> {
    o.solutions.rows().iter().map(|r| r.iter().map(|t| t.raw()).collect()).collect()
}

/// Sorted decoded (compound, energy) rows — rank-placement tolerant.
fn extract(o: &QueryOutcome, inst: &IdsInstance) -> Vec<(String, String)> {
    let ds = inst.datastore();
    let mut v: Vec<(String, String)> = o
        .solutions
        .rows()
        .iter()
        .map(|r| {
            (
                ds.decode(r[1]).unwrap().to_string(),
                format!("{:.12}", ds.decode(r[2]).unwrap().as_f64().unwrap()),
            )
        })
        .collect();
    v.sort();
    v
}

/// Fault-free, streaming is observationally indistinguishable from BSP
/// at the data plane: same schema, same rows, same order, same
/// dictionary ids. The `ablation_pipeline` bench owns the speedup claim
/// (this 12-row workload is too small to amortize anything); here the
/// pipelined run must also finish no later than the barriered one,
/// since streaming only ever removes synchronization.
#[test]
fn fault_free_runs_are_byte_identical() {
    let mut bsp = launch(Topology::new(4, 2), None, false);
    let mut pipe = launch(Topology::new(4, 2), None, true);
    let bsp_out = bsp.query(&query()).unwrap();
    let pipe_out = pipe.query(&query()).unwrap();
    assert_eq!(bsp_out.solutions.vars(), pipe_out.solutions.vars(), "schema divergence");
    assert_eq!(raw_rows(&bsp_out), raw_rows(&pipe_out), "BSP/pipelined data-plane divergence");
    assert_eq!(bsp_out.solutions.len(), 12, "3 proteins x 4 compounds");
    assert!(
        pipe_out.elapsed_secs <= bsp_out.elapsed_secs + 1e-12,
        "streaming must not add virtual time over barriers: pipelined {} vs BSP {}",
        pipe_out.elapsed_secs,
        bsp_out.elapsed_secs
    );
}

/// EXPLAIN surfaces the exchange block only for pipelined runs: the
/// per-channel batch metrics exist exactly when streaming happened.
#[test]
fn explain_reports_exchange_block_only_when_pipelined() {
    let mut bsp = launch(Topology::new(4, 2), None, false);
    bsp.query(&query()).unwrap();
    let plan = bsp.explain(&query()).unwrap();
    assert!(!plan.contains("exchange:"), "BSP EXPLAIN must not grow an exchange block:\n{plan}");

    let mut pipe = launch(Topology::new(4, 2), None, true);
    pipe.query(&query()).unwrap();
    let plan = pipe.explain(&query()).unwrap();
    assert!(plan.contains("exchange:"), "pipelined EXPLAIN lacks the exchange block:\n{plan}");
    assert!(plan.contains("batches streamed:"), "missing batch metrics:\n{plan}");
}

/// The straggler/crash chaos matrix: per seed, the pipelined engine
/// under faults matches the BSP engine under the *same* fault schedule
/// and the fault-free baseline, row for row after the
/// placement-tolerant sort. Crash schedules delay individual channels
/// in pipelined mode and whole stages in BSP mode, so only the
/// multiset of decoded rows is comparable — and it must be identical.
#[test]
fn chaos_matrix_bsp_vs_pipelined_parity() {
    let mut base = launch(Topology::new(4, 2), None, true);
    let base_out = base.query(&query()).unwrap();
    let expected = extract(&base_out, &base);
    assert_eq!(expected.len(), 12);

    for seed in chaos_seeds() {
        let mut bsp = launch(Topology::new(4, 2), Some((seed, pipeline_chaos())), false);
        let mut pipe = launch(Topology::new(4, 2), Some((seed, pipeline_chaos())), true);
        let bsp_out = bsp
            .query(&query())
            .unwrap_or_else(|e| panic!("seed {seed}: BSP chaos run failed: {e}"));
        let pipe_out = pipe
            .query(&query())
            .unwrap_or_else(|e| panic!("seed {seed}: pipelined chaos run failed: {e}"));
        assert!(!pipe_out.degraded(), "seed {seed}: pipelined fault paths must not drop rows");
        assert_eq!(
            extract(&bsp_out, &bsp),
            extract(&pipe_out, &pipe),
            "seed {seed}: BSP/pipelined divergence under chaos"
        );
        assert_eq!(
            extract(&pipe_out, &pipe),
            expected,
            "seed {seed}: pipelined chaos run diverged from fault-free baseline"
        );
    }
}
