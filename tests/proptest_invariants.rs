//! Property-based tests over the core data structures and invariants,
//! spanning ids-chem, ids-graph, ids-udf, ids-cache, and ids-models.

use ids::cache::{BackingStore, CacheConfig, CacheManager};
use ids::chem::sequence::ProteinSequence;
use ids::chem::smiles::{parse_smiles, write_smiles};
use ids::core::workflow::{decode_docking_result, encode_docking_result};
use ids::graph::{ops, Dictionary, SolutionSet, Term, TermId};
use ids::models::{DockingEngine, MoleculeGenerator, SmithWaterman};
use ids::simrt::{NetworkModel, RankId, Topology};
use ids::udf::{plan_count_based, plan_throughput_based};
use ids_models::CostModel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated molecules always round-trip through SMILES with the graph
    /// preserved (atom count, bond count, ring count).
    #[test]
    fn generated_smiles_round_trip(seed in 0u64..10_000, index in 0u64..50) {
        let gen = MoleculeGenerator::new(CostModel::free(), seed);
        let cand = gen.generate(index);
        let reparsed = parse_smiles(&cand.smiles).expect("generator output parses");
        prop_assert_eq!(reparsed.atom_count(), cand.molecule.atom_count());
        prop_assert_eq!(reparsed.bond_count(), cand.molecule.bond_count());
        prop_assert_eq!(reparsed.ring_count(), cand.molecule.ring_count());
        // write(parse(s)) parses again to the same graph (stability).
        let rewritten = write_smiles(&reparsed);
        let reparsed2 = parse_smiles(&rewritten).expect("rewritten parses");
        prop_assert_eq!(reparsed2.atom_count(), reparsed.atom_count());
        prop_assert_eq!(reparsed2.bond_count(), reparsed.bond_count());
    }

    /// FASTA round trip for arbitrary sequences.
    #[test]
    fn fasta_round_trip(len in 1usize..400, seed in 0u64..10_000) {
        let mut rng = ids::simrt::rng::SplitMix64::new(seed, 0xfa57a);
        let seq = ProteinSequence::random(len, &mut rng);
        let recs = ProteinSequence::from_fasta(&seq.to_fasta("h")).unwrap();
        prop_assert_eq!(&recs[0].1, &seq);
    }

    /// Smith–Waterman invariants: symmetry, self-similarity = 1,
    /// score bounded by the smaller self-score.
    #[test]
    fn smith_waterman_invariants(la in 1usize..120, lb in 1usize..120, seed in 0u64..1_000) {
        let mut rng = ids::simrt::rng::SplitMix64::new(seed, 0x50);
        let a = ProteinSequence::random(la, &mut rng);
        let b = ProteinSequence::random(lb, &mut rng);
        let sw = SmithWaterman::default_model();
        let ab = sw.align(&a, &b);
        let ba = sw.align(&b, &a);
        prop_assert_eq!(ab.score, ba.score);
        prop_assert!(ab.score >= 0);
        prop_assert!((0.0..=1.0).contains(&ab.similarity));
        prop_assert_eq!(sw.align(&a, &a).similarity, 1.0);
        let min_self = SmithWaterman::self_score(&a).min(SmithWaterman::self_score(&b));
        prop_assert!(ab.score <= min_self);
    }

    /// Dictionary: encode is injective over distinct terms and decode is
    /// its inverse.
    #[test]
    fn dictionary_round_trip(names in proptest::collection::hash_set("[a-z]{1,12}", 1..40)) {
        let dict = Dictionary::new();
        let ids: Vec<(String, TermId)> =
            names.iter().map(|n| (n.clone(), dict.iri(n))).collect();
        // Distinct names -> distinct ids; decode inverts.
        for (i, (name, id)) in ids.iter().enumerate() {
            prop_assert_eq!(dict.decode(*id), Some(Term::iri(name.clone())));
            for (_, other) in &ids[i + 1..] {
                prop_assert_ne!(id, other);
            }
        }
    }

    /// Join/merge invariants: row counts and schema composition.
    #[test]
    fn join_row_bounds(
        left_keys in proptest::collection::vec(0u64..20, 0..60),
        right_keys in proptest::collection::vec(0u64..20, 0..60),
    ) {
        let left = SolutionSet::new(
            vec!["k".into(), "l".into()],
            left_keys.iter().map(|&k| vec![TermId(k), TermId(100 + k)]).collect(),
        );
        let right = SolutionSet::new(
            vec!["k".into(), "r".into()],
            right_keys.iter().map(|&k| vec![TermId(k), TermId(200 + k)]).collect(),
        );
        let joined = ops::hash_join(&left, &right);
        // |join| = sum over keys of count_l(k) * count_r(k).
        let mut expect = 0usize;
        for k in 0..20u64 {
            let l = left_keys.iter().filter(|&&x| x == k).count();
            let r = right_keys.iter().filter(|&&x| x == k).count();
            expect += l * r;
        }
        prop_assert_eq!(joined.len(), expect);
        prop_assert_eq!(joined.vars(), &["k".to_string(), "l".to_string(), "r".to_string()]);
        // Distinct never grows.
        prop_assert!(ops::distinct(&joined).len() <= joined.len());
    }

    /// Re-balancing plans always conserve the solution total and respect
    /// monotonicity in rates.
    #[test]
    fn rebalance_conserves_totals(
        total in 0u64..2_000_000,
        rates in proptest::collection::vec(1.0f64..1000.0, 1..50),
    ) {
        let plan = plan_throughput_based(total, &rates);
        prop_assert_eq!(plan.total(), total);
        let count = plan_count_based(total, rates.len());
        prop_assert_eq!(count.total(), total);
        // No target negative (u64) and every rank got something when
        // total >= ranks under count-based.
        if total >= rates.len() as u64 {
            prop_assert!(count.targets.iter().all(|&t| t > 0));
        }
    }

    /// Cache: get-after-put returns the exact bytes, from any rank.
    #[test]
    fn cache_get_after_put(
        payload in proptest::collection::vec(any::<u8>(), 1..4096),
        rank in 0u32..16,
    ) {
        let topo = Topology::new(4, 4);
        let cache = CacheManager::new(
            topo,
            NetworkModel::slingshot(),
            CacheConfig::new(2, 1 << 20, 1 << 22),
            BackingStore::default_store(),
        );
        cache.put(RankId(rank % 16), "obj", bytes::Bytes::from(payload.clone()));
        let (got, _) = cache.get(RankId((rank + 7) % 16), "obj").unwrap().unwrap();
        prop_assert_eq!(&got[..], &payload[..]);
    }

    /// Docking-result serialization round-trips exactly.
    #[test]
    fn docking_result_codec(seed in 0u64..500) {
        let gen = MoleculeGenerator::new(CostModel::free(), seed);
        let lig = gen.generate(0).molecule;
        let mut receptor = ids::chem::Structure3D::new();
        let mut rng = ids::simrt::rng::SplitMix64::new(seed, 2);
        for _ in 0..20 {
            receptor.push(
                ids::chem::Element::C,
                ids::chem::Vec3::new(
                    rng.next_range(-10.0, 10.0),
                    rng.next_range(-10.0, 10.0),
                    rng.next_range(-10.0, 10.0),
                ),
            );
        }
        let result = DockingEngine::test_engine().dock(&receptor, &lig);
        let decoded = decode_docking_result(&encode_docking_result(&result)).unwrap();
        prop_assert_eq!(decoded.energy, result.energy);
        prop_assert_eq!(decoded.evaluations, result.evaluations);
        prop_assert_eq!(decoded.pose, result.pose);
    }

    /// SolutionSet::split_even partitions without loss or reorder.
    #[test]
    fn split_even_partitions(
        rows in proptest::collection::vec(0u64..1000, 0..200),
        parts in 1usize..12,
    ) {
        let s = SolutionSet::new(
            vec!["x".into()],
            rows.iter().map(|&v| vec![TermId(v)]).collect(),
        );
        let chunks = s.split_even(parts);
        prop_assert_eq!(chunks.len(), parts);
        let reassembled: Vec<u64> = chunks
            .iter()
            .flat_map(|c| c.rows().iter().map(|r| r[0].0))
            .collect();
        prop_assert_eq!(reassembled, rows.clone());
        // Sizes differ by at most one.
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);
    }
}
