//! Overload chaos harness: open-loop Poisson×Zipf traffic pushed well
//! past service capacity, with SLO-class shedding and elastic membership
//! churn active.
//!
//! The chaos dimension here is *load* (plus the scale-out/in membership
//! changes it triggers), and the contract has three legs:
//!
//! 1. **Deterministic shedding** — replaying the identical (seed, mode)
//!    pair reproduces the exact refusal sequence (same arrivals refused,
//!    same typed error, same retry hints), the same completion latencies,
//!    and the same scheduler trace hash.
//! 2. **Class-ordered shedding** — `BestEffort` is refused before the
//!    first `Batch` refusal, and `Interactive` is never shed (its only
//!    refusal shape is the per-tenant/global queue bound).
//! 3. **Result integrity under overload** — every admitted query returns
//!    rows identical (sorted) to the same query on a solo, uncontended
//!    instance, even though elastic resizes re-own shards and re-replicate
//!    cache objects mid-run.
//!
//! CI sweeps `CHAOS_SEED` (1..=8) and the `CHAOS_OVERLOAD=default|burst`
//! axis; locally the full matrix runs in one pass. `burst` quantizes
//! arrival times into synchronized clumps — the adversarial arrival
//! pattern for an occupancy-triggered controller.

use ids::cache::{BackingStore, CacheConfig, CacheManager};
use ids::core::{IdsConfig, IdsInstance};
use ids::graph::Term;
use ids::serve::{ElasticityConfig, QueryService, ServeConfig, ServeError, SloClass, TenantConfig};
use ids::simrt::{NetworkModel, Topology};
use ids::workloads::traffic::{class_of, generate, Arrival, TrafficConfig};
use std::collections::BTreeMap;
use std::sync::Arc;

const TENANTS: usize = 60;
const ARRIVALS: usize = 240;
/// Offered load as a multiple of the probed fair-weather capacity.
const OVERLOAD: f64 = 3.0;

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => (1..=8).collect(),
    }
}

fn chaos_modes() -> Vec<&'static str> {
    match std::env::var("CHAOS_OVERLOAD") {
        Ok(s) if s == "default" => vec!["default"],
        Ok(s) if s == "burst" => vec!["burst"],
        Ok(s) => panic!("CHAOS_OVERLOAD must be 'default' or 'burst', got {s:?}"),
        Err(_) => vec!["default", "burst"],
    }
}

fn query_pool() -> Vec<String> {
    vec![
        "SELECT ?p WHERE { ?p <rdf:type> <up:Protein> . }".to_string(),
        "SELECT ?c ?p WHERE { ?c <inhibits> ?p . ?p <rdf:type> <up:Protein> . }".to_string(),
    ]
}

/// A 4-node cluster with half the nodes initially parked for elasticity.
fn launch() -> IdsInstance {
    let topo = Topology::new(4, 1);
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 64 << 20, 256 << 20).with_replication(2),
        BackingStore::default_store(),
    ));
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), 11);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    inst.attach_cache(cache);
    let ds = inst.datastore();
    for i in 0..40 {
        ds.add_fact(&Term::iri(format!("p:{i}")), &Term::iri("rdf:type"), &Term::iri("up:Protein"));
        ds.add_fact(
            &Term::iri(format!("c:{i}")),
            &Term::iri("inhibits"),
            &Term::iri(format!("p:{}", i % 7)),
        );
    }
    ds.build_indexes();
    inst
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        quantum_secs: 1.0e-5,
        reuse: false,
        max_in_flight: 16,
        elasticity: Some(ElasticityConfig {
            min_nodes: 2,
            max_nodes: 4,
            scale_out_queue_per_rank: 1.0,
            scale_in_queue_per_rank: 0.25,
            sustain_rounds: 2,
            cooldown_rounds: 3,
            ..ElasticityConfig::default()
        }),
        ..ServeConfig::default()
    }
}

/// Closed-loop probe of the fair-weather service rate, q/vsec.
fn capacity_qps() -> f64 {
    let mut svc = QueryService::new(launch(), serve_config());
    svc.register_tenant(TenantConfig::new("probe").with_max_queued(16));
    let s = svc.open_session("probe").unwrap();
    let pool = query_pool();
    let n = 12;
    for q in 0..n {
        svc.submit(s, &pool[q % pool.len()]).unwrap();
    }
    let done = svc.run_until_idle();
    assert_eq!(done.len(), n);
    n as f64 / svc.instance().cluster().elapsed()
}

fn schedule(seed: u64, mode: &str, qps: f64) -> (TrafficConfig, Vec<Arrival>) {
    let cfg = TrafficConfig {
        tenants: TENANTS,
        arrivals: ARRIVALS,
        mean_interarrival_secs: 1.0 / (OVERLOAD * qps),
        seed,
        ..TrafficConfig::default()
    };
    let mut arrivals = generate(&cfg);
    if mode == "burst" {
        // Quantize arrivals into synchronized clumps 16 mean-gaps wide:
        // every query in a window lands at the same instant, the worst
        // case for an occupancy-triggered shedding controller.
        let window = 16.0 * cfg.mean_interarrival_secs;
        for a in &mut arrivals {
            a.at_secs = (a.at_secs / window).floor() * window;
        }
    }
    (cfg, arrivals)
}

/// Everything one run produces that the contract compares.
struct RunRecord {
    /// (arrival index, tenant, debug-formatted error) per refusal, in
    /// arrival order. The debug form captures the error type, class, and
    /// exact retry hint bits.
    refusals: Vec<(usize, usize, String)>,
    /// (tenant, latency bits) per completion, in completion order.
    completions: Vec<(String, u64)>,
    /// Scheduler slice trace hash.
    trace_hash: u64,
    /// Per-query-text sorted decoded rows for every admitted query.
    rows_by_text: Vec<(String, Vec<Vec<String>>)>,
    /// Membership changes applied during the run.
    scale_events: usize,
    /// First arrival index at which each sheddable class was latched
    /// (`BestEffort`, then `Batch`), if ever.
    first_latched: (Option<usize>, Option<usize>),
}

fn run(seed: u64, mode: &str, qps: f64) -> RunRecord {
    let (tcfg, arrivals) = schedule(seed, mode, qps);
    let mut svc = QueryService::new(launch(), serve_config());
    let mut sessions = Vec::with_capacity(TENANTS);
    for t in 0..TENANTS {
        let name = format!("t{t:02}");
        svc.register_tenant(
            TenantConfig::new(&name).with_class(class_of(&tcfg, t)).with_max_queued(4),
        );
        sessions.push(svc.open_session(&name).unwrap());
    }
    let pool = query_pool();
    // Inline open-loop driver (the library version lives in
    // `ids::workloads::client`): driving by hand lets the test witness the
    // shed-controller state at every single admission decision, which is
    // where the class-ordering contract actually lives.
    let mut completed = Vec::new();
    let mut refusals: Vec<(usize, usize, String)> = Vec::new();
    let mut first_latched = (None, None);
    let mut next = 0;
    while next < arrivals.len() || svc.queued() > 0 {
        let now = svc.instance().cluster().elapsed();
        while next < arrivals.len() && arrivals[next].at_secs <= now {
            let a = &arrivals[next];
            let text = &pool[(a.query_draw % pool.len() as u64) as usize];
            let res = svc.submit(sessions[a.tenant], text);
            let (shed_be, shed_batch) = svc.shed_state();
            if shed_be {
                first_latched.0.get_or_insert(next);
            }
            if shed_batch {
                first_latched.1.get_or_insert(next);
            }
            // The class-ordering invariant, checked at every decision
            // point: Batch is never refused while BestEffort is admitted.
            assert!(
                !shed_batch || shed_be,
                "shedding Batch without BestEffort at arrival {next} (seed {seed} {mode})"
            );
            if let Err(error) = res {
                if matches!(error, ServeError::Shed { class: SloClass::Batch, .. }) {
                    assert!(shed_be && shed_batch, "Batch shed implies both classes latched");
                }
                refusals.push((next, a.tenant, format!("{error:?}")));
            }
            next += 1;
        }
        if svc.queued() > 0 {
            completed.extend(svc.run_round());
        } else if next < arrivals.len() {
            let gap = arrivals[next].at_secs - svc.instance().cluster().elapsed();
            if gap > 0.0 {
                svc.instance_mut().cluster_mut().charge_all(gap);
            } else {
                completed.extend(svc.run_round());
            }
        }
    }
    assert_eq!(
        completed.len() + refusals.len(),
        ARRIVALS,
        "every arrival is exactly admitted or refused"
    );
    let ds = svc.instance().datastore();
    let mut rows_by_text = Vec::new();
    for c in &completed {
        let out = c.result.as_ref().unwrap_or_else(|e| panic!("admitted query failed: {e}"));
        assert!(!out.degraded(), "overload paths must not drop rows");
        let mut rows: Vec<Vec<String>> = out
            .solutions
            .rows()
            .iter()
            .map(|r| r.iter().map(|t| ds.decode(*t).unwrap().to_string()).collect())
            .collect();
        rows.sort();
        // Recover the query text from the column shape: the scan has one
        // column, the join two.
        let text = pool[if rows.first().map_or(0, Vec::len) == 1 { 0 } else { 1 }].clone();
        rows_by_text.push((text, rows));
    }
    RunRecord {
        refusals,
        completions: completed
            .iter()
            .map(|c| (c.tenant.clone(), c.latency_secs.to_bits()))
            .collect(),
        trace_hash: svc.trace_hash(),
        rows_by_text,
        scale_events: svc.scale_events().len(),
        first_latched,
    }
}

/// Sorted rows for each pool query on a solo, uncontended instance.
fn solo_baselines() -> BTreeMap<String, Vec<Vec<String>>> {
    let mut out = BTreeMap::new();
    for text in query_pool() {
        let mut inst = launch();
        let res = inst.query(&text).unwrap();
        let ds = inst.datastore();
        let mut rows: Vec<Vec<String>> = res
            .solutions
            .rows()
            .iter()
            .map(|r| r.iter().map(|t| ds.decode(*t).unwrap().to_string()).collect())
            .collect();
        rows.sort();
        out.insert(text, rows);
    }
    out
}

#[test]
fn overload_shedding_is_deterministic_class_ordered_and_result_preserving() {
    let qps = capacity_qps();
    assert!(qps > 0.0);
    let baselines = solo_baselines();
    for mode in chaos_modes() {
        for seed in chaos_seeds() {
            let a = run(seed, mode, qps);
            let b = run(seed, mode, qps);

            // 1. Deterministic shedding and scheduling.
            assert_eq!(a.refusals, b.refusals, "refusal sequence replays (seed {seed} {mode})");
            assert_eq!(
                a.completions, b.completions,
                "completion order and latencies replay (seed {seed} {mode})"
            );
            assert_eq!(a.trace_hash, b.trace_hash, "scheduler trace replays (seed {seed} {mode})");

            // 2. Class-ordered shedding. The run itself asserted the state
            // invariant (Batch never refused while BestEffort is admitted)
            // at every decision point; here check the latch order, that
            // overload actually shed something, and that Interactive never
            // sheds. (The first *refusal* of each class can arrive in any
            // order — Zipf puts BestEffort tenants in the unpopular tail —
            // which is exactly why the state, not the event log, carries
            // the ordering contract.)
            let (first_be, first_batch) = a.first_latched;
            assert!(
                first_be.is_some(),
                "3x overload must latch BestEffort shedding (seed {seed} {mode})"
            );
            if let Some(batch_at) = first_batch {
                assert!(
                    first_be.unwrap() <= batch_at,
                    "BestEffort latches no later than Batch (seed {seed} {mode}): \
                     {first_be:?} vs {batch_at}"
                );
            }
            let shed_count = |class: SloClass| {
                a.refusals
                    .iter()
                    .filter(|(_, _, e)| e.starts_with("Shed") && e.contains(&format!("{class:?}")))
                    .count()
            };
            assert!(
                shed_count(SloClass::BestEffort) + shed_count(SloClass::Batch) > 0,
                "3x overload must shed lower-class traffic (seed {seed} {mode})"
            );
            assert_eq!(
                shed_count(SloClass::Interactive),
                0,
                "Interactive is never shed (seed {seed} {mode})"
            );
            // Every Interactive refusal is the queue-bound shape.
            for (arrival, tenant, err) in &a.refusals {
                if class_of(&schedule(seed, mode, qps).0, *tenant) == SloClass::Interactive {
                    assert!(
                        err.starts_with("Overloaded"),
                        "interactive refusal at arrival {arrival} must be Overloaded: {err}"
                    );
                }
            }

            // 3. Admitted results are byte-identical to the solo run, with
            // elastic membership churn active.
            assert!(a.scale_events > 0, "overload must trigger resizes (seed {seed} {mode})");
            for (text, rows) in &a.rows_by_text {
                assert_eq!(
                    rows,
                    baselines.get(text).unwrap(),
                    "admitted rows match solo baseline (seed {seed} {mode})"
                );
            }
        }
    }
}
