//! Property-based tests for the IQL surface: the parser must refuse
//! malformed input with an error (never a panic), and AST
//! canonicalization must assign α-equivalent queries identical
//! fingerprints while keeping semantically distinct queries apart —
//! the correctness contract behind cross-client semantic result reuse.

use ids::core::iql::{canonical_query, checkpoint_fragments, parse_query};
use ids::simrt::rng::SplitMix64;
use proptest::prelude::*;

/// Deterministically build a parseable query from a seed: 1–3 triple
/// patterns over a small vocabulary, an optional FILTER chain, and an
/// optional APPLY stage. Constants embed the seed so distinct seeds give
/// semantically distinct queries.
fn build_query(seed: u64) -> String {
    let mut rng = SplitMix64::new(seed, 0x10_01);
    let vars = ["a", "b", "c", "d"];
    let npat = 1 + (rng.next_u64() % 3) as usize;
    let mut patterns = Vec::new();
    for i in 0..npat {
        let s = vars[i % vars.len()];
        let p = rng.next_u64() % 5;
        // Chain subjects through shared variables so patterns join.
        let o = if rng.next_u64().is_multiple_of(2) {
            format!("?{}", vars[(i + 1) % vars.len()])
        } else {
            format!("{}", (rng.next_u64() % 50) as i64)
        };
        patterns.push(format!("?{s} <p:{p}> {o} ."));
    }
    let filter = if rng.next_u64().is_multiple_of(2) {
        format!("FILTER(?{} >= {})", vars[0], seed % 1000)
    } else {
        format!("FILTER(?{} >= {} && ?{} != 7)", vars[0], seed % 1000, vars[0])
    };
    let apply = if rng.next_u64().is_multiple_of(2) {
        format!(" APPLY score(?{}) AS ?sc", vars[0])
    } else {
        String::new()
    };
    format!("SELECT ?{} WHERE {{ {} {filter} }}{apply}", vars[0], patterns.join(" "))
}

/// Consistently α-rename every variable (`?a` → `?zqa`, …). The `zq`
/// prefix cannot collide with the generator's single-letter names.
fn rename_vars(q: &str) -> String {
    let mut out = q.to_string();
    for v in ["a", "b", "c", "d", "sc"] {
        out = out.replace(&format!("?{v}"), &format!("?zq{v}"));
    }
    out
}

/// Rotate the triple patterns inside the WHERE block — a semantically
/// neutral reordering of the basic graph pattern.
fn rotate_patterns(q: &str) -> String {
    let open = q.find('{').unwrap();
    let close = q.rfind('}').unwrap();
    let body = &q[open + 1..close];
    // Split into ". "-terminated triples plus the trailing FILTER chunk.
    let filter_at = body.find("FILTER").unwrap_or(body.len());
    let (triples, rest) = body.split_at(filter_at);
    let mut parts: Vec<&str> =
        triples.split(" .").map(str::trim).filter(|s| !s.is_empty()).collect();
    if parts.len() > 1 {
        parts.rotate_left(1);
    }
    let rebuilt: String = parts.iter().map(|p| format!("{p} . ")).collect();
    format!("{}{{ {rebuilt}{rest} }}{}", &q[..open], &q[close + 1..])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Mangled query text — truncations, byte flips, injected garbage —
    /// must produce `Err(ParseError)` or a successful parse, never a
    /// panic.
    #[test]
    fn parser_never_panics_on_mangled_input(seed in 0u64..4000) {
        let mut rng = SplitMix64::new(seed, 0xbad);
        let mut text = build_query(seed);
        for _ in 0..=(rng.next_u64() % 3) {
            match rng.next_u64() % 3 {
                0 => {
                    // Truncate at an arbitrary point (all-ASCII text, so
                    // every index is a char boundary).
                    let cut = (rng.next_u64() as usize) % (text.len() + 1);
                    text.truncate(cut);
                }
                1 => {
                    // Overwrite one byte with printable garbage.
                    if !text.is_empty() {
                        let i = (rng.next_u64() as usize) % text.len();
                        let c = (b'!' + (rng.next_u64() % 90) as u8) as char;
                        text.replace_range(i..=i, &c.to_string());
                    }
                }
                _ => {
                    let i = (rng.next_u64() as usize) % (text.len() + 1);
                    text.insert_str(i, "}?(");
                }
            }
        }
        let _ = parse_query(&text); // returning at all is the property
    }

    /// Structurally broken inputs fail with a reported error.
    #[test]
    fn malformed_inputs_error_cleanly(seed in 0u64..200) {
        let base = build_query(seed);
        let no_brace = base.replace('}', "");
        prop_assert!(parse_query(&no_brace).is_err());
        prop_assert!(parse_query("SELECT").is_err());
        prop_assert!(parse_query("").is_err());
        prop_assert!(parse_query("WHERE { ?a <p:0> ?b . }").is_err());
    }

    /// α-renaming every variable and rotating the pattern order must not
    /// change the canonical fingerprint — these are the rewrites
    /// different clients apply to "the same" query.
    #[test]
    fn alpha_equivalent_queries_share_fingerprints(seed in 0u64..1500) {
        let text = build_query(seed);
        let q = parse_query(&text).unwrap();
        let renamed = parse_query(&rename_vars(&text)).unwrap();
        let rotated = parse_query(&rotate_patterns(&text)).unwrap();

        let f = canonical_query(&q).fingerprint;
        prop_assert_eq!(f, canonical_query(&renamed).fingerprint, "rename changed {}", text);
        prop_assert_eq!(f, canonical_query(&rotated).fingerprint, "rotation changed {}", text);

        // Every checkpoint fragment agrees too (reuse keys are built from
        // fragment fingerprints, not the whole-query one).
        let a = checkpoint_fragments(&q);
        let b = checkpoint_fragments(&renamed);
        prop_assert_eq!(a.len(), b.len());
        for ((spec_a, frag_a), (spec_b, frag_b)) in a.iter().zip(&b) {
            prop_assert_eq!(spec_a, spec_b);
            prop_assert_eq!(frag_a.fingerprint, frag_b.fingerprint, "fragment diverged: {}", text);
        }
    }

    /// Distinct seeds embed distinct constants, so their queries are
    /// semantically different and must (essentially always) get different
    /// fingerprints. 400 queries, zero collisions tolerated.
    #[test]
    fn distinct_queries_do_not_collide(base in 0u64..8) {
        let mut seen = std::collections::HashMap::new();
        for i in 0..400u64 {
            let seed = base * 1000 + i;
            let text = build_query(seed);
            let q = parse_query(&text).unwrap();
            let f = canonical_query(&q).fingerprint;
            if let Some(prev) = seen.insert(f, text.clone()) {
                // Generator may emit identical text for different seeds
                // (seed only appears mod 1000); a true collision has
                // different canonical *text*.
                let same = canonical_query(&parse_query(&prev).unwrap()).text
                    == canonical_query(&q).text;
                prop_assert!(same, "fingerprint collision: {:?} vs {:?}", prev, text);
            }
        }
    }
}
