//! Integration: the full IQL pipeline (parse → plan → distributed execute)
//! against hand-computable datasets, spanning ids-core, ids-graph,
//! ids-udf, and ids-simrt.

use ids::core::{IdsConfig, IdsInstance};
use ids::graph::Term;
use ids::udf::{UdfOutput, UdfValue};
use std::sync::Arc;

/// A bibliographic-flavoured graph with exactly known answers.
fn library() -> IdsInstance {
    let inst = IdsInstance::launch(IdsConfig::laptop(6, 1));
    let ds = inst.datastore();
    // 30 papers; paper i cites paper i+1; even papers are reviewed;
    // venue cycles through 3 values; score = i.
    for i in 0..30 {
        let p = Term::iri(format!("paper:{i}"));
        ds.add_fact(&p, &Term::iri("rdf:type"), &Term::iri("Paper"));
        ds.add_fact(&p, &Term::iri("venue"), &Term::iri(format!("venue:{}", i % 3)));
        ds.add_fact(&p, &Term::iri("score"), &Term::Int(i));
        if i % 2 == 0 {
            ds.add_fact(&p, &Term::iri("reviewed"), &Term::Int(1));
        }
        if i < 29 {
            ds.add_fact(&p, &Term::iri("cites"), &Term::iri(format!("paper:{}", i + 1)));
        }
    }
    ds.build_indexes();
    inst
}

#[test]
fn multi_pattern_join_with_literal_filter() {
    let mut inst = library();
    // Reviewed papers at venue:0 with score >= 10: papers 12, 18, 24
    // (even, i%3==0, i>=10) — plus 30 is out of range.
    let out = inst
        .query(
            r#"SELECT ?p ?s WHERE {
                ?p <reviewed> 1 .
                ?p <venue> <venue:0> .
                ?p <score> ?s .
                FILTER(?s >= 10)
            }"#,
        )
        .unwrap();
    let mut scores: Vec<i64> = out
        .solutions
        .rows()
        .iter()
        .map(|r| inst.datastore().decode(r[1]).unwrap().as_i64().unwrap())
        .collect();
    scores.sort_unstable();
    assert_eq!(scores, vec![12, 18, 24]);
}

#[test]
fn two_hop_traversal() {
    let mut inst = library();
    // ?a cites ?b, ?b cites ?c, ?a reviewed: chains starting at even i<28.
    let out = inst
        .query(
            r#"SELECT ?a ?c WHERE {
                ?a <cites> ?b .
                ?b <cites> ?c .
                ?a <reviewed> 1 .
            }"#,
        )
        .unwrap();
    assert_eq!(out.solutions.len(), 14, "even starts 0..=26");
    // Spot-check one chain: 0 -> 2.
    let ds = inst.datastore();
    let a0 = ds.dictionary().lookup(&Term::iri("paper:0")).unwrap();
    let c2 = ds.dictionary().lookup(&Term::iri("paper:2")).unwrap();
    assert!(out.solutions.rows().iter().any(|r| r[0] == a0 && r[1] == c2));
}

#[test]
fn apply_stage_binds_new_column_and_projects() {
    let mut inst = library();
    inst.registry()
        .register_static(
            "double",
            Arc::new(|args: &[UdfValue]| {
                let v = args[0].as_f64().unwrap();
                UdfOutput::new(UdfValue::F64(v * 2.0), 0.001)
            }),
        )
        .unwrap();
    let out = inst
        .query(
            r#"SELECT ?p ?d WHERE { ?p <score> ?s . FILTER(?s < 3) }
               APPLY double(?s) AS ?d"#,
        )
        .unwrap();
    assert_eq!(out.solutions.len(), 3);
    let ds = inst.datastore();
    let mut doubled: Vec<f64> =
        out.solutions.rows().iter().map(|r| ds.decode(r[1]).unwrap().as_f64().unwrap()).collect();
    doubled.sort_by(f64::total_cmp);
    assert_eq!(doubled, vec![0.0, 2.0, 4.0]);
}

#[test]
fn post_apply_filter_and_limit() {
    let mut inst = library();
    inst.registry()
        .register_static(
            "negate",
            Arc::new(|args: &[UdfValue]| {
                let v = args[0].as_f64().unwrap();
                UdfOutput::new(UdfValue::F64(-v), 0.001)
            }),
        )
        .unwrap();
    let out = inst
        .query(
            r#"SELECT ?p WHERE { ?p <score> ?s . }
               APPLY negate(?s) AS ?n
               FILTER(?n <= -20)
               LIMIT 4"#,
        )
        .unwrap();
    // Scores 20..=29 negate to <= -20 (10 rows), limited to 4.
    assert_eq!(out.solutions.len(), 4);
}

#[test]
fn results_identical_across_cluster_sizes() {
    // The same query must produce the same answer set regardless of how
    // many ranks execute it (distribution must not change semantics).
    let mut answers = Vec::new();
    for ranks in [1u32, 4, 16] {
        let inst0 = IdsInstance::launch(IdsConfig::laptop(ranks, 1));
        let ds = inst0.datastore();
        for i in 0..40 {
            ds.add_fact(&Term::iri(format!("e:{i}")), &Term::iri("val"), &Term::Int(i * 7 % 13));
        }
        ds.build_indexes();
        let mut inst = inst0;
        let out = inst.query(r#"SELECT ?e ?v WHERE { ?e <val> ?v . FILTER(?v > 5) }"#).unwrap();
        let mut rows: Vec<(String, i64)> = out
            .solutions
            .rows()
            .iter()
            .map(|r| {
                (
                    inst.datastore().decode(r[0]).unwrap().to_string(),
                    inst.datastore().decode(r[1]).unwrap().as_i64().unwrap(),
                )
            })
            .collect();
        rows.sort();
        answers.push(rows);
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[1], answers[2]);
}

#[test]
fn profiles_persist_across_queries() {
    let mut inst = library();
    inst.registry()
        .register_static(
            "pass",
            Arc::new(|_: &[UdfValue]| UdfOutput::new(UdfValue::Bool(true), 0.01)),
        )
        .unwrap();
    let q = r#"SELECT ?p WHERE { ?p <rdf:type> <Paper> . FILTER(pass(?p)) }"#;
    inst.query(q).unwrap();
    let after_one: u64 =
        inst.profilers().iter().filter_map(|p| p.get("pass")).map(|p| p.calls).sum();
    inst.query(q).unwrap();
    let after_two: u64 =
        inst.profilers().iter().filter_map(|p| p.get("pass")).map(|p| p.calls).sum();
    assert_eq!(after_one, 30);
    assert_eq!(after_two, 60, "the profiling datastore accumulates for the instance lifetime");
}

#[test]
fn dynamic_udf_reload_changes_query_behaviour() {
    let mut inst = library();
    inst.registry()
        .register_dynamic(
            "usermod",
            "keep",
            0.5,
            Arc::new(|args: &[UdfValue]| {
                let v = args[0].as_f64().unwrap();
                UdfOutput::new(UdfValue::Bool(v < 10.0), 0.001)
            }),
        )
        .unwrap();
    let q = r#"SELECT ?p WHERE { ?p <score> ?s . FILTER(usermod.keep(?s)) }"#;
    let out = inst.query(q).unwrap();
    assert_eq!(out.solutions.len(), 10);

    // The researcher edits their code and force-reloads (§2.3).
    inst.registry()
        .reload_dynamic(
            "usermod",
            "keep",
            0.5,
            Arc::new(|args: &[UdfValue]| {
                let v = args[0].as_f64().unwrap();
                UdfOutput::new(UdfValue::Bool(v >= 25.0), 0.001)
            }),
        )
        .unwrap();
    let out = inst.query(q).unwrap();
    assert_eq!(out.solutions.len(), 5, "new code in effect without relaunch");
}

#[test]
fn error_paths_are_reported_not_panics() {
    let mut inst = library();
    assert!(inst.query("SELECT ?x WHERE {").is_err(), "parse error");
    assert!(inst.query("SELECT ?x WHERE { FILTER(?x == <no:such:iri>) }").is_err(), "plan error");
    assert!(
        inst.query("SELECT ?p WHERE { ?p <score> ?s . FILTER(ghost_udf(?s)) }").is_err(),
        "exec error: unknown UDF"
    );
}
