//! Chaos harness for the tiered store (PR 9): queries whose cache
//! working set is several times DRAM — so the run lives off constant
//! DRAM→NVMe spill, admission filtering, and promote-on-reuse — under
//! deterministic crash and bit-rot schedules.
//!
//! The contract is the same result equivalence the rest of the chaos
//! suite enforces: however hard the tiers churn and whatever the fault
//! schedule does, a query returns byte-identical rows to an all-DRAM
//! fault-free baseline. CI sweeps `CHAOS_SEED` over the fixed matrix and
//! `CHAOS_TIERS` over the restart modes (`default` = warm NVMe restart,
//! `coldstart` = both tiers wiped on recovery); locally, everything runs
//! in one pass when the variables are unset.

use bytes::Bytes;
use ids::cache::{BackingStore, CacheConfig, CacheManager, EvictionKind};
use ids::core::workflow::{
    install_workflow, repurposing_query, RepurposingThresholds, WorkflowModels,
};
use ids::core::{IdsConfig, IdsInstance, QueryOutcome};
use ids::simrt::faults::{CrashConfig, StorageConfig};
use ids::simrt::topology::{NodeId, RankId};
use ids::simrt::{FaultConfig, FaultPlane, NetworkModel, Topology};
use ids::workloads::ncnpr::{build, Band, NcnprConfig};
use std::sync::Arc;

/// The CI seed matrix (ci.sh runs one seed per job via `CHAOS_SEED`).
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => (1..=8).collect(),
    }
}

/// The CI restart-mode matrix (`CHAOS_TIERS` pins one mode per job).
fn tier_modes() -> Vec<(&'static str, bool)> {
    match std::env::var("CHAOS_TIERS").as_deref() {
        Ok("default") => vec![("default", true)],
        Ok("coldstart") => vec![("coldstart", false)],
        Ok(other) => panic!("CHAOS_TIERS must be 'default' or 'coldstart', got '{other}'"),
        Err(_) => vec![("default", true), ("coldstart", false)],
    }
}

/// One eviction policy per seed so the full matrix covers all three
/// without tripling its runtime.
fn policy_for(seed: u64) -> EvictionKind {
    match seed % 3 {
        0 => EvictionKind::Lru,
        1 => EvictionKind::S3Fifo,
        _ => EvictionKind::TinyLfu,
    }
}

/// Crash + bit-rot chaos at the test workflow's millisecond scale (see
/// `chaos_faults.rs` for the scaling rationale).
fn tier_chaos() -> FaultConfig {
    FaultConfig {
        crash: Some(CrashConfig { mean_uptime_secs: 2.0e-3, mean_downtime_secs: 0.5e-3 }),
        storage: Some(StorageConfig { bit_rot_prob: 0.05, torn_write_prob: 0.0 }),
        ..FaultConfig::none()
    }
}

fn small_config() -> NcnprConfig {
    NcnprConfig {
        bands: vec![
            Band {
                mutation_rate: 0.0,
                similarity_range: None,
                proteins: 3,
                compounds_per_protein: 4,
            },
            Band {
                mutation_rate: 0.62,
                similarity_range: Some((0.21, 0.39)),
                proteins: 5,
                compounds_per_protein: 2,
            },
        ],
        background_proteins: 10,
        ..NcnprConfig::default()
    }
}

/// Launch with an explicit cache config (the tier-pressure knob) and an
/// optional crash/bit-rot schedule.
fn launch(
    topo: Topology,
    cache_cfg: CacheConfig,
    faults: Option<(u64, FaultConfig)>,
) -> (IdsInstance, Arc<CacheManager>) {
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        cache_cfg,
        BackingStore::default_store(),
    ));
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), 11);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    inst.attach_cache(Arc::clone(&cache));
    if let Some((seed, fc)) = faults {
        let plane = Arc::new(FaultPlane::new(seed, fc, topo.nodes(), topo.total_ranks(), 10.0));
        inst.attach_faults(plane);
    }
    let dataset = build(inst.datastore(), &small_config());
    let target = dataset.target.clone();
    install_workflow(&mut inst, &target, WorkflowModels::test_models());
    (inst, cache)
}

/// An all-DRAM config: tiers so large nothing ever spills.
fn all_dram() -> CacheConfig {
    CacheConfig::new(2, 64 << 20, 256 << 20)
}

/// A pressure config: DRAM far smaller than the docking working set
/// (~1.6 KiB of stashed docking outputs per node, so >3x the 512 B DRAM
/// tier), forcing the run to spill constantly and serve reuse from NVMe.
fn tier_pressure(eviction: EvictionKind, warm: bool) -> CacheConfig {
    CacheConfig::new(2, 512, 64 << 10).with_eviction(eviction).with_warm_restart(warm)
}

fn query() -> String {
    repurposing_query(&RepurposingThresholds { sw_similarity: 0.9, min_pic50: 3.0, min_dtba: 3.0 })
}

/// Sorted (compound, energy) rows, as in the rest of the chaos suite.
fn extract(o: &QueryOutcome, inst: &IdsInstance) -> Vec<(String, String)> {
    let ds = inst.datastore();
    let mut v: Vec<(String, String)> = o
        .solutions
        .rows()
        .iter()
        .map(|r| {
            (
                ds.decode(r[1]).unwrap().to_string(),
                format!("{:.12}", ds.decode(r[2]).unwrap().as_f64().unwrap()),
            )
        })
        .collect();
    v.sort();
    v
}

fn baseline() -> Vec<(String, String)> {
    let (mut inst, _) = launch(Topology::new(4, 2), all_dram(), None);
    let out = inst.query(&query()).unwrap();
    extract(&out, &inst)
}

#[test]
fn tier_pressure_chaos_matrix_preserves_results() {
    let expected = baseline();
    assert_eq!(expected.len(), 12, "3 proteins x 4 compounds");
    for (mode, warm) in tier_modes() {
        for seed in chaos_seeds() {
            let eviction = policy_for(seed);
            let (mut inst, cache) = launch(
                Topology::new(4, 2),
                tier_pressure(eviction, warm),
                Some((seed, tier_chaos())),
            );
            let ctx = format!("mode {mode} seed {seed} policy {}", eviction.label());
            let cold = inst
                .query(&query())
                .unwrap_or_else(|e| panic!("{ctx}: tier-pressure chaos run failed: {e}"));
            assert!(!cold.degraded(), "{ctx}: fault paths must not drop rows");
            assert_eq!(extract(&cold, &inst), expected, "{ctx}: cold divergence");
            // The warm pass reuses (and promotes) whatever pressure left
            // resident, under the same fault schedule.
            inst.reset_clocks();
            let warm_run = inst.query(&query()).unwrap();
            assert_eq!(extract(&warm_run, &inst), expected, "{ctx}: warm divergence");
            // Prove the run actually lived under tier pressure: the NVMe
            // plane must have been engaged, not just configured.
            let inspection = cache.inspect();
            assert!(
                inspection.spills > 0 || inspection.occupied("nvme") > 0,
                "{ctx}: working set never overflowed DRAM (spills {}, nvme bytes {})",
                inspection.spills,
                inspection.occupied("nvme")
            );
        }
    }
}

#[test]
fn crash_recovery_under_tier_pressure_keeps_objects_byte_identical() {
    // Direct object-level variant: a working set ~4x DRAM with explicit
    // mid-stream crash/recover of every node, under bit rot, in both
    // restart modes. Every object must read back byte-identical; the
    // default mode must additionally exercise warm NVMe retention.
    let topo = Topology::new(2, 4);
    let payload = |i: usize, seed: u64| Bytes::from(vec![(i as u8) ^ (seed as u8); 512]);
    for (mode, warm) in tier_modes() {
        for seed in chaos_seeds() {
            let cache = CacheManager::new(
                topo,
                NetworkModel::slingshot(),
                // 64 objects x 512 B = 32 KiB working set over 8 KiB DRAM.
                CacheConfig::new(2, 8 << 10, 64 << 10)
                    .with_eviction(policy_for(seed))
                    .with_warm_restart(warm),
                BackingStore::default_store(),
            );
            cache.attach_faults(Arc::new(FaultPlane::new(
                seed,
                FaultConfig::storage_only(0.1, 0.0),
                topo.nodes(),
                topo.total_ranks(),
                1e6,
            )));
            let ctx = format!("mode {mode} seed {seed}");
            for i in 0..64 {
                cache.put(RankId((i % 8) as u32), &format!("ws/{i}"), payload(i, seed));
                if i == 40 {
                    // Crash both nodes mid-stream and bring them back.
                    cache.fail_node(NodeId(0));
                    cache.fail_node(NodeId(1));
                    cache.recover_node(NodeId(0));
                    cache.recover_node(NodeId(1));
                }
            }
            for i in 0..64 {
                let (bytes, _) = cache
                    .get(RankId(((i + seed as usize) % 8) as u32), &format!("ws/{i}"))
                    .unwrap_or_else(|e| panic!("{ctx}: read failed: {e}"))
                    .unwrap_or_else(|| panic!("{ctx}: ws/{i} lost"));
                assert_eq!(bytes, payload(i, seed), "{ctx}: ws/{i} bytes diverged");
            }
            let stats = cache.stats();
            assert!(stats.evictions_to_nvme > 0, "{ctx}: working set never spilled");
            if warm {
                assert!(
                    stats.warm_restart_retained > 0,
                    "{ctx}: warm restart retained nothing across the crash"
                );
            } else {
                assert_eq!(stats.warm_restart_retained, 0, "{ctx}: coldstart must wipe NVMe");
            }
        }
    }
}
