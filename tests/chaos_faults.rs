//! Chaos harness: the NCNPR re-purposing workflow under deterministic
//! fault schedules (node crashes, transient FAM failures, link
//! degradation, straggler ranks).
//!
//! The core contract is **result equivalence**: because every fault path
//! either retries or falls back to an authoritative source (backing
//! store, recomputation), a query run under any fault schedule returns
//! byte-identical rows to the fault-free run — only virtual time and
//! fault metrics differ. CI sweeps `CHAOS_SEED` over a fixed matrix;
//! locally, all matrix seeds run in one pass when the variable is unset.

use ids::cache::{BackingStore, CacheConfig, CacheManager};
use ids::core::workflow::{
    install_workflow, repurposing_query, RepurposingThresholds, WorkflowModels,
};
use ids::core::{DegradedKind, IdsConfig, IdsInstance, QueryOutcome};
use ids::simrt::faults::{CrashConfig, LinkConfig, StragglerConfig, TransientConfig};
use ids::simrt::{FaultConfig, FaultPlane, NetworkModel, Topology};
use ids::workloads::ncnpr::{build, Band, NcnprConfig};
use std::sync::Arc;

/// The CI seed matrix (ci.sh runs one seed per job via `CHAOS_SEED`).
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => (1..=8).collect(),
    }
}

/// The test workflow runs in a few virtual milliseconds (free cost
/// models), so fault windows are scaled to milliseconds too — the run
/// then crosses several crash/degradation windows, exactly like a
/// paper-scale run crosses the second-scale windows of
/// [`FaultConfig::chaos`].
fn ms_chaos() -> FaultConfig {
    FaultConfig {
        crash: Some(CrashConfig { mean_uptime_secs: 2.0e-3, mean_downtime_secs: 0.5e-3 }),
        transient: Some(TransientConfig { fail_prob: 0.05 }),
        link: Some(LinkConfig {
            mean_healthy_secs: 1.0e-3,
            mean_degraded_secs: 0.4e-3,
            latency_mult: 8.0,
            bandwidth_mult: 0.25,
        }),
        straggler: Some(StragglerConfig { fraction: 0.25, slowdown: 3.0 }),
    }
}

fn ms_crashes() -> FaultConfig {
    FaultConfig::crashes_only(2.0e-3, 0.5e-3)
}

fn ms_links() -> FaultConfig {
    FaultConfig::link_only(LinkConfig {
        mean_healthy_secs: 1.0e-3,
        mean_degraded_secs: 0.6e-3,
        latency_mult: 10.0,
        bandwidth_mult: 0.2,
    })
}

fn small_config() -> NcnprConfig {
    NcnprConfig {
        bands: vec![
            Band {
                mutation_rate: 0.0,
                similarity_range: None,
                proteins: 3,
                compounds_per_protein: 4,
            },
            Band {
                mutation_rate: 0.62,
                similarity_range: Some((0.21, 0.39)),
                proteins: 5,
                compounds_per_protein: 2,
            },
        ],
        background_proteins: 10,
        ..NcnprConfig::default()
    }
}

/// Launch an instance with an attached cache and (optionally) a fault
/// plane driving the cluster, FAM, and cache from one seeded schedule.
fn launch(topo: Topology, faults: Option<(u64, FaultConfig)>) -> (IdsInstance, Arc<CacheManager>) {
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 64 << 20, 256 << 20),
        BackingStore::default_store(),
    ));
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), 11);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    inst.attach_cache(Arc::clone(&cache));
    if let Some((seed, fc)) = faults {
        // A 10s horizon is ~1500x the query's virtual duration while
        // keeping window generation cheap under ms-scale fault configs.
        let plane = Arc::new(FaultPlane::new(seed, fc, topo.nodes(), topo.total_ranks(), 10.0));
        inst.attach_faults(plane);
    }
    let dataset = build(inst.datastore(), &small_config());
    let target = dataset.target.clone();
    install_workflow(&mut inst, &target, WorkflowModels::test_models());
    (inst, cache)
}

fn query() -> String {
    repurposing_query(&RepurposingThresholds { sw_similarity: 0.9, min_pic50: 3.0, min_dtba: 3.0 })
}

/// Sorted (compound, energy) rows — sorted because re-balancing plans may
/// legitimately assign rows to different ranks under dilated clocks.
fn extract(o: &QueryOutcome, inst: &IdsInstance) -> Vec<(String, String)> {
    let ds = inst.datastore();
    let mut v: Vec<(String, String)> = o
        .solutions
        .rows()
        .iter()
        .map(|r| {
            (
                ds.decode(r[1]).unwrap().to_string(),
                format!("{:.12}", ds.decode(r[2]).unwrap().as_f64().unwrap()),
            )
        })
        .collect();
    v.sort();
    v
}

fn baseline() -> Vec<(String, String)> {
    let (mut inst, _) = launch(Topology::new(4, 2), None);
    let out = inst.query(&query()).unwrap();
    extract(&out, &inst)
}

#[test]
fn full_chaos_matrix_preserves_results() {
    let expected = baseline();
    assert_eq!(expected.len(), 12, "3 proteins x 4 compounds");
    for seed in chaos_seeds() {
        let (mut inst, _) = launch(Topology::new(4, 2), Some((seed, ms_chaos())));
        let out =
            inst.query(&query()).unwrap_or_else(|e| panic!("seed {seed}: chaos run failed: {e}"));
        assert!(!out.degraded(), "seed {seed}: fault paths must not drop rows");
        assert_eq!(extract(&out, &inst), expected, "seed {seed}: result divergence");
        // Cold and warm runs both survive: the second pass exercises
        // cache hits, fencing, and re-population under the same schedule.
        inst.reset_clocks();
        let warm = inst.query(&query()).unwrap();
        assert_eq!(extract(&warm, &inst), expected, "seed {seed}: warm divergence");
    }
}

#[test]
fn node_crashes_fence_and_repopulate_without_changing_results() {
    let expected = baseline();
    for seed in chaos_seeds() {
        let (mut inst, cache) = launch(Topology::new(4, 2), Some((seed, ms_crashes())));
        let out = inst.query(&query()).unwrap();
        assert_eq!(extract(&out, &inst), expected, "seed {seed}");
        // Locality never reports a node the plane currently holds down,
        // and every surviving copy lives on a live node.
        let names: Vec<String> = out
            .solutions
            .rows()
            .iter()
            .map(|r| {
                let smiles = inst.datastore().decode(r[1]).unwrap().as_str().unwrap().to_string();
                ids::core::workflow::docking_object_name("P29274", &smiles)
            })
            .collect();
        for name in names {
            for (node, _) in cache.locality(&name) {
                assert!(!cache.node_is_down(node), "seed {seed}: {name} reported on down node");
            }
        }
    }
}

#[test]
fn transient_fam_failures_are_retried_without_changing_results() {
    let expected = baseline();
    for seed in chaos_seeds() {
        let (mut inst, _) =
            launch(Topology::new(4, 2), Some((seed, FaultConfig::transient_only(0.2))));
        let cold = inst.query(&query()).unwrap();
        inst.reset_clocks();
        let warm = inst.query(&query()).unwrap();
        assert_eq!(extract(&cold, &inst), expected, "seed {seed} (cold)");
        assert_eq!(extract(&warm, &inst), expected, "seed {seed} (warm)");
    }
}

#[test]
fn degraded_links_slow_execution_without_changing_results() {
    let expected = baseline();
    let (mut base, _) = launch(Topology::new(4, 2), None);
    let base_elapsed = base.query(&query()).unwrap().elapsed_secs;
    for seed in chaos_seeds() {
        let (mut inst, _) = launch(Topology::new(4, 2), Some((seed, ms_links())));
        let out = inst.query(&query()).unwrap();
        assert_eq!(extract(&out, &inst), expected, "seed {seed}");
        assert!(
            out.elapsed_secs >= base_elapsed,
            "seed {seed}: degraded links cannot make the run faster \
             ({} < {base_elapsed})",
            out.elapsed_secs
        );
    }
}

#[test]
fn straggler_ranks_dilate_time_without_changing_results() {
    let expected = baseline();
    let (mut base, _) = launch(Topology::new(4, 2), None);
    let base_elapsed = base.query(&query()).unwrap().elapsed_secs;
    for seed in chaos_seeds() {
        let (mut inst, _) =
            launch(Topology::new(4, 2), Some((seed, FaultConfig::stragglers_only(0.5, 4.0))));
        let out = inst.query(&query()).unwrap();
        assert_eq!(extract(&out, &inst), expected, "seed {seed}");
        assert!(out.elapsed_secs >= base_elapsed, "seed {seed}: stragglers only add time");
    }
}

#[test]
fn exhausted_retries_degrade_to_partial_results_with_annotations() {
    // A UDF whose failures no retry can absorb: under graceful
    // degradation the query must come back Ok with the failing rows
    // dropped and annotated — never an Err — and EXPLAIN must show it.
    use ids::udf::{UdfOutput, UdfValue};
    let seed = chaos_seeds()[0];
    let (mut inst, _) = launch(Topology::new(4, 2), Some((seed, ms_chaos())));
    inst.registry()
        .register_static(
            "fragile_gate",
            Arc::new(|args: &[UdfValue]| -> UdfOutput {
                let v = args.first().and_then(|a| a.as_f64()).unwrap_or(0.0);
                // Reviewed proteins (flag = 1) always fail; background
                // proteins (flag = 0) always pass.
                if v >= 1.0 {
                    panic!("permanently failing row (reviewed {v})");
                }
                UdfOutput::new(UdfValue::Bool(true), 1.0e-4)
            }),
        )
        .unwrap();
    inst.exec_options_mut().degrade = true;
    let q = "SELECT ?p ?r WHERE { ?p <up:reviewed> ?r . FILTER(fragile_gate(?r)) }";
    let out = inst.query(q).unwrap();
    // 9 reviewed proteins (8 band + the target) are dropped; the 10
    // unreviewed background proteins pass.
    assert!(out.degraded(), "reviewed rows must have been dropped");
    assert_eq!(out.rows_dropped(), 9);
    assert_eq!(out.solutions.len(), 10);
    assert!(out
        .annotations
        .iter()
        .all(|a| a.kind == DegradedKind::WorkerPanic && a.stage == "filter"));
    assert!(out.annotations.iter().any(|a| a.detail.contains("permanently failing row")));
    // The survivors really are the background proteins.
    let ds = inst.datastore();
    for row in out.solutions.rows() {
        assert_eq!(ds.decode(row[1]).unwrap().as_i64(), Some(0));
    }
    let text = inst.explain(q).unwrap();
    assert!(text.contains("faults & degradation"), "{text}");
    assert!(text.contains("rows dropped"), "{text}");
}

#[test]
fn fault_metrics_surface_in_snapshot_and_explain() {
    let seed = chaos_seeds()[0];
    let (mut inst, _) = launch(Topology::new(4, 2), Some((seed, ms_chaos())));
    inst.query(&query()).unwrap();
    let snap = inst.metrics_snapshot();
    let injected: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.name == "ids_faults_injected_total")
        .map(|(_, v)| *v)
        .sum();
    assert!(injected > 0, "a chaos schedule over a full run must inject something");
    let text = inst.explain(&query()).unwrap();
    assert!(text.contains("faults & degradation"), "{text}");
    assert!(text.contains("faults injected"), "{text}");
}
