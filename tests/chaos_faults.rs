//! Chaos harness: the NCNPR re-purposing workflow under deterministic
//! fault schedules (node crashes, transient FAM failures, link
//! degradation, straggler ranks).
//!
//! The core contract is **result equivalence**: because every fault path
//! either retries or falls back to an authoritative source (backing
//! store, recomputation), a query run under any fault schedule returns
//! byte-identical rows to the fault-free run — only virtual time and
//! fault metrics differ. CI sweeps `CHAOS_SEED` over a fixed matrix;
//! locally, all matrix seeds run in one pass when the variable is unset.

use bytes::Bytes;
use ids::cache::{BackingStore, CacheConfig, CacheManager, Tier};
use ids::core::workflow::{
    install_workflow, repurposing_query, RepurposingThresholds, WorkflowModels,
};
use ids::core::{DegradedKind, IdsConfig, IdsInstance, QueryOutcome};
use ids::simrt::faults::{
    CrashConfig, LinkConfig, StorageConfig, StragglerConfig, TransientConfig,
};
use ids::simrt::topology::RankId;
use ids::simrt::{FaultConfig, FaultPlane, NetworkModel, Topology};
use ids::workloads::ncnpr::{build, Band, NcnprConfig};
use std::sync::Arc;

/// The CI seed matrix (ci.sh runs one seed per job via `CHAOS_SEED`).
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => (1..=8).collect(),
    }
}

/// The CI replication-factor matrix (ci.sh pins one factor per job via
/// `CHAOS_REPLICATION`; unset runs the whole ladder).
fn chaos_replication() -> Vec<usize> {
    match std::env::var("CHAOS_REPLICATION") {
        Ok(s) => vec![s.parse().expect("CHAOS_REPLICATION must be an unsigned integer")],
        Err(_) => vec![1, 2, 3],
    }
}

/// The test workflow runs in a few virtual milliseconds (free cost
/// models), so fault windows are scaled to milliseconds too — the run
/// then crosses several crash/degradation windows, exactly like a
/// paper-scale run crosses the second-scale windows of
/// [`FaultConfig::chaos`].
fn ms_chaos() -> FaultConfig {
    FaultConfig {
        crash: Some(CrashConfig { mean_uptime_secs: 2.0e-3, mean_downtime_secs: 0.5e-3 }),
        transient: Some(TransientConfig { fail_prob: 0.05 }),
        link: Some(LinkConfig {
            mean_healthy_secs: 1.0e-3,
            mean_degraded_secs: 0.4e-3,
            latency_mult: 8.0,
            bandwidth_mult: 0.25,
        }),
        straggler: Some(StragglerConfig { fraction: 0.25, slowdown: 3.0 }),
        storage: Some(StorageConfig { bit_rot_prob: 0.02, torn_write_prob: 0.01 }),
        permanent: None,
    }
}

fn ms_crashes() -> FaultConfig {
    FaultConfig::crashes_only(2.0e-3, 0.5e-3)
}

fn ms_links() -> FaultConfig {
    FaultConfig::link_only(LinkConfig {
        mean_healthy_secs: 1.0e-3,
        mean_degraded_secs: 0.6e-3,
        latency_mult: 10.0,
        bandwidth_mult: 0.2,
    })
}

fn small_config() -> NcnprConfig {
    NcnprConfig {
        bands: vec![
            Band {
                mutation_rate: 0.0,
                similarity_range: None,
                proteins: 3,
                compounds_per_protein: 4,
            },
            Band {
                mutation_rate: 0.62,
                similarity_range: Some((0.21, 0.39)),
                proteins: 5,
                compounds_per_protein: 2,
            },
        ],
        background_proteins: 10,
        ..NcnprConfig::default()
    }
}

/// Launch an instance with an attached cache and (optionally) a fault
/// plane driving the cluster, FAM, and cache from one seeded schedule.
fn launch(topo: Topology, faults: Option<(u64, FaultConfig)>) -> (IdsInstance, Arc<CacheManager>) {
    launch_rf(topo, faults, 1)
}

/// [`launch`] with an explicit cache replication factor.
fn launch_rf(
    topo: Topology,
    faults: Option<(u64, FaultConfig)>,
    replication: usize,
) -> (IdsInstance, Arc<CacheManager>) {
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 64 << 20, 256 << 20).with_replication(replication),
        BackingStore::default_store(),
    ));
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), 11);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    inst.attach_cache(Arc::clone(&cache));
    if let Some((seed, fc)) = faults {
        // A 10s horizon is ~1500x the query's virtual duration while
        // keeping window generation cheap under ms-scale fault configs.
        let plane = Arc::new(FaultPlane::new(seed, fc, topo.nodes(), topo.total_ranks(), 10.0));
        inst.attach_faults(plane);
    }
    let dataset = build(inst.datastore(), &small_config());
    let target = dataset.target.clone();
    install_workflow(&mut inst, &target, WorkflowModels::test_models());
    (inst, cache)
}

fn query() -> String {
    repurposing_query(&RepurposingThresholds { sw_similarity: 0.9, min_pic50: 3.0, min_dtba: 3.0 })
}

/// Sorted (compound, energy) rows — sorted because re-balancing plans may
/// legitimately assign rows to different ranks under dilated clocks.
fn extract(o: &QueryOutcome, inst: &IdsInstance) -> Vec<(String, String)> {
    let ds = inst.datastore();
    let mut v: Vec<(String, String)> = o
        .solutions
        .rows()
        .iter()
        .map(|r| {
            (
                ds.decode(r[1]).unwrap().to_string(),
                format!("{:.12}", ds.decode(r[2]).unwrap().as_f64().unwrap()),
            )
        })
        .collect();
    v.sort();
    v
}

fn baseline() -> Vec<(String, String)> {
    let (mut inst, _) = launch(Topology::new(4, 2), None);
    let out = inst.query(&query()).unwrap();
    extract(&out, &inst)
}

#[test]
fn full_chaos_matrix_preserves_results() {
    let expected = baseline();
    assert_eq!(expected.len(), 12, "3 proteins x 4 compounds");
    for seed in chaos_seeds() {
        let (mut inst, _) = launch(Topology::new(4, 2), Some((seed, ms_chaos())));
        let out =
            inst.query(&query()).unwrap_or_else(|e| panic!("seed {seed}: chaos run failed: {e}"));
        assert!(!out.degraded(), "seed {seed}: fault paths must not drop rows");
        assert_eq!(extract(&out, &inst), expected, "seed {seed}: result divergence");
        // Cold and warm runs both survive: the second pass exercises
        // cache hits, fencing, and re-population under the same schedule.
        inst.reset_clocks();
        let warm = inst.query(&query()).unwrap();
        assert_eq!(extract(&warm, &inst), expected, "seed {seed}: warm divergence");
    }
}

#[test]
fn node_crashes_fence_and_repopulate_without_changing_results() {
    let expected = baseline();
    for seed in chaos_seeds() {
        let (mut inst, cache) = launch(Topology::new(4, 2), Some((seed, ms_crashes())));
        let out = inst.query(&query()).unwrap();
        assert_eq!(extract(&out, &inst), expected, "seed {seed}");
        // Locality never reports a node the plane currently holds down,
        // and every surviving copy lives on a live node.
        let names: Vec<String> = out
            .solutions
            .rows()
            .iter()
            .map(|r| {
                let smiles = inst.datastore().decode(r[1]).unwrap().as_str().unwrap().to_string();
                ids::core::workflow::docking_object_name("P29274", &smiles)
            })
            .collect();
        for name in names {
            for (node, _) in cache.locality(&name) {
                assert!(!cache.node_is_down(node), "seed {seed}: {name} reported on down node");
            }
        }
    }
}

#[test]
fn transient_fam_failures_are_retried_without_changing_results() {
    let expected = baseline();
    for seed in chaos_seeds() {
        let (mut inst, _) =
            launch(Topology::new(4, 2), Some((seed, FaultConfig::transient_only(0.2))));
        let cold = inst.query(&query()).unwrap();
        inst.reset_clocks();
        let warm = inst.query(&query()).unwrap();
        assert_eq!(extract(&cold, &inst), expected, "seed {seed} (cold)");
        assert_eq!(extract(&warm, &inst), expected, "seed {seed} (warm)");
    }
}

#[test]
fn degraded_links_slow_execution_without_changing_results() {
    let expected = baseline();
    let (mut base, _) = launch(Topology::new(4, 2), None);
    let base_elapsed = base.query(&query()).unwrap().elapsed_secs;
    for seed in chaos_seeds() {
        let (mut inst, _) = launch(Topology::new(4, 2), Some((seed, ms_links())));
        let out = inst.query(&query()).unwrap();
        assert_eq!(extract(&out, &inst), expected, "seed {seed}");
        assert!(
            out.elapsed_secs >= base_elapsed,
            "seed {seed}: degraded links cannot make the run faster \
             ({} < {base_elapsed})",
            out.elapsed_secs
        );
    }
}

#[test]
fn straggler_ranks_dilate_time_without_changing_results() {
    let expected = baseline();
    let (mut base, _) = launch(Topology::new(4, 2), None);
    let base_elapsed = base.query(&query()).unwrap().elapsed_secs;
    for seed in chaos_seeds() {
        let (mut inst, _) =
            launch(Topology::new(4, 2), Some((seed, FaultConfig::stragglers_only(0.5, 4.0))));
        let out = inst.query(&query()).unwrap();
        assert_eq!(extract(&out, &inst), expected, "seed {seed}");
        assert!(out.elapsed_secs >= base_elapsed, "seed {seed}: stragglers only add time");
    }
}

#[test]
fn exhausted_retries_degrade_to_partial_results_with_annotations() {
    // A UDF whose failures no retry can absorb: under graceful
    // degradation the query must come back Ok with the failing rows
    // dropped and annotated — never an Err — and EXPLAIN must show it.
    use ids::udf::{UdfOutput, UdfValue};
    let seed = chaos_seeds()[0];
    let (mut inst, _) = launch(Topology::new(4, 2), Some((seed, ms_chaos())));
    inst.registry()
        .register_static(
            "fragile_gate",
            Arc::new(|args: &[UdfValue]| -> UdfOutput {
                let v = args.first().and_then(|a| a.as_f64()).unwrap_or(0.0);
                // Reviewed proteins (flag = 1) always fail; background
                // proteins (flag = 0) always pass.
                if v >= 1.0 {
                    panic!("permanently failing row (reviewed {v})");
                }
                UdfOutput::new(UdfValue::Bool(true), 1.0e-4)
            }),
        )
        .unwrap();
    inst.exec_options_mut().degrade = true;
    let q = "SELECT ?p ?r WHERE { ?p <up:reviewed> ?r . FILTER(fragile_gate(?r)) }";
    let out = inst.query(q).unwrap();
    // 9 reviewed proteins (8 band + the target) are dropped; the 10
    // unreviewed background proteins pass.
    assert!(out.degraded(), "reviewed rows must have been dropped");
    assert_eq!(out.rows_dropped(), 9);
    assert_eq!(out.solutions.len(), 10);
    assert!(out
        .annotations
        .iter()
        .all(|a| a.kind == DegradedKind::WorkerPanic && a.stage == "filter"));
    assert!(out.annotations.iter().any(|a| a.detail.contains("permanently failing row")));
    // The survivors really are the background proteins.
    let ds = inst.datastore();
    for row in out.solutions.rows() {
        assert_eq!(ds.decode(row[1]).unwrap().as_i64(), Some(0));
    }
    let text = inst.explain(q).unwrap();
    assert!(text.contains("faults & degradation"), "{text}");
    assert!(text.contains("rows dropped"), "{text}");
}

#[test]
fn replication_ladder_preserves_results_under_full_chaos() {
    // The replication knob must never change answers: every factor in
    // the ladder returns byte-identical rows to the fault-free baseline
    // under the full chaos schedule, cold and warm.
    let expected = baseline();
    for rf in chaos_replication() {
        for seed in chaos_seeds() {
            let (mut inst, cache) = launch_rf(Topology::new(4, 2), Some((seed, ms_chaos())), rf);
            let out = inst
                .query(&query())
                .unwrap_or_else(|e| panic!("rf {rf} seed {seed}: chaos run failed: {e}"));
            assert!(!out.degraded(), "rf {rf} seed {seed}: fault paths must not drop rows");
            assert_eq!(extract(&out, &inst), expected, "rf {rf} seed {seed}: result divergence");
            inst.reset_clocks();
            let warm = inst.query(&query()).unwrap();
            assert_eq!(extract(&warm, &inst), expected, "rf {rf} seed {seed}: warm divergence");
            // Whatever the schedule did, no copy may sit on a down node
            // and anti-entropy must have had stage-boundary chances.
            let snap = inst.metrics_snapshot().merge(&cache.metrics().snapshot());
            assert!(
                snap.counter("ids_engine_anti_entropy_ticks_total", "") > 0,
                "rf {rf} seed {seed}: engine never offered an anti-entropy tick"
            );
        }
    }
}

#[test]
fn crash_window_failover_reads_serve_replicas_with_zero_backing_traffic() {
    // Acceptance: with replication >= 2, a get issued while one replica
    // holder is crashed serves from the surviving cache copy — zero
    // backing fetches and zero re-populations, per the ids-obs counters.
    const NAME: &str = "chaos/replica-obj";
    let topo = Topology::new(4, 2);
    let rf2_cache = || {
        CacheManager::new(
            topo,
            NetworkModel::slingshot(),
            CacheConfig::new(2, 64 << 20, 256 << 20).with_replication(2),
            BackingStore::default_store(),
        )
    };
    let assert_failover = |cache: &CacheManager, data: &Bytes, seed: u64| {
        let before = cache.metrics().snapshot();
        let (bytes, outcome) = cache
            .get(RankId(0), NAME)
            .unwrap_or_else(|e| panic!("seed {seed}: failover read failed: {e}"))
            .unwrap_or_else(|| panic!("seed {seed}: replicated object vanished"));
        assert_eq!(bytes, *data, "seed {seed}: failover read must return identical bytes");
        assert_ne!(outcome.tier, Tier::Backing, "seed {seed}: must serve from a cache tier");
        let d = cache.metrics().snapshot().delta(&before);
        assert_eq!(d.counter("ids_cache_lookup_hits_total", "backing"), 0, "seed {seed}");
        assert_eq!(d.counter("ids_cache_repopulations_total", ""), 0, "seed {seed}");
        assert_eq!(d.counter("ids_cache_failover_reads_total", ""), 1, "seed {seed}");
    };
    let holders_of = |cache: &CacheManager, seed: u64| {
        let holders: Vec<_> = cache.locality(NAME).iter().map(|(n, _)| *n).collect();
        assert_eq!(holders.len(), 2, "seed {seed}: rf=2 put lands two copies");
        holders
    };

    let mut windows_exercised = 0u32;
    for seed in chaos_seeds() {
        let plane = Arc::new(FaultPlane::new(
            seed,
            FaultConfig::crashes_only(2.0e-3, 0.5e-3),
            topo.nodes(),
            topo.total_ranks(),
            10.0,
        ));
        let cache = rf2_cache();
        cache.attach_faults(Arc::clone(&plane));
        let data = Bytes::from(vec![seed as u8; 4096]);
        cache.put(RankId(0), NAME, data.clone());
        let holders = holders_of(&cache, seed);

        // First schedule instant where exactly one holder is down.
        let t = holders
            .iter()
            .flat_map(|n| plane.crash_windows(*n).iter().map(|w| w.0 + 1.0e-7))
            .filter(|&at| holders.iter().filter(|n| plane.node_down_at(**n, at)).count() == 1)
            .fold(f64::INFINITY, f64::min);
        if t.is_finite() {
            windows_exercised += 1;
            plane.advance_to(t);
            assert_failover(&cache, &data, seed);
        } else {
            // The schedule never isolates a single holder — fence one by
            // hand on a plane-free twin so every pinned-seed CI cell
            // still exercises the failover path.
            let cache = rf2_cache();
            cache.put(RankId(0), NAME, data.clone());
            let holders = holders_of(&cache, seed);
            cache.fail_node(holders[0]);
            assert_failover(&cache, &data, seed);
        }
    }
    if chaos_seeds().len() > 1 {
        assert!(
            windows_exercised >= 2,
            "the full seed matrix must isolate a single replica holder at least twice \
             (got {windows_exercised})"
        );
    }
}

#[test]
fn bit_rot_chaos_detects_quarantines_and_never_serves_corrupt_bytes() {
    // Storage-fault chaos: every read either serves pristine bytes or
    // (invisibly to the caller) quarantines a rotted copy and fails over.
    // Corrupt bytes must never escape, and with the backing store left
    // healthy no read may error.
    let topo = Topology::new(4, 2);
    let ranks = topo.total_ranks();
    let mut detected = 0u64;
    for seed in chaos_seeds() {
        let plane = Arc::new(FaultPlane::new(
            seed,
            FaultConfig::storage_only(0.2, 0.0),
            topo.nodes(),
            ranks,
            10.0,
        ));
        let cache = CacheManager::new(
            topo,
            NetworkModel::slingshot(),
            CacheConfig::new(2, 64 << 20, 256 << 20).with_replication(2),
            BackingStore::default_store(),
        );
        cache.attach_faults(Arc::clone(&plane));
        let payload = |i: usize| Bytes::from(vec![0x40 | i as u8; 2048]);
        for i in 0..4 {
            cache.put(RankId((i as u32) % ranks), &format!("rot/{i}"), payload(i));
        }
        for _pass in 0..4 {
            for i in 0..4 {
                for r in 0..ranks {
                    let got = cache
                        .get(RankId(r), &format!("rot/{i}"))
                        .unwrap_or_else(|e| panic!("seed {seed}: healthy backing erred: {e}"))
                        .unwrap_or_else(|| panic!("seed {seed}: rot/{i} lost"));
                    assert_eq!(got.0, payload(i), "seed {seed}: corrupt bytes served");
                }
            }
        }
        let snap = cache.metrics().snapshot();
        assert_eq!(
            snap.counter("ids_cache_quarantines_total", ""),
            snap.counter("ids_cache_corruptions_detected_total", "cache"),
            "seed {seed}: every cache-side detection quarantines exactly once"
        );
        detected += snap.counter_sum("ids_cache_corruptions_detected_total");
    }
    assert!(detected > 0, "a 20% rot probability across the matrix must fire");
}

#[test]
fn fault_metrics_surface_in_snapshot_and_explain() {
    let seed = chaos_seeds()[0];
    let (mut inst, _) = launch(Topology::new(4, 2), Some((seed, ms_chaos())));
    inst.query(&query()).unwrap();
    let snap = inst.metrics_snapshot();
    let injected = snap.counter_sum("ids_faults_injected_total");
    assert!(injected > 0, "a chaos schedule over a full run must inject something");
    let text = inst.explain(&query()).unwrap();
    assert!(text.contains("faults & degradation"), "{text}");
    assert!(text.contains("faults injected"), "{text}");
}
