//! Columnar/row parity under chaos: the `columnar` execution option
//! selects a virtual-time *cost model*, never a data plane — batches are
//! the internal representation in both modes. This suite pins the PR's
//! core invariant: whatever fault schedule the chaos matrix throws at
//! the cluster, the columnar engine returns **byte-identical**
//! `QueryOutcome` rows to the legacy row-at-a-time engine.
//!
//! Fault-free, equality is exact (same rows, same order, same term ids).
//! Under faults the two modes accrue different virtual times — that is
//! the point of the ablation — so fault windows can intersect stages
//! differently; rows are compared as sorted decoded multisets, the same
//! tolerance `chaos_faults.rs` grants dilated clocks.

use ids::cache::{
    BackingStore, CacheConfig, CacheManager, IntermediateSolutions, TypedSolutionSet,
};
use ids::core::workflow::{
    install_workflow, repurposing_query, RepurposingThresholds, WorkflowModels,
};
use ids::core::{IdsConfig, IdsInstance, QueryOutcome};
use ids::simrt::{FaultConfig, FaultPlane, NetworkModel, Topology};
use ids::workloads::ncnpr::{build, Band, NcnprConfig};
use std::sync::Arc;

/// The CI seed matrix (ci.sh runs one seed per job via `CHAOS_SEED`).
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => (1..=8).collect(),
    }
}

fn ms_chaos() -> FaultConfig {
    use ids::simrt::faults::{
        CrashConfig, LinkConfig, StorageConfig, StragglerConfig, TransientConfig,
    };
    FaultConfig {
        crash: Some(CrashConfig { mean_uptime_secs: 2.0e-3, mean_downtime_secs: 0.5e-3 }),
        transient: Some(TransientConfig { fail_prob: 0.05 }),
        link: Some(LinkConfig {
            mean_healthy_secs: 1.0e-3,
            mean_degraded_secs: 0.4e-3,
            latency_mult: 8.0,
            bandwidth_mult: 0.25,
        }),
        straggler: Some(StragglerConfig { fraction: 0.25, slowdown: 3.0 }),
        storage: Some(StorageConfig { bit_rot_prob: 0.02, torn_write_prob: 0.01 }),
        permanent: None,
    }
}

fn small_config() -> NcnprConfig {
    NcnprConfig {
        bands: vec![
            Band {
                mutation_rate: 0.0,
                similarity_range: None,
                proteins: 3,
                compounds_per_protein: 4,
            },
            Band {
                mutation_rate: 0.62,
                similarity_range: Some((0.21, 0.39)),
                proteins: 5,
                compounds_per_protein: 2,
            },
        ],
        background_proteins: 10,
        ..NcnprConfig::default()
    }
}

/// Launch one instance with the full NCNPR workflow installed and the
/// execution mode pinned; identical to the `chaos_faults.rs` harness
/// except for the explicit `columnar` switch.
fn launch(topo: Topology, faults: Option<(u64, FaultConfig)>, columnar: bool) -> IdsInstance {
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 64 << 20, 256 << 20),
        BackingStore::default_store(),
    ));
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), 11);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    inst.attach_cache(cache);
    if let Some((seed, fc)) = faults {
        let plane = Arc::new(FaultPlane::new(seed, fc, topo.nodes(), topo.total_ranks(), 10.0));
        inst.attach_faults(plane);
    }
    let dataset = build(inst.datastore(), &small_config());
    let target = dataset.target.clone();
    install_workflow(&mut inst, &target, WorkflowModels::test_models());
    inst.exec_options_mut().columnar = columnar;
    inst
}

fn query() -> String {
    repurposing_query(&RepurposingThresholds { sw_similarity: 0.9, min_pic50: 3.0, min_dtba: 3.0 })
}

/// Raw term-id rows — the strictest equality there is.
fn raw_rows(o: &QueryOutcome) -> Vec<Vec<u64>> {
    o.solutions.rows().iter().map(|r| r.iter().map(|t| t.raw()).collect()).collect()
}

/// Sorted decoded (compound, energy) rows — rank-placement tolerant.
fn extract(o: &QueryOutcome, inst: &IdsInstance) -> Vec<(String, String)> {
    let ds = inst.datastore();
    let mut v: Vec<(String, String)> = o
        .solutions
        .rows()
        .iter()
        .map(|r| {
            (
                ds.decode(r[1]).unwrap().to_string(),
                format!("{:.12}", ds.decode(r[2]).unwrap().as_f64().unwrap()),
            )
        })
        .collect();
    v.sort();
    v
}

/// Fault-free, the two cost models are observationally indistinguishable
/// at the data plane: same schema, same rows, same order, same dictionary
/// ids. (Virtual time is *not* compared here: on this 12-row UDF-heavy
/// workflow the per-batch dispatch charge is not amortized away — the
/// `ablation_columnar` bench owns the speedup claim on a workload where
/// batching matters.)
#[test]
fn fault_free_runs_are_byte_identical() {
    let mut row = launch(Topology::new(4, 2), None, false);
    let mut col = launch(Topology::new(4, 2), None, true);
    let row_out = row.query(&query()).unwrap();
    let col_out = col.query(&query()).unwrap();
    assert_eq!(row_out.solutions.vars(), col_out.solutions.vars(), "schema divergence");
    assert_eq!(raw_rows(&row_out), raw_rows(&col_out), "row/columnar data-plane divergence");
    assert_eq!(row_out.solutions.len(), 12, "3 proteins x 4 compounds");
}

/// The full chaos matrix: per seed, the columnar engine under faults
/// matches the row engine under the *same* fault schedule and the
/// fault-free baseline, row for row after the placement-tolerant sort.
#[test]
fn chaos_matrix_row_vs_columnar_parity() {
    let mut base = launch(Topology::new(4, 2), None, true);
    let base_out = base.query(&query()).unwrap();
    let expected = extract(&base_out, &base);
    assert_eq!(expected.len(), 12);

    for seed in chaos_seeds() {
        let mut row = launch(Topology::new(4, 2), Some((seed, ms_chaos())), false);
        let mut col = launch(Topology::new(4, 2), Some((seed, ms_chaos())), true);
        let row_out = row
            .query(&query())
            .unwrap_or_else(|e| panic!("seed {seed}: row chaos run failed: {e}"));
        let col_out = col
            .query(&query())
            .unwrap_or_else(|e| panic!("seed {seed}: columnar chaos run failed: {e}"));
        assert!(!col_out.degraded(), "seed {seed}: columnar fault paths must not drop rows");
        assert_eq!(
            extract(&row_out, &row),
            extract(&col_out, &col),
            "seed {seed}: row/columnar divergence under chaos"
        );
        assert_eq!(
            extract(&col_out, &col),
            expected,
            "seed {seed}: columnar chaos run diverged from fault-free baseline"
        );
    }
}

/// Serialized intermediates are mode-agnostic: encoding the final
/// solutions of each engine as a reuse checkpoint yields the exact same
/// wire bytes, and the O(1) `encoded_len` accounting matches the
/// measured size — the number the cache admission path charges.
#[test]
fn serialized_intermediates_are_mode_agnostic_and_exactly_accounted() {
    let mut row = launch(Topology::new(4, 2), None, false);
    let mut col = launch(Topology::new(4, 2), None, true);
    let q = query();
    let a = row.query(&q).unwrap();
    let b = col.query(&q).unwrap();

    let typed = |o: &QueryOutcome| IntermediateSolutions {
        fingerprint: 0xC0_10_AA,
        pre_filter_counts: o.pre_filter_counts.clone(),
        sets: vec![TypedSolutionSet {
            vars: o.solutions.vars().to_vec(),
            rows: o.solutions.rows().iter().map(|r| r.iter().map(|t| t.raw()).collect()).collect(),
        }],
    };
    let (oa, ob) = (typed(&a), typed(&b));
    let (ea, eb) = (oa.encode(), ob.encode());
    assert_eq!(ea, eb, "checkpoint wire bytes must match across modes");
    assert_eq!(oa.encoded_len(), ea.len(), "size accounting must equal measured bytes");
}
