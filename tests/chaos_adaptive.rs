//! Mid-query re-optimization chaos matrix (DESIGN.md §5l): adaptive runs
//! must return rows **byte-identical** to static cost-based runs, on a
//! dataset built to defeat the static cost model.
//!
//! The trap exploits what containment-based estimation cannot see —
//! *correlation*. Patterns `?x <a> ?v` and `?y <b> ?v` each have healthy
//! per-column NDVs, so the planner prices their join at
//! `|A|·|B| / max(ndv)` = 80 rows; but the actual value sets barely
//! overlap (2 shared `v`s), so only 8 rows come out. That 10× divergence
//! trips the boundary check, and the observed-row clamp on accumulated
//! NDVs flips the remaining suffix order (`?x <e> ?h` before
//! `?y <c> ?g`), so the matrix asserts `replans ≥ 1` — and identical
//! bytes — across 8 straggler seeds × both exchange modes.
//!
//! The `CHAOS_ADAPTIVE=aggressive` axis drops the re-plan threshold to
//! nearly 1× with no row floor, forcing re-plans at every slightly
//! divergent boundary: byte-identity must still hold.

use ids::core::{IdsConfig, IdsInstance, QueryOutcome};
use ids::graph::Term;
use ids::simrt::faults::StragglerConfig;
use ids::simrt::{FaultConfig, FaultPlane, Topology};
use std::sync::Arc;

/// The CI seed matrix (ci.sh runs one seed per job via `CHAOS_SEED`).
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => (1..=8).collect(),
    }
}

/// The `CHAOS_ADAPTIVE` CI axis: `default` uses the stock re-plan
/// threshold; `aggressive` re-plans at nearly any divergence. Unset runs
/// both.
fn axis() -> Vec<&'static str> {
    match std::env::var("CHAOS_ADAPTIVE").as_deref() {
        Err(_) | Ok("") => vec!["default", "aggressive"],
        Ok("default") => vec!["default"],
        Ok("aggressive") => vec!["aggressive"],
        Ok(other) => panic!("unknown CHAOS_ADAPTIVE axis {other:?} (want default|aggressive)"),
    }
}

/// Straggler-only noise so each seed exercises a different virtual-time
/// schedule without perturbing the data plane.
fn straggler_noise() -> FaultConfig {
    FaultConfig {
        crash: None,
        transient: None,
        link: None,
        straggler: Some(StragglerConfig { fraction: 0.25, slowdown: 4.0 }),
        storage: None,
        permanent: None,
    }
}

const QUERY: &str =
    "SELECT ?x ?v ?y ?g ?h WHERE { ?x <a> ?v . ?y <b> ?v . ?y <c> ?g . ?x <e> ?h . }";

fn fact(inst: &IdsInstance, s: String, p: &str, o: String) {
    inst.datastore().add_fact(&Term::iri(s), &Term::iri(p), &Term::iri(o));
}

/// The correlation trap. `<a>` objects are `v0..v19`, `<b>` objects are
/// `v18..v67`: per-column NDVs look joinable (20 and 50), the actual
/// overlap is 2 values. `<c>` hangs 33 distinct `g`s off each of 2 `y`
/// subjects (tiny subject NDV — its denominator collapses with the
/// observed-row clamp), `<e>` hangs 3 `h`s off every `x` (subject NDV
/// stays at 40 — its denominator does not), which is what makes the
/// re-planned suffix order flip.
fn build_trap(inst: &IdsInstance) {
    for i in 0..40 {
        fact(inst, format!("x{i}"), "a", format!("v{}", i / 2));
    }
    for j in 0..100 {
        fact(inst, format!("y{j}"), "b", format!("v{}", 18 + j / 2));
    }
    for y in 0..2 {
        for g in 0..33 {
            fact(inst, format!("y{y}"), "c", format!("g{}", y * 33 + g));
        }
    }
    for i in 0..40 {
        for k in 0..3 {
            fact(inst, format!("x{i}"), "e", format!("h{}", 3 * i + k));
        }
    }
    inst.datastore().build_indexes();
}

/// The uniform control: same shape, but `<b>`'s objects span `v0..v49`,
/// fully covering `<a>`'s `v0..v19` — the containment estimate (80 rows)
/// is exact, so the default threshold must never trigger a re-plan.
fn build_uniform(inst: &IdsInstance) {
    for i in 0..40 {
        fact(inst, format!("x{i}"), "a", format!("v{}", i / 2));
    }
    for j in 0..100 {
        fact(inst, format!("y{j}"), "b", format!("v{}", j / 2));
    }
    for y in 0..2 {
        for g in 0..33 {
            fact(inst, format!("y{y}"), "c", format!("g{}", y * 33 + g));
        }
    }
    for i in 0..40 {
        for k in 0..3 {
            fact(inst, format!("x{i}"), "e", format!("h{}", 3 * i + k));
        }
    }
    inst.datastore().build_indexes();
}

struct RunSpec {
    seed: u64,
    pipelined: bool,
    adaptive: bool,
    /// `None` = stock threshold; `Some((ratio, min_rows))` overrides.
    threshold: Option<(f64, u64)>,
}

fn launch(spec: &RunSpec, build: fn(&IdsInstance)) -> IdsInstance {
    let topo = Topology::new(4, 2);
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), spec.seed);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    let plane =
        FaultPlane::new(spec.seed, straggler_noise(), topo.nodes(), topo.total_ranks(), 10.0);
    inst.attach_faults(Arc::new(plane));
    build(&inst);
    let opts = inst.exec_options_mut();
    opts.adaptive = spec.adaptive;
    opts.pipelined = spec.pipelined;
    if let Some((ratio, min_rows)) = spec.threshold {
        opts.replan_ratio = ratio;
        opts.replan_min_rows = min_rows;
    }
    inst
}

/// Raw term-id rows — the strictest equality there is.
fn raw_rows(o: &QueryOutcome) -> Vec<Vec<u64>> {
    o.solutions.rows().iter().map(|r| r.iter().map(|t| t.raw()).collect()).collect()
}

/// The tentpole matrix: per straggler seed × exchange mode, the adaptive
/// run must re-plan at least once on the trap dataset and still return
/// rows byte-identical to the static cost-based run.
#[test]
fn trap_dataset_replans_and_stays_byte_identical() {
    if !axis().contains(&"default") {
        return;
    }
    for seed in chaos_seeds() {
        for pipelined in [false, true] {
            let label = format!("seed {seed} pipelined {pipelined}");
            let spec = RunSpec { seed, pipelined, adaptive: false, threshold: None };
            let mut stat = launch(&spec, build_trap);
            let stat_out = stat.query(QUERY).unwrap_or_else(|e| panic!("{label}: static: {e}"));
            assert!(!stat_out.solutions.is_empty(), "{label}: trap query returned nothing");
            assert_eq!(stat_out.adaptive.replans, 0, "{label}: static run must never re-plan");

            let spec = RunSpec { seed, pipelined, adaptive: true, threshold: None };
            let mut adap = launch(&spec, build_trap);
            let adap_out = adap.query(QUERY).unwrap_or_else(|e| panic!("{label}: adaptive: {e}"));
            assert_eq!(
                raw_rows(&adap_out),
                raw_rows(&stat_out),
                "{label}: re-planned rows diverged from static plan"
            );
            assert!(
                adap_out.adaptive.replans >= 1,
                "{label}: correlation trap must force a re-plan: {:?}",
                adap_out.adaptive
            );
            assert!(
                adap_out.adaptive.worst_divergence() >= 4.0,
                "{label}: expected >=4x est/actual divergence: {:?}",
                adap_out.adaptive.boundaries
            );
        }
    }
}

/// Uniform control: when the containment estimate is exact, the default
/// threshold never re-plans — adaptivity must not thrash on good plans.
#[test]
fn uniform_dataset_never_replans() {
    if !axis().contains(&"default") {
        return;
    }
    for seed in chaos_seeds() {
        for pipelined in [false, true] {
            let label = format!("seed {seed} pipelined {pipelined}");
            let spec = RunSpec { seed, pipelined, adaptive: false, threshold: None };
            let mut stat = launch(&spec, build_uniform);
            let stat_out = stat.query(QUERY).unwrap_or_else(|e| panic!("{label}: static: {e}"));

            let spec = RunSpec { seed, pipelined, adaptive: true, threshold: None };
            let mut adap = launch(&spec, build_uniform);
            let adap_out = adap.query(QUERY).unwrap_or_else(|e| panic!("{label}: adaptive: {e}"));
            assert_eq!(raw_rows(&adap_out), raw_rows(&stat_out), "{label}: rows diverged");
            assert_eq!(
                adap_out.adaptive.replans, 0,
                "{label}: exact estimates must not trigger re-plans: {:?}",
                adap_out.adaptive.boundaries
            );
            assert!(adap_out.adaptive.checks >= 2, "{label}: boundaries went unchecked");
        }
    }
}

/// Aggressive axis: with the threshold floored, re-plans fire at every
/// slightly divergent boundary on both datasets — bytes must not move.
#[test]
fn aggressive_replanning_stays_byte_identical() {
    if !axis().contains(&"aggressive") {
        return;
    }
    for seed in chaos_seeds() {
        for pipelined in [false, true] {
            for build in [build_trap as fn(&IdsInstance), build_uniform] {
                let label = format!("seed {seed} pipelined {pipelined}");
                let spec = RunSpec { seed, pipelined, adaptive: false, threshold: None };
                let mut stat = launch(&spec, build);
                let stat_out = stat.query(QUERY).unwrap_or_else(|e| panic!("{label}: static: {e}"));

                let spec = RunSpec { seed, pipelined, adaptive: true, threshold: Some((1.01, 1)) };
                let mut adap = launch(&spec, build);
                let adap_out =
                    adap.query(QUERY).unwrap_or_else(|e| panic!("{label}: adaptive: {e}"));
                assert_eq!(
                    raw_rows(&adap_out),
                    raw_rows(&stat_out),
                    "{label}: aggressive re-planning moved result bytes"
                );
            }
        }
    }
}
