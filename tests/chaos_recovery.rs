//! Query-level survivability under permanent rank loss: the recovery
//! plane rolls a mid-flight query back to its last completed checkpoint,
//! retires the dead ranks, re-plans their shards onto the survivors, and
//! resumes — **byte-identical** to the fault-free run. The matrix kills
//! one whole node at *every* checkpoint boundary the fault-free run
//! recorded, in both BSP and pipelined exchange modes, across
//! replication factors 1–3:
//!
//! * rf ≥ 2 — the checkpoint survives the node (one replica is off the
//!   dead node), the query resumes and its raw term-id rows match the
//!   fault-free baseline exactly;
//! * rf = 1 — the checkpoint *may* have lived only on the dead node, so
//!   recovery refuses deterministically with the typed
//!   [`ExecError::CheckpointLost`] — never a panic, never a wrong answer.
//!
//! The `CHAOS_RECOVERY=spiteful` axis adds the adversarial schedule: run
//! once with speculation under stragglers, find the rank that won the
//! first speculation race, then re-run killing *that* rank's node just
//! after its win — the worst moment the fault plane can pick.

use ids::cache::{BackingStore, CacheConfig, CacheManager};
use ids::core::workflow::{
    install_workflow, repurposing_query, RepurposingThresholds, WorkflowModels,
};
use ids::core::{ExecError, IdsConfig, IdsInstance, QueryError, QueryOutcome};
use ids::simrt::faults::StragglerConfig;
use ids::simrt::{FaultConfig, FaultPlane, NetworkModel, NodeId, Topology};
use ids::workloads::ncnpr::{build, Band, NcnprConfig};
use std::sync::Arc;

/// The CI seed matrix (ci.sh runs one seed per job via `CHAOS_SEED`).
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => (1..=8).collect(),
    }
}

/// The `CHAOS_RECOVERY` CI axis: `default` kills at checkpoint
/// boundaries; `spiteful` kills the first speculation winner. Unset runs
/// both.
fn axis() -> Vec<&'static str> {
    match std::env::var("CHAOS_RECOVERY").as_deref() {
        Err(_) | Ok("") => vec!["default", "spiteful"],
        Ok("default") => vec!["default"],
        Ok("spiteful") => vec!["spiteful"],
        Ok(other) => panic!("unknown CHAOS_RECOVERY axis {other:?} (want default|spiteful)"),
    }
}

/// Straggler-only noise so each seed exercises a different virtual-time
/// schedule (and therefore different checkpoint boundaries) without any
/// random crash windows competing with the scheduled permanent kill.
fn straggler_noise() -> FaultConfig {
    FaultConfig {
        crash: None,
        transient: None,
        link: None,
        straggler: Some(StragglerConfig { fraction: 0.25, slowdown: 4.0 }),
        storage: None,
        permanent: None,
    }
}

fn small_config() -> NcnprConfig {
    NcnprConfig {
        bands: vec![
            Band {
                mutation_rate: 0.0,
                similarity_range: None,
                proteins: 3,
                compounds_per_protein: 4,
            },
            Band {
                mutation_rate: 0.62,
                similarity_range: Some((0.21, 0.39)),
                proteins: 5,
                compounds_per_protein: 2,
            },
        ],
        background_proteins: 10,
        ..NcnprConfig::default()
    }
}

/// One run's shape: exchange mode, cache replication factor, straggler
/// seed, and an optional scheduled permanent kill `(node, at_secs)`.
#[derive(Clone, Copy)]
struct RunSpec {
    pipelined: bool,
    replication: usize,
    seed: u64,
    kill: Option<(u32, f64)>,
    speculation: bool,
}

/// Launch an instance with the NCNPR workflow, the recovery plane on,
/// and the spec's fault schedule pinned before the plane is attached
/// (permanent kills are scheduled at construction — the plane is shared
/// immutably afterwards).
fn launch(spec: RunSpec) -> IdsInstance {
    let topo = Topology::new(4, 2);
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 64 << 20, 256 << 20).with_replication(spec.replication),
        BackingStore::default_store(),
    ));
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), 11);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    inst.attach_cache(cache);
    let mut plane =
        FaultPlane::new(spec.seed, straggler_noise(), topo.nodes(), topo.total_ranks(), 10.0);
    if let Some((node, at)) = spec.kill {
        plane.schedule_permanent_kill(NodeId(node), at);
    }
    inst.attach_faults(Arc::new(plane));
    let dataset = build(inst.datastore(), &small_config());
    let target = dataset.target.clone();
    install_workflow(&mut inst, &target, WorkflowModels::test_models());
    let opts = inst.exec_options_mut();
    opts.recovery = true;
    opts.speculation = spec.speculation;
    opts.pipelined = spec.pipelined;
    inst
}

fn query() -> String {
    repurposing_query(&RepurposingThresholds { sw_similarity: 0.9, min_pic50: 3.0, min_dtba: 3.0 })
}

/// Raw term-id rows — the strictest equality there is.
fn raw_rows(o: &QueryOutcome) -> Vec<Vec<u64>> {
    o.solutions.rows().iter().map(|r| r.iter().map(|t| t.raw()).collect()).collect()
}

/// Enabling the recovery plane on a fault-free run changes only virtual
/// time (checkpoint puts), never the data plane; and it records the
/// checkpoint boundary schedule the kill matrix aims at.
#[test]
fn fault_free_recovery_is_byte_identical_and_checkpoints() {
    let base_spec =
        RunSpec { pipelined: false, replication: 2, seed: 1, kill: None, speculation: false };
    let mut plain = launch(base_spec);
    plain.exec_options_mut().recovery = false;
    let plain_out = plain.query(&query()).unwrap();

    let mut rec = launch(base_spec);
    let rec_out = rec.query(&query()).unwrap();
    assert_eq!(raw_rows(&plain_out), raw_rows(&rec_out), "recovery plane touched the data plane");
    assert_eq!(rec_out.solutions.len(), 12, "3 proteins x 4 compounds");
    assert_eq!(rec_out.recovery.rollbacks, 0, "no faults, no rollbacks");
    assert!(
        rec_out.recovery.checkpoints_stored >= 2,
        "expected checkpoints at the BGP and WHERE boundaries at least: {:?}",
        rec_out.recovery
    );
    assert_eq!(rec_out.recovery.checkpoint_times.len() as u32, rec_out.recovery.checkpoints_stored);
}

/// The tentpole matrix: kill node 1 just after every checkpoint boundary
/// of the fault-free run, per seed × exchange mode, with rf=2 and rf=3.
/// Every killed run must resume and return raw rows byte-identical to
/// its fault-free twin.
#[test]
fn node_loss_at_every_checkpoint_boundary_resumes_byte_identical() {
    if !axis().contains(&"default") {
        return;
    }
    for seed in chaos_seeds() {
        for pipelined in [false, true] {
            for replication in [2usize, 3] {
                let spec = RunSpec { pipelined, replication, seed, kill: None, speculation: false };
                let mut base = launch(spec);
                let base_out = base.query(&query()).unwrap();
                let expected = raw_rows(&base_out);
                assert_eq!(expected.len(), 12);
                let boundaries = base_out.recovery.checkpoint_times.clone();
                assert!(!boundaries.is_empty(), "baseline stored no checkpoints");

                for &(ord, t) in &boundaries {
                    let label = format!(
                        "seed {seed} pipelined {pipelined} rf {replication} boundary {ord}@{t:.6}"
                    );
                    let mut inst = launch(RunSpec { kill: Some((1, t + 1e-9)), ..spec });
                    let out = inst
                        .query(&query())
                        .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
                    assert_eq!(
                        raw_rows(&out),
                        expected,
                        "{label}: resumed rows diverged from fault-free baseline"
                    );
                    assert!(
                        out.recovery.rollbacks >= 1,
                        "{label}: kill before query end must force a rollback: {:?}",
                        out.recovery
                    );
                    assert!(
                        !out.recovery.retired_ranks.is_empty(),
                        "{label}: dead node's ranks must be retired"
                    );
                    assert!(
                        out.recovery.replans >= 1 && out.recovery.shards_moved >= 1,
                        "{label}: orphan shards must be re-planned onto survivors: {:?}",
                        out.recovery
                    );
                }
            }
        }
    }
}

/// rf=1 has no surviving replica to restore from once the node holding
/// the checkpoint dies; recovery refuses with the typed
/// [`ExecError::CheckpointLost`] — deterministically, regardless of
/// placement luck, and without panicking.
#[test]
fn node_loss_with_rf1_fails_typed_not_panic() {
    if !axis().contains(&"default") {
        return;
    }
    for seed in chaos_seeds() {
        for pipelined in [false, true] {
            let spec = RunSpec { pipelined, replication: 1, seed, kill: None, speculation: false };
            let mut base = launch(spec);
            let base_out = base.query(&query()).unwrap();
            let Some(&(_, t)) = base_out.recovery.checkpoint_times.first() else {
                panic!("seed {seed}: baseline stored no checkpoints");
            };
            let mut inst = launch(RunSpec { kill: Some((1, t + 1e-9)), ..spec });
            match inst.query(&query()) {
                Err(QueryError::Exec(ExecError::CheckpointLost { ordinal, .. })) => {
                    assert!(ordinal >= 0, "seed {seed}: lost checkpoint has an ordinal");
                }
                other => panic!(
                    "seed {seed} pipelined {pipelined}: rf=1 node loss must fail with \
                     CheckpointLost, got {other:?}"
                ),
            }
        }
    }
}

/// Blowing the per-query recovery budget is a typed, retryable refusal —
/// the same kill schedule that resumes fine under the default budget
/// fails with [`ExecError::RecoveryExhausted`] when the budget is zero.
#[test]
fn exhausted_recovery_budget_is_typed() {
    let spec =
        RunSpec { pipelined: false, replication: 2, seed: 1, kill: None, speculation: false };
    let mut base = launch(spec);
    let base_out = base.query(&query()).unwrap();
    let &(_, t) = base_out.recovery.checkpoint_times.first().unwrap();

    let mut inst = launch(RunSpec { kill: Some((1, t + 1e-9)), ..spec });
    inst.exec_options_mut().max_recoveries = 0;
    match inst.query(&query()) {
        Err(QueryError::Exec(ExecError::RecoveryExhausted { attempts, .. })) => {
            assert_eq!(attempts, 1, "the first rollback already exceeds a zero budget");
        }
        other => panic!("zero budget must fail with RecoveryExhausted, got {other:?}"),
    }
}

/// Speculative re-execution under stragglers: hedged duplicates only
/// move virtual time, never rows, and a winning duplicate shortens the
/// critical path.
#[test]
fn speculation_preserves_bytes_and_saves_time() {
    if !axis().contains(&"spiteful") {
        return;
    }
    for seed in chaos_seeds() {
        let plain_spec =
            RunSpec { pipelined: false, replication: 2, seed, kill: None, speculation: false };
        let mut plain = launch(plain_spec);
        let plain_out = plain.query(&query()).unwrap();

        let mut spec = launch(RunSpec { speculation: true, ..plain_spec });
        let spec_out = spec.query(&query()).unwrap();
        assert_eq!(
            raw_rows(&plain_out),
            raw_rows(&spec_out),
            "seed {seed}: speculation touched the data plane"
        );
        if spec_out.recovery.spec_wins > 0 {
            assert!(
                spec_out.elapsed_secs <= plain_out.elapsed_secs + 1e-9,
                "seed {seed}: a winning hedge must not lengthen the critical path \
                 (spec {} vs plain {})",
                spec_out.elapsed_secs,
                plain_out.elapsed_secs
            );
            assert!(spec_out.recovery.spec_saved_secs > 0.0, "seed {seed}: wins save time");
        }
    }
}

/// The spiteful schedule: find the rank that won the first speculation
/// race, then re-run the same seed killing that rank's node right after
/// the win. The recovery plane must still resume byte-identical — a
/// speculation win is never load-bearing state outside the virtual
/// clocks.
#[test]
fn killing_the_speculation_winner_still_resumes_byte_identical() {
    if !axis().contains(&"spiteful") {
        return;
    }
    for seed in chaos_seeds() {
        let spec =
            RunSpec { pipelined: false, replication: 2, seed, kill: None, speculation: true };
        let mut probe = launch(spec);
        let probe_out = probe.query(&query()).unwrap();
        let expected = raw_rows(&probe_out);
        let Some((winner, won_at)) = probe_out.recovery.first_spec_win else {
            // This seed's straggler draw produced no winning hedge —
            // nothing to be spiteful about.
            eprintln!("seed {seed}: no speculation win, spiteful kill skipped");
            continue;
        };
        let node = winner / 4; // Topology::new(4, 2): 4 ranks per node.
        let mut inst = launch(RunSpec { kill: Some((node, won_at + 1e-9)), ..spec });
        let out = inst.query(&query()).unwrap_or_else(|e| {
            panic!("seed {seed}: killing speculation winner (rank {winner}) broke recovery: {e}")
        });
        assert_eq!(
            raw_rows(&out),
            expected,
            "seed {seed}: spiteful kill of rank {winner}'s node diverged from baseline"
        );
        assert!(
            out.recovery.rollbacks >= 1,
            "seed {seed}: the spiteful kill must have forced a rollback: {:?}",
            out.recovery
        );
    }
}
