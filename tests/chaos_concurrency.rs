//! Concurrency chaos harness: many clients multiplexed over one instance
//! by `ids-serve`, under the crash and bit-rot fault classes.
//!
//! The contract extends the solo chaos harness two ways:
//!
//! 1. **Result equivalence under interleaving** — every query a client
//!    gets back from the shared, fault-injected, reuse-enabled service is
//!    row-identical (sorted) to the same query run solo on a fault-free
//!    instance. Scheduler slicing, cross-client checkpoint reuse, cache
//!    fencing, and bit-rot quarantine must all be invisible in results.
//! 2. **Replay determinism** — re-running the identical (seed, workload)
//!    pair reproduces the scheduler slice trace hash and byte-identical
//!    unsorted per-query rows.
//!
//! CI sweeps `CHAOS_SEED` and pins the client count via
//! `CHAOS_CONCURRENCY`; locally the full matrix runs in one pass.

use ids::cache::{BackingStore, CacheConfig, CacheManager};
use ids::core::workflow::{
    install_workflow, repurposing_query, RepurposingThresholds, WorkflowModels,
};
use ids::core::{IdsConfig, IdsInstance};
use ids::serve::{Completed, QueryService, ServeConfig, TenantConfig};
use ids::simrt::{FaultConfig, FaultPlane, NetworkModel, Topology};
use ids::workloads::ncnpr::{build, Band, NcnprConfig};
use std::collections::BTreeMap;
use std::sync::Arc;

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => (1..=8).collect(),
    }
}

/// Number of concurrent clients (CI pins this via `CHAOS_CONCURRENCY`).
fn concurrency() -> usize {
    match std::env::var("CHAOS_CONCURRENCY") {
        Ok(s) => s.parse().expect("CHAOS_CONCURRENCY must be an unsigned integer"),
        Err(_) => 16,
    }
}

fn small_config() -> NcnprConfig {
    NcnprConfig {
        bands: vec![
            Band {
                mutation_rate: 0.0,
                similarity_range: None,
                proteins: 3,
                compounds_per_protein: 4,
            },
            Band {
                mutation_rate: 0.62,
                similarity_range: Some((0.21, 0.39)),
                proteins: 5,
                compounds_per_protein: 2,
            },
        ],
        background_proteins: 10,
        ..NcnprConfig::default()
    }
}

fn launch(faults: Option<(u64, FaultConfig)>) -> IdsInstance {
    let topo = Topology::new(4, 2);
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 64 << 20, 256 << 20).with_replication(2),
        BackingStore::default_store(),
    ));
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), 11);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    inst.attach_cache(cache);
    if let Some((seed, fc)) = faults {
        let plane = Arc::new(FaultPlane::new(seed, fc, topo.nodes(), topo.total_ranks(), 10.0));
        inst.attach_faults(plane);
    }
    let dataset = build(inst.datastore(), &small_config());
    let target = dataset.target.clone();
    install_workflow(&mut inst, &target, WorkflowModels::test_models());
    inst
}

/// Millisecond-scale crash windows (the test workload runs in virtual
/// milliseconds, like the solo chaos harness).
fn ms_crashes() -> FaultConfig {
    FaultConfig::crashes_only(2.0e-3, 0.5e-3)
}

/// Storage bit-rot on cached objects — with semantic reuse on, the cached
/// plan-fragment intermediates themselves are exposed to rot.
fn bit_rot() -> FaultConfig {
    FaultConfig::storage_only(0.2, 0.0)
}

/// The overlapping client workload: two repurposing variants sharing a
/// BGP (different FILTER thresholds), plus an α-renamed pair of simple
/// scans. Client `i` submits `pool[i % 4]`, so a 16-client run hits each
/// query text four times — plenty of checkpoint overlap.
fn query_pool() -> Vec<String> {
    vec![
        repurposing_query(&RepurposingThresholds {
            sw_similarity: 0.9,
            min_pic50: 3.0,
            min_dtba: 3.0,
        }),
        repurposing_query(&RepurposingThresholds {
            sw_similarity: 0.9,
            min_pic50: 3.5,
            min_dtba: 3.0,
        }),
        "SELECT ?p WHERE { ?p <rdf:type> <up:Protein> . }".to_string(),
        "SELECT ?q WHERE { ?q <rdf:type> <up:Protein> . }".to_string(),
    ]
}

/// Sorted, decoded rows — sorted because scheduling and re-balancing may
/// legitimately shuffle rows across ranks.
fn extract(c: &Completed, inst: &IdsInstance) -> Vec<Vec<String>> {
    let ds = inst.datastore();
    let out = c.result.as_ref().unwrap_or_else(|e| panic!("query {:?} failed: {e}", c.query));
    assert!(!out.degraded(), "fault paths must not drop rows");
    let mut rows: Vec<Vec<String>> = out
        .solutions
        .rows()
        .iter()
        .map(|r| r.iter().map(|t| ds.decode(*t).unwrap().to_string()).collect())
        .collect();
    rows.sort();
    rows
}

/// Fault-free solo baselines, one fresh instance per distinct query text.
fn solo_baselines() -> BTreeMap<String, Vec<Vec<String>>> {
    let mut out = BTreeMap::new();
    for text in query_pool() {
        if out.contains_key(&text) {
            continue;
        }
        let mut inst = launch(None);
        let res = inst.query(&text).unwrap();
        let ds = inst.datastore();
        let mut rows: Vec<Vec<String>> = res
            .solutions
            .rows()
            .iter()
            .map(|r| r.iter().map(|t| ds.decode(*t).unwrap().to_string()).collect())
            .collect();
        rows.sort();
        out.insert(text, rows);
    }
    out
}

/// Build the service, open `concurrency()` single-query sessions, run to
/// idle, and return (service, completed, per-query-id query text).
fn run_concurrent(
    faults: Option<(u64, FaultConfig)>,
) -> (QueryService, Vec<Completed>, Vec<String>) {
    let inst = launch(faults);
    let mut svc = QueryService::new(
        inst,
        ServeConfig {
            quantum_secs: 1.0e-5,
            reuse: true,
            max_in_flight: 1024,
            ..ServeConfig::default()
        },
    );
    let pool = query_pool();
    let mut texts = Vec::new();
    for i in 0..concurrency() {
        let tenant = format!("client{i:02}");
        svc.register_tenant(TenantConfig::new(tenant.clone()));
        let session = svc.open_session(&tenant).unwrap();
        let text = pool[i % pool.len()].clone();
        svc.submit(session, &text).unwrap();
        texts.push(text);
    }
    let done = svc.run_until_idle();
    assert_eq!(done.len(), concurrency(), "every admitted query completes");
    (svc, done, texts)
}

#[test]
fn concurrent_clients_under_crash_chaos_match_solo_results() {
    let baselines = solo_baselines();
    for seed in chaos_seeds() {
        let (svc, done, texts) = run_concurrent(Some((seed, ms_crashes())));
        for c in &done {
            let text = &texts[c.query.0 as usize];
            assert_eq!(
                &extract(c, svc.instance()),
                baselines.get(text).unwrap(),
                "seed {seed}: query {:?} diverged from the solo fault-free run",
                c.query
            );
        }
        let snap = svc.instance().metrics_snapshot();
        assert!(
            snap.counter_sum("ids_reuse_hits_total") > 0,
            "seed {seed}: an overlapping 16-client workload must reuse checkpoints"
        );
    }
}

#[test]
fn concurrent_clients_under_bit_rot_match_solo_results() {
    let baselines = solo_baselines();
    for seed in chaos_seeds() {
        let (svc, done, texts) = run_concurrent(Some((seed, bit_rot())));
        for c in &done {
            let text = &texts[c.query.0 as usize];
            assert_eq!(
                &extract(c, svc.instance()),
                baselines.get(text).unwrap(),
                "seed {seed}: query {:?} diverged under storage rot",
                c.query
            );
        }
        // Rot may or may not have hit a cached intermediate this seed;
        // what matters is that any detection was quarantined, never served.
        let snap = svc.instance().metrics_snapshot();
        assert_eq!(
            snap.counter("ids_cache_quarantines_total", ""),
            snap.counter("ids_cache_corruptions_detected_total", "cache"),
            "seed {seed}: every cache-side detection quarantines exactly once"
        );
    }
}

#[test]
fn concurrent_replay_is_byte_identical() {
    // Same (seed, workload) twice: identical scheduler trace hash and
    // byte-identical unsorted rows, query by query — under fault
    // injection and cross-client reuse.
    let seed = chaos_seeds()[0];
    let run = || {
        let (svc, done, _) = run_concurrent(Some((seed, ms_crashes())));
        let rows: Vec<Vec<Vec<u64>>> = done
            .iter()
            .map(|c| {
                c.result
                    .as_ref()
                    .unwrap()
                    .solutions
                    .rows()
                    .iter()
                    .map(|r| r.iter().map(|t| t.raw()).collect())
                    .collect()
            })
            .collect();
        (svc.trace_hash(), rows)
    };
    let (h1, r1) = run();
    let (h2, r2) = run();
    assert_eq!(h1, h2, "scheduler trace must replay exactly");
    assert_eq!(r1, r2, "per-query rows must replay byte-identically");
}
