//! Offline stand-in for `criterion`.
//!
//! Supports the benchmark surface this workspace uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple calibrated
//! wall-clock loop that prints mean ns/iter (and derived throughput)
//! per benchmark; there is no statistical analysis, plotting, or
//! baseline storage.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How per-iteration setup cost is amortized in [`Bencher::iter_batched`].
/// The stub runs one setup per measured call regardless of variant.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Input of unknown size.
    PerIteration,
}

/// Work-per-iteration annotation used to derive throughput rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs one benchmark's measurement loop.
pub struct Bencher<'a> {
    mean_ns: &'a mut f64,
    measure_for: Duration,
}

impl Bencher<'_> {
    /// Measure `routine` repeatedly and record its mean latency.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch takes ~1ms.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        // Measure.
        let deadline = Instant::now() + self.measure_for;
        let mut iters: u64 = 0;
        let start = Instant::now();
        while Instant::now() < deadline {
            for _ in 0..batch {
                std_black_box(routine());
            }
            iters += batch;
        }
        *self.mean_ns = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    }

    /// Measure `routine` over fresh inputs built by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.measure_for;
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        while Instant::now() < deadline {
            let input = setup();
            let t = Instant::now();
            std_black_box(routine(std_black_box(input)));
            spent += t.elapsed();
            iters += 1;
        }
        *self.mean_ns = spent.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// Top-level benchmark driver (a trimmed-down `criterion::Criterion`).
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: this stub is for smoke-level timing, and
        // `cargo test` compiles (and can run) bench targets.
        Criterion { measure_for: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Register and immediately run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.measure_for, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), criterion: self, throughput: None }
    }
}

/// A named set of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Register and immediately run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.measure_for, self.throughput, f);
        self
    }

    /// Close the group (no-op in the stub).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    id: &str,
    measure_for: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut mean_ns = f64::NAN;
    let mut bencher = Bencher { mean_ns: &mut mean_ns, measure_for };
    f(&mut bencher);
    let mut line = format!("bench {id:<40} {mean_ns:>14.1} ns/iter");
    if mean_ns.is_finite() && mean_ns > 0.0 {
        match throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!("  ({:.2} Melem/s)", n as f64 / mean_ns * 1e3));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!(
                    "  ({:.2} MiB/s)",
                    n as f64 / mean_ns * 1e9 / (1 << 20) as f64
                ));
            }
            None => {}
        }
    }
    println!("{line}");
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ( $name:ident, $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion { measure_for: Duration::from_millis(5) };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_batched() {
        let mut c = Criterion { measure_for: Duration::from_millis(5) };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_function("sum", |b| {
            b.iter_batched(|| vec![1u64, 2, 3, 4], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
