//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()`,
//! `read()`, and `write()` return guards directly (no `Result`), and a
//! panicked holder does not poison the lock — the inner `std` poison
//! error is unwrapped into the guard, mirroring parking_lot's
//! non-poisoning semantics.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive (see [`std::sync::Mutex`]).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Reader-writer lock (see [`std::sync::RwLock`]).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }
}
