//! Offline stand-in for the `serde` facade.
//!
//! Exposes the `Serialize`/`Deserialize` *names* in both the trait and
//! macro namespaces so existing `use serde::{Deserialize, Serialize}` +
//! `#[derive(Serialize, Deserialize)]` code compiles unchanged without
//! network access. The derives expand to nothing (see `serde_derive`);
//! the traits carry no methods. If real serialization is ever needed,
//! swap the workspace dependency back to crates.io `serde`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de> {}
