//! No-op stand-ins for serde's derive macros.
//!
//! The repository has no network access to crates.io, so the real
//! `serde`/`serde_derive` cannot be fetched. Nothing in this workspace
//! actually serializes through serde (no serde_json, no `Serialize`
//! bounds) — the derives are forward-looking annotations — so expanding
//! them to an empty token stream preserves the source exactly while
//! keeping the build self-contained.

use proc_macro::TokenStream;

/// Derive `Serialize`: expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive `Deserialize`: expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
