//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros, the
//! [`strategy::Strategy`] trait with `prop_map` and `boxed`, numeric
//! range and tuple strategies, `collection::{vec, hash_set}`,
//! `any::<T>()`, simple `[class]{m,n}` string-regex strategies, and
//! `ProptestConfig::with_cases`.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from
//! the test path and case index) so failures reproduce across runs.
//! There is no shrinking: on failure the offending inputs are printed
//! verbatim.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value using `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice between alternatives (backs [`crate::prop_oneof!`]).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Build from pre-boxed alternatives. Panics if empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union(options)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.usize_in(0, self.0.len());
            self.0[idx].generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    (self.start as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u128, *self.end() as u128);
                    assert!(lo <= hi, "empty range strategy");
                    (lo + (rng.next_u64() as u128) % (hi - lo + 1)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// Mini-regex string strategy: `"[class]"` or `"[class]{m}"` /
    /// `"[class]{m,n}"`, where `class` supports literal chars,
    /// backslash escapes, and `a-z` ranges. This covers every pattern
    /// the workspace tests use; anything else panics loudly.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_pattern(self);
            let len = rng.usize_in(min, max + 1);
            (0..len).map(|_| chars[rng.usize_in(0, chars.len())]).collect()
        }
    }

    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_pattern(self);
            let len = rng.usize_in(min, max + 1);
            (0..len).map(|_| chars[rng.usize_in(0, chars.len())]).collect()
        }
    }

    fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
        let mut it = pat.chars().peekable();
        assert_eq!(it.next(), Some('['), "unsupported regex strategy {pat:?}: must start with [");
        let mut chars: Vec<char> = Vec::new();
        loop {
            let c = it.next().unwrap_or_else(|| panic!("unterminated char class in {pat:?}"));
            match c {
                ']' => break,
                '\\' => {
                    let esc = it.next().unwrap_or_else(|| panic!("dangling escape in {pat:?}"));
                    chars.push(esc);
                }
                _ => {
                    // `a-z` range (a '-' followed by a non-terminator)?
                    if it.peek() == Some(&'-') {
                        let mut ahead = it.clone();
                        ahead.next(); // consume '-'
                        match ahead.peek() {
                            Some(&hi) if hi != ']' => {
                                it = ahead;
                                it.next(); // consume hi
                                assert!(c <= hi, "inverted range {c}-{hi} in {pat:?}");
                                chars.extend(c..=hi);
                                continue;
                            }
                            _ => {}
                        }
                    }
                    chars.push(c);
                }
            }
        }
        assert!(!chars.is_empty(), "empty char class in {pat:?}");
        let rest: String = it.collect();
        if rest.is_empty() {
            return (chars, 1, 1);
        }
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported regex suffix {rest:?} in {pat:?}"));
        let (min, max) = match inner.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
            None => {
                let n = inner.trim().parse().unwrap();
                (n, n)
            }
        };
        assert!(min <= max, "inverted repetition in {pat:?}");
        (chars, min, max)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy, used by [`crate::prelude::any`].
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;
        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for primitive `T`.
    pub struct AnyPrim<T>(std::marker::PhantomData<T>);

    macro_rules! arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrim<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrim<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrim(std::marker::PhantomData)
                }
            }
        )*};
    }
    arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrim<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrim<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrim(std::marker::PhantomData)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with length in `len` (exclusive upper bound).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.len.start, self.len.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with size drawn from `len`.
    pub struct HashSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `HashSet` strategy with size in `len` (exclusive upper bound).
    /// Duplicates are retried a bounded number of times, so the final
    /// size may fall below the draw for tiny element domains.
    pub fn hash_set<S>(element: S, len: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, len }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = rng.usize_in(self.len.start, self.len.end);
            let mut set = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while set.len() < n && attempts < n.saturating_mul(20) + 50 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod test_runner {
    /// Per-run configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 generator seeded per (test, case).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test path and case index so every run of the
        /// suite generates the same inputs.
        pub fn for_case(test_path: &str, case: u64) -> Self {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            test_path.hash(&mut h);
            let mut rng = TestRng { state: h.finish() ^ case.wrapping_mul(0x9e3779b97f4a7c15) };
            rng.next_u64(); // decorrelate adjacent cases
            rng
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw in `[lo, hi)`. Panics if the range is empty.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty draw range {lo}..{hi}");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The canonical strategy for `T` (`any::<u8>()` etc.).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs, printing the inputs of the first failing case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::Config as Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __case_desc = {
                    let mut d = format!("case {case}");
                    $(
                        d.push_str(&format!(
                            "\n  {} = {:?}", stringify!($arg), &$arg
                        ));
                    )+
                    d
                };
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(payload) = __result {
                    eprintln!(
                        "proptest: property {} failed on {}",
                        stringify!($name),
                        __case_desc
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Assert a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ( $($tok:tt)+ ) => { assert!($($tok)+) };
}

/// Assert equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ( $($tok:tt)+ ) => { assert_eq!($($tok)+) };
}

/// Assert inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ( $($tok:tt)+ ) => { assert_ne!($($tok)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let v = Strategy::generate(&(3u8..12), &mut rng);
            assert!((3..12).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn regex_classes_expand() {
        let mut rng = crate::test_runner::TestRng::for_case("regex", 1);
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-c]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let one = Strategy::generate(&"[XY]", &mut rng);
            assert!(one == "X" || one == "Y");
            let esc = Strategy::generate(&"[\\[\\]\\-]{1,3}", &mut rng);
            assert!(esc.chars().all(|c| "[]-".contains(c)));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = crate::test_runner::TestRng::for_case("t", 7).next_u64();
        let b = crate::test_runner::TestRng::for_case("t", 7).next_u64();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn macro_generates_and_runs(
            xs in crate::collection::vec(0u32..50, 1..10),
            flag in any::<u8>(),
            name in "[a-z]{1,4}",
        ) {
            prop_assert!(xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| x < 50));
            let _ = flag;
            prop_assert!(!name.is_empty() && name.len() <= 4);
        }

        fn oneof_and_map_compose(v in prop_oneof![
            (0u8..4).prop_map(|x| x as u32),
            100u32..104,
        ]) {
            prop_assert!(v < 4 || (100..104).contains(&v));
        }
    }
}
