//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply cloneable byte buffer (an
//! `Arc<[u8]>` or a static slice); [`BytesMut`] is a growable buffer that
//! freezes into `Bytes`. Only the API surface this workspace uses is
//! implemented, with the same semantics as the real crate.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

/// Immutable, reference-counted byte buffer. `clone()` is O(1).
#[derive(Clone)]
pub struct Bytes(Repr);

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

/// Growable byte buffer that can freeze into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub const fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Resize, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.0.resize(new_len, value);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
        assert_eq!(Bytes::copy_from_slice(&[9, 9])[0], 9);
    }

    #[test]
    fn bytes_mut_freeze() {
        let mut m = BytesMut::with_capacity(8);
        m.resize(4, 0);
        m[0] = 7;
        m.extend_from_slice(&[1, 2]);
        assert_eq!(m.len(), 6);
        let b = m.freeze();
        assert_eq!(&b[..], &[7, 0, 0, 0, 1, 2]);
    }
}
