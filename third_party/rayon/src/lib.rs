//! Offline stand-in for `rayon`.
//!
//! Provides the parallel-iterator API surface the workspace uses —
//! `par_iter`, `par_iter_mut`, `into_par_iter`, plus the adapters chained
//! on them — executing **sequentially** on the calling thread. All
//! simulation timing in this repo is *virtual* (charged to per-rank
//! clocks), so sequential execution preserves every observable result;
//! only host wall-clock parallelism is lost. The API keeps the real
//! rayon `Send`/`Sync` bounds so code written against this stub still
//! compiles against the real crate.

use std::num::NonZeroUsize;

/// Number of worker threads rayon would use (host parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// A "parallel" iterator: a thin wrapper over a sequential iterator.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    fn new(inner: I) -> Self {
        Self { inner }
    }

    /// Map every item through `f`.
    pub fn map<R, F: Fn(I::Item) -> R + Sync + Send>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter::new(self.inner.map(f))
    }

    /// Pair every item with its index.
    #[allow(clippy::type_complexity)]
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter::new(self.inner.enumerate())
    }

    /// Keep items for which `f` returns true.
    pub fn filter<F: Fn(&I::Item) -> bool + Sync + Send>(
        self,
        f: F,
    ) -> ParIter<std::iter::Filter<I, F>> {
        ParIter::new(self.inner.filter(f))
    }

    /// Group items into `Vec`s of at most `size` elements (rayon's
    /// `IndexedParallelIterator::chunks`).
    pub fn chunks(self, size: usize) -> ParIter<Chunks<I>> {
        assert!(size > 0, "chunk size must be positive");
        ParIter::new(Chunks { inner: self.inner, size })
    }

    /// Flatten nested iterables.
    pub fn flatten(self) -> ParIter<std::iter::Flatten<I>>
    where
        I::Item: IntoIterator,
    {
        ParIter::new(self.inner.flatten())
    }

    /// Map each item to a *serial* iterator and flatten the results
    /// (rayon's `flat_map_iter`).
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
    where
        U: IntoIterator,
        F: Fn(I::Item) -> U + Sync + Send,
    {
        ParIter::new(self.inner.flat_map(f))
    }

    /// Run `f` on every item.
    pub fn for_each<F: Fn(I::Item) + Sync + Send>(self, f: F) {
        self.inner.for_each(f)
    }

    /// Collect into any `FromIterator` collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    /// Collect into a provided `Vec`, reusing its allocation.
    pub fn collect_into_vec(self, target: &mut Vec<I::Item>) {
        target.clear();
        target.extend(self.inner);
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }

    /// Fold-reduce with an identity supplier (rayon's `reduce`).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item + Sync + Send,
    {
        self.inner.fold(identity(), op)
    }

    /// Minimum by a key function.
    pub fn min_by_key<K: Ord, F: Fn(&I::Item) -> K + Sync + Send>(self, f: F) -> Option<I::Item> {
        self.inner.min_by_key(f)
    }

    /// Maximum by a key function.
    pub fn max_by_key<K: Ord, F: Fn(&I::Item) -> K + Sync + Send>(self, f: F) -> Option<I::Item> {
        self.inner.max_by_key(f)
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.inner.count()
    }
}

/// Sequential chunking adapter backing [`ParIter::chunks`].
pub struct Chunks<I> {
    inner: I,
    size: usize,
}

impl<I: Iterator> Iterator for Chunks<I> {
    type Item = Vec<I::Item>;

    fn next(&mut self) -> Option<Vec<I::Item>> {
        let mut chunk = Vec::with_capacity(self.size);
        for _ in 0..self.size {
            match self.inner.next() {
                Some(x) => chunk.push(x),
                None => break,
            }
        }
        if chunk.is_empty() {
            None
        } else {
            Some(chunk)
        }
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item;
    /// Concrete sequential iterator backing the parallel facade.
    type Iter: Iterator<Item = Self::Item>;

    /// Convert into a "parallel" iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter::new(self.into_iter())
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = std::ops::Range<usize>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter::new(self)
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Item = u32;
    type Iter = std::ops::Range<u32>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter::new(self)
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    type Iter = std::ops::Range<u64>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter::new(self)
    }
}

/// Types whose references iterate "in parallel".
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by reference.
    type Item: 'a;
    /// Concrete sequential iterator backing the parallel facade.
    type Iter: Iterator<Item = Self::Item>;

    /// Parallel iterator over shared references.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter::new(self.iter())
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter::new(self.iter())
    }
}

/// Types whose mutable references iterate "in parallel".
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type yielded by mutable reference.
    type Item: 'a;
    /// Concrete sequential iterator backing the parallel facade.
    type Iter: Iterator<Item = Self::Item>;

    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter::new(self.iter_mut())
    }
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter::new(self.iter_mut())
    }
}

/// The traits user code imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_serial() {
        let v: Vec<i32> = (0..10usize).into_par_iter().map(|i| i as i32 * 2).collect();
        assert_eq!(v, (0..10).map(|i| i * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn enumerate_collect_into_vec() {
        let src = vec![10, 20, 30];
        let mut out = Vec::new();
        src.par_iter().enumerate().map(|(i, &x)| (i, x + 1)).collect_into_vec(&mut out);
        assert_eq!(out, vec![(0, 11), (1, 21), (2, 31)]);
    }

    #[test]
    fn chunks_and_flatten() {
        let flat: Vec<usize> =
            (0..10usize).into_par_iter().chunks(3).map(|c| c).flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<usize>>());
        let sizes: Vec<usize> = (0..10usize).into_par_iter().chunks(4).map(|c| c.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn par_iter_mut_for_each() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x *= 10);
        assert_eq!(v, vec![10, 20, 30]);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let v: Vec<usize> = (0..3usize).into_par_iter().flat_map_iter(|i| vec![i, i]).collect();
        assert_eq!(v, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn threads_reported() {
        assert!(super::current_num_threads() >= 1);
    }
}
