//! Cross-instance result sharing through the global cache (paper §3 / §8):
//! "another IDS instance on the same cluster [can] access and reuse
//! results from prior simulations and queries".
//!
//! Instance A (researcher A) docks a candidate set and stashes the
//! outputs; instance B (researcher B), a *separate* IDS instance attached
//! to the same global cache, issues an overlapping query and reuses A's
//! simulations. A cache-node failure in between shows the re-population
//! path from the backing store.
//!
//! Run with: `cargo run --release --example cache_sharing`

use ids::cache::{BackingStore, CacheConfig, CacheManager};
use ids::core::workflow::{
    install_workflow, repurposing_query, RepurposingThresholds, WorkflowModels,
};
use ids::core::{IdsConfig, IdsInstance};
use ids::simrt::{NetworkModel, NodeId, Topology};
use ids::workloads::ncnpr::{build, NcnprConfig};
use std::sync::Arc;

fn launch_instance(topo: Topology, cache: &Arc<CacheManager>, seed: u64) -> IdsInstance {
    let mut cfg = IdsConfig::laptop(topo.total_ranks(), seed);
    cfg.topology = topo;
    let mut inst = IdsInstance::launch(cfg);
    inst.attach_cache(Arc::clone(cache));
    let ncfg = NcnprConfig { background_proteins: 20, ..NcnprConfig::default() };
    let dataset = build(inst.datastore(), &ncfg);
    let target = dataset.target.clone();
    install_workflow(&mut inst, &target, WorkflowModels::paper_models());
    inst
}

fn main() {
    let topo = Topology::new(2, 8);
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 256 << 20, 1 << 30),
        BackingStore::default_store(),
    ));
    let q = repurposing_query(&RepurposingThresholds {
        sw_similarity: 0.9,
        min_pic50: 3.0,
        min_dtba: 3.0,
    });

    // Researcher A docks the candidate set on instance A.
    println!("instance A: cold run, stashing docking outputs in the shared cache...");
    let mut a = launch_instance(topo, &cache, 7);
    let cold = a.query(&q).expect("A's run");
    println!(
        "  A docked {} candidates in {:.1} virtual s",
        cold.solutions.len(),
        cold.elapsed_secs
    );

    // Researcher B launches a *different* instance against the same cache.
    // (Both instances were built from the same published dataset, so the
    // docking-job identities — receptor + ligand content hashes — match.)
    println!("\ninstance B: separate IDS instance, same cluster, same global cache...");
    let mut b = launch_instance(topo, &cache, 7);
    let reuse = b.query(&q).expect("B's run");
    println!(
        "  B answered the overlapping query in {:.1} virtual s ({:.1}x faster than A's cold run)",
        reuse.elapsed_secs,
        cold.elapsed_secs / reuse.elapsed_secs
    );
    let stats = cache.stats();
    println!(
        "  shared-cache stats: {} hits, {} backing fetches",
        stats.cache_hits(),
        stats.backing_fetches
    );

    // A cache node dies. The authoritative copies live in the backing
    // store, so nothing is lost — the next query re-populates.
    println!("\nfailing cache node 0 (its DRAM/NVMe contents vanish)...");
    cache.fail_node(NodeId(0));
    cache.reset_stats();
    let mut c = launch_instance(topo, &cache, 7);
    let heal = c.query(&q).expect("post-failure run");
    let stats = cache.stats();
    println!(
        "  post-failure query: {:.1} virtual s — {} objects re-populated from the\n   backing store, {} still cached; no re-simulation (~{:.0}x faster than cold)",
        heal.elapsed_secs,
        stats.backing_fetches,
        stats.cache_hits(),
        cold.elapsed_secs / heal.elapsed_secs
    );
}
