//! The four facets of discovery the paper names (§1): **what-is**,
//! **what-else**, **what-if**, and **what-could-be**, each as an IDS
//! interaction:
//!
//! * *what-is* — a point lookup over the knowledge graph (milliseconds);
//! * *what-else* — similarity search over the vector-store face;
//! * *what-if* — re-running a model-driven filter under a changed
//!   hypothesis (threshold), reusing profiles and cached results;
//! * *what-could-be* — generating novel molecules (MolGAN substitute) and
//!   scoring them with the DTBA model inside one query.
//!
//! Run with: `cargo run --release --example whatif_exploration`

use ids::core::{IdsConfig, IdsInstance};
use ids::graph::Term;
use ids::models::{DtbaModel, MoleculeGenerator};
use ids::udf::{UdfOutput, UdfValue};
use ids::vector::store::Metric;
use ids_chem::ProteinSequence;
use std::sync::Arc;

fn main() {
    let mut ids = IdsInstance::launch(IdsConfig::laptop(8, 99));
    let ds = ids.datastore().clone();

    // Ingest a small compound set with embeddings (e.g. learned molecular
    // fingerprints) in the vector face.
    let gen = MoleculeGenerator::default_model(21);
    let mut rng = ids::simrt::rng::SplitMix64::new(4, 4);
    let mut compound_ids = Vec::new();
    for cand in gen.generate_batch(64) {
        let iri = Term::iri(format!("chembl:GEN{}", compound_ids.len()));
        let id = ds.encode(&iri);
        ds.add_fact(&iri, &Term::iri("rdf:type"), &Term::iri("chembl:Compound"));
        ds.add_fact(&iri, &Term::iri("chembl:smiles"), &Term::str(cand.smiles.clone()));
        ds.add_fact(&iri, &Term::iri("chembl:mw"), &Term::float(cand.molecule.molecular_weight()));
        // Descriptor embedding: MW, logP, donors, acceptors, rotors, rings.
        let m = &cand.molecule;
        let emb: Vec<f32> = vec![
            (m.molecular_weight() / 500.0) as f32,
            (m.logp_estimate() / 5.0) as f32,
            m.hbond_donors() as f32 / 5.0,
            m.hbond_acceptors() as f32 / 10.0,
            m.rotatable_bonds() as f32 / 10.0,
            m.ring_count() as f32 / 4.0,
        ];
        ds.add_vector("descriptors", id, &emb);
        compound_ids.push((id, cand.smiles, emb));
    }
    ds.build_indexes();

    // ---- what-is: a point lookup --------------------------------------------
    println!("== what-is: molecular weight of compound GEN7 ==");
    let out =
        ids.query(r#"SELECT ?mw WHERE { <chembl:GEN7> <chembl:mw> ?mw . }"#).expect("what-is");
    println!(
        "  GEN7 weighs {} g/mol  ({:.2} virtual ms — 'a simple what-is query returns in milliseconds')",
        ds.decode(out.solutions.rows()[0][0]).unwrap(),
        out.elapsed_secs * 1e3
    );

    // ---- what-else: similarity search ---------------------------------------
    println!("\n== what-else: compounds most similar to GEN7 ==");
    let probe = &compound_ids[7].2;
    for hit in ds.similarity_search("descriptors", probe, 4, Metric::Cosine) {
        let term = ds.decode(ids::graph::TermId(hit.id)).unwrap();
        println!("  {:.4}  {term}", hit.score);
    }

    // ---- what-if: a model-driven threshold question --------------------------
    println!("\n== what-if: which compounds would a tighter potency bar keep? ==");
    let target = {
        let mut r = ids::simrt::rng::SplitMix64::new(5, 5);
        ProteinSequence::random(300, &mut r)
    };
    let dtba = DtbaModel::pretrained();
    let t2 = target.clone();
    ids.registry()
        .register_static(
            "predicted_affinity",
            Arc::new(move |args: &[UdfValue]| {
                let smiles = args[0].as_str().unwrap_or("");
                let a = dtba.predict(&t2, smiles);
                UdfOutput::new(UdfValue::F64(a.pkd), a.virtual_secs)
            }),
        )
        .unwrap();
    for bar in [5.0, 5.4, 5.6] {
        let q = format!(
            "SELECT ?c WHERE {{ ?c <chembl:smiles> ?s . FILTER(predicted_affinity(?s) >= {bar}) }}"
        );
        let out = ids.query(&q).expect("what-if");
        println!("  pKd >= {bar}: {} compounds survive", out.solutions.len());
    }

    // ---- what-could-be: generate + score novel molecules ---------------------
    println!("\n== what-could-be: novel generated molecules ranked by predicted affinity ==");
    let dtba = DtbaModel::pretrained();
    let gen2 = MoleculeGenerator::default_model(rng.next_u64());
    let mut scored: Vec<(f64, String)> = gen2
        .generate_batch(32)
        .into_iter()
        .map(|c| (dtba.predict(&target, &c.smiles).pkd, c.smiles))
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (pkd, smiles) in scored.iter().take(5) {
        println!("  pKd {pkd:.2}  {smiles}");
    }
    println!("\n(the full what-could-be query chains generation, DTBA, and docking —");
    println!(" see examples/drug_repurposing.rs for the docking + cache stage)");
}
