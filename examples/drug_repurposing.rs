//! The NCNPR drug-re-purposing workflow (paper §4) end-to-end, with the
//! global distributed cache accelerating repeated queries.
//!
//! Pipeline: reviewed proteins related to the P29274 stand-in → candidate
//! inhibitor compounds → Smith–Waterman + pIC50 + DTBA filters → AutoDock
//! Vina-style docking on the survivors, with the docking outputs stashed
//! in the multi-tier cache.
//!
//! Run with: `cargo run --release --example drug_repurposing`

use ids::cache::{BackingStore, CacheConfig, CacheManager};
use ids::core::workflow::{
    install_workflow, repurposing_query, RepurposingThresholds, WorkflowModels,
};
use ids::core::{IdsConfig, IdsInstance};
use ids::simrt::{NetworkModel, Topology};
use ids::workloads::ncnpr::{build, NcnprConfig};
use std::sync::Arc;

fn main() {
    // A small cluster: 2 nodes x 16 ranks, with both nodes contributing
    // DRAM + NVMe to the global cache over a Lustre-class backing store.
    let topo = Topology::new(2, 16);
    let mut cfg = IdsConfig::laptop(32, 7);
    cfg.topology = topo;
    let mut ids = IdsInstance::launch(cfg);
    let cache = Arc::new(CacheManager::new(
        topo,
        NetworkModel::slingshot(),
        CacheConfig::new(2, 256 << 20, 1 << 30),
        BackingStore::default_store(),
    ));
    ids.attach_cache(Arc::clone(&cache));

    // Build the NCNPR graph: similarity bands of related proteins, each
    // with inhibitor compounds carrying valid SMILES.
    let ncfg = NcnprConfig { background_proteins: 50, ..NcnprConfig::default() };
    let dataset = build(ids.datastore(), &ncfg);
    println!(
        "NCNPR graph: {} proteins, {} compounds, {} triples; target {}",
        dataset.proteins, dataset.compounds, dataset.triples, dataset.target.accession
    );

    // Register the four workflow UDFs (SW, pIC50, DTBA, docking+cache).
    let target = dataset.target.clone();
    install_workflow(&mut ids, &target, WorkflowModels::paper_models());

    // The what-could-be query: SW >= 0.9 keeps the tight band (~56
    // candidates); the APPLY stage docks each one.
    // ORDER BY the docking energy: the engine sorts before LIMIT, so this
    // is a true top-k query.
    let q = format!(
        "{} ORDER BY ?energy",
        repurposing_query(&RepurposingThresholds {
            sw_similarity: 0.9,
            min_pic50: 3.0,
            min_dtba: 3.0,
        })
    );
    println!("\n--- IQL ---\n{q}\n-----------");

    println!("cold run (empty cache): every docking simulates...");
    let cold = ids.query(&q).expect("cold run");
    println!(
        "  {} candidates docked in {:.1} virtual s (docking stage {:.1} s)",
        cold.solutions.len(),
        cold.elapsed_secs,
        cold.breakdown.apply_secs.get("vina_docking").copied().unwrap_or(0.0)
    );

    // Top hits by docking energy (more negative binds tighter).
    let ds = ids.datastore().clone();
    println!("\ntop 5 candidates by docking energy (ORDER BY ?energy):");
    for row in cold.solutions.rows().iter().take(5) {
        let smiles = ds.decode(row[1]).unwrap().as_str().unwrap_or("?").to_string();
        let energy = ds.decode(row[2]).unwrap().as_f64().unwrap_or(0.0);
        println!("  {energy:8.3} kcal/mol  {smiles}");
    }

    println!("\nwarm run (docking outputs served from the global cache)...");
    ids.reset_clocks();
    let warm = ids.query(&q).expect("warm run");
    println!(
        "  same {} candidates in {:.1} virtual s  ({:.1}x faster)",
        warm.solutions.len(),
        warm.elapsed_secs,
        cold.elapsed_secs / warm.elapsed_secs
    );
    let stats = cache.stats();
    println!(
        "  cache: {} hits, {} backing fetches, hit rate {:.0}%",
        stats.cache_hits(),
        stats.backing_fetches,
        stats.hit_rate() * 100.0
    );

    // Iterate like a researcher: widen the similarity threshold — only the
    // *newly admitted* compounds dock, everything else reuses the stash.
    println!("\nwidened query (SW >= 0.4): overlapping candidates reuse the cache...");
    ids.reset_clocks();
    let wide = ids
        .query(&repurposing_query(&RepurposingThresholds {
            sw_similarity: 0.4,
            min_pic50: 3.0,
            min_dtba: 3.0,
        }))
        .expect("widened run");
    println!(
        "  {} candidates in {:.1} virtual s (only new compounds re-docked)",
        wide.solutions.len(),
        wide.elapsed_secs
    );
}
