//! Quickstart: launch a laptop-scale IDS instance, ingest a small
//! knowledge graph, and run IQL queries — including a UDF-powered filter.
//!
//! Run with: `cargo run --release --example quickstart`

use ids::core::{IdsConfig, IdsInstance};
use ids::graph::Term;
use ids::udf::{UdfOutput, UdfValue};
use std::sync::Arc;

fn main() {
    // 1. Launch: 8 virtual ranks on one node — the paper's "start on your
    //    laptop, scale to a supercomputer with the same container" story.
    let mut ids = IdsInstance::launch(IdsConfig::laptop(8, 42));

    // 2. Ingest facts into the knowledge-graph face of the datastore.
    let ds = ids.datastore().clone();
    for (protein, organism, len) in [
        ("P29274", "human", 412),
        ("P30542", "human", 326),
        ("P0DMS8", "human", 318),
        ("Q60612", "mouse", 410),
    ] {
        let s = Term::iri(format!("up:{protein}"));
        ds.add_fact(&s, &Term::iri("rdf:type"), &Term::iri("up:Protein"));
        ds.add_fact(&s, &Term::iri("up:organism"), &Term::str(organism));
        ds.add_fact(&s, &Term::iri("up:length"), &Term::Int(len));
    }
    ds.build_indexes();
    println!("ingested {} triples across {} shards", ds.triple_count(), ds.num_shards());

    // 3. A plain graph query.
    let out = ids
        .query(r#"SELECT ?p ?len WHERE { ?p <rdf:type> <up:Protein> . ?p <up:length> ?len . FILTER(?len >= 400) }"#)
        .expect("query");
    println!("\nproteins with >= 400 residues ({} rows):", out.solutions.len());
    for row in out.solutions.rows() {
        let p = ds.decode(row[0]).unwrap();
        let len = ds.decode(row[1]).unwrap();
        println!("  {p} ({len} aa)");
    }

    // 4. Register a user-defined function and use it inside FILTER — the
    //    expressiveness the paper's "model-driven queries" rest on.
    ids.registry()
        .register_static(
            "is_gpcr_sized",
            Arc::new(|args: &[UdfValue]| {
                let len = args[0].as_f64().unwrap_or(0.0);
                UdfOutput::new(UdfValue::Bool((300.0..500.0).contains(&len)), 1.0e-4)
            }),
        )
        .unwrap();
    let out = ids
        .query(r#"SELECT ?p WHERE { ?p <up:length> ?len . FILTER(is_gpcr_sized(?len)) }"#)
        .expect("udf query");
    println!("\nGPCR-sized proteins: {} rows", out.solutions.len());

    // 5. Inspect what the engine measured (virtual time on the simulated
    //    cluster + per-stage breakdown).
    println!(
        "\nlast query: {:.6} virtual seconds (scan {:.6}, filter {:.6})",
        out.elapsed_secs, out.breakdown.scan_secs, out.breakdown.filter_secs
    );
}
