//! Observability: watch an IDS instance through the `ids-obs` layer —
//! EXPLAIN with a live metrics block, the Prometheus text exposition,
//! and the virtual-clock span log.
//!
//! Run with: `cargo run --release --example observability`

use ids::core::{IdsConfig, IdsInstance};
use ids::graph::Term;
use ids::udf::{UdfOutput, UdfValue};
use std::sync::Arc;

fn main() {
    let mut ids = IdsInstance::launch(IdsConfig::laptop(8, 42));

    // A small knowledge graph plus a deliberately mixed-cost UDF chain so
    // the FILTER reordering has something to decide.
    let ds = ids.datastore().clone();
    for i in 0..64 {
        let s = Term::iri(format!("up:P{i:05}"));
        ds.add_fact(&s, &Term::iri("rdf:type"), &Term::iri("up:Protein"));
        ds.add_fact(&s, &Term::iri("up:length"), &Term::Int(200 + 7 * i));
    }
    ds.build_indexes();

    ids.registry()
        .register_static(
            "slow_check",
            Arc::new(|args: &[UdfValue]| {
                let len = args[0].as_f64().unwrap_or(0.0);
                UdfOutput::new(UdfValue::Bool(len > 300.0), 5.0e-3)
            }),
        )
        .unwrap();
    ids.registry()
        .register_static(
            "cheap_check",
            Arc::new(|args: &[UdfValue]| {
                let len = args[0].as_f64().unwrap_or(0.0);
                UdfOutput::new(UdfValue::Bool((len as i64) % 3 == 0), 1.0e-5)
            }),
        )
        .unwrap();

    let q = r#"SELECT ?p WHERE { ?p <up:length> ?len .
                                 FILTER(slow_check(?len) && cheap_check(?len)) }"#;

    // 1. EXPLAIN before anything ran: the metrics block is an explicit
    //    placeholder, not an absence.
    println!("== EXPLAIN (cold) ==\n{}", ids.explain(q).expect("explain"));

    // 2. Run the query a few times so the profiler learns UDF costs and
    //    the engine accumulates stage timings.
    for _ in 0..3 {
        ids.query(q).expect("query");
    }

    // 3. EXPLAIN again: now the plan carries the expected conjunct-chain
    //    cost and the live metrics block (stage timings, reorder tally).
    println!("== EXPLAIN (after 3 runs) ==\n{}", ids.explain(q).expect("explain"));

    // 4. The same snapshot, machine-readable: Prometheus text exposition.
    println!("== Prometheus exposition (excerpt) ==");
    for line in ids.render_prometheus().lines() {
        if line.starts_with("ids_engine") || line.starts_with("ids_planner") {
            println!("{line}");
        }
    }

    // 5. Spans: what happened when, in virtual time.
    println!("\n== span log (virtual clock) ==");
    for span in ids.metrics().spans().snapshot() {
        println!("{span}");
    }
}
